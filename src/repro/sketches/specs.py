"""Registry of the hot sketch kernels and their canonical configurations.

``SKETCH_SPECS`` enumerates one entry per vectorized leaf kernel, each a
factory for a sketch over the canonical four-column test schema below.
The differential harness (``tests/test_kernel_equivalence.py``) runs every
entry's ``summarize`` against its preserved ``summarize_reference`` per-row
oracle and asserts byte-identical summaries; the ``leaf_kernels`` perf
suite runs the same entries at scale.  Adding a vectorized kernel means
adding it here, which enrolls it in both.

Canonical schema (used by generated tables):

=========  ========  ==============================================
column     kind      generated domain
=========  ========  ==============================================
``i``      INTEGER   [-60, 60] plus missing
``d``      DOUBLE    [-60.0, 60.0] plus NaN/missing
``t``      DATE      around 2020 (see DATE_LO/DATE_HI) plus missing
``s``      STRING    short lowercase strings plus missing
=========  ========  ==============================================

Bucket ranges deliberately cover less than the generated domains so
out-of-range paths are always exercised.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from typing import Callable

from repro.core.buckets import (
    DoubleBuckets,
    ExplicitStringBuckets,
    StringBuckets,
)
from repro.core.sketch import Sketch
from repro.sketches.cdf import CdfSketch
from repro.sketches.find_text import FindTextSketch
from repro.sketches.heatmap import HeatmapSketch
from repro.sketches.heavy_hitters import MisraGriesSketch, SampleHeavyHittersSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.quantile import SampleQuantileSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.sketches.trellis import TrellisHeatmapSketch, TrellisHistogramSketch
from repro.table.column import datetime_to_millis
from repro.table.compute import StringMatchPredicate
from repro.table.schema import ContentsKind
from repro.table.sort import RecordOrder

#: The canonical test schema: column name -> kind.
CANONICAL_SCHEMA: dict[str, ContentsKind] = {
    "i": ContentsKind.INTEGER,
    "d": ContentsKind.DOUBLE,
    "t": ContentsKind.DATE,
    "s": ContentsKind.STRING,
}

DATE_LO = datetime(2019, 12, 1, tzinfo=timezone.utc)
DATE_HI = datetime(2021, 2, 1, tzinfo=timezone.utc)

_INT_BUCKETS = DoubleBuckets(-50.0, 50.0, 7)
_DOUBLE_BUCKETS = DoubleBuckets(-45.5, 48.25, 9)
_DATE_BUCKETS = DoubleBuckets(
    float(datetime_to_millis(datetime(2020, 1, 1, tzinfo=timezone.utc))),
    float(datetime_to_millis(datetime(2021, 1, 1, tzinfo=timezone.utc))),
    6,
)
# Strings below "b" are out of range; the last bucket is unbounded above.
_STRING_RANGE_BUCKETS = StringBuckets(["b", "f", "k", "p"])
_STRING_EXPLICIT_BUCKETS = ExplicitStringBuckets(["a", "cat", "dog", "k", "zz"])


@dataclass(frozen=True)
class SketchSpec:
    """One hot kernel: a name plus a factory for its canonical sketch."""

    name: str
    factory: Callable[[], Sketch]

    def sketch(self) -> Sketch:
        return self.factory()


SKETCH_SPECS: list[SketchSpec] = [
    SketchSpec(
        "histogram.int",
        lambda: HistogramSketch("i", _INT_BUCKETS),
    ),
    SketchSpec(
        "histogram.double",
        lambda: HistogramSketch("d", _DOUBLE_BUCKETS),
    ),
    SketchSpec(
        "histogram.date",
        lambda: HistogramSketch("t", _DATE_BUCKETS),
    ),
    SketchSpec(
        "histogram.string_ranges",
        lambda: HistogramSketch("s", _STRING_RANGE_BUCKETS),
    ),
    SketchSpec(
        "histogram.string_explicit",
        lambda: HistogramSketch("s", _STRING_EXPLICIT_BUCKETS),
    ),
    SketchSpec(
        "histogram.sampled",
        lambda: HistogramSketch("d", _DOUBLE_BUCKETS, rate=0.5, seed=7),
    ),
    SketchSpec(
        "cdf.double",
        lambda: CdfSketch("d", DoubleBuckets(-45.5, 48.25, 32)),
    ),
    SketchSpec(
        "stacked.double_string",
        lambda: StackedHistogramSketch(
            "d", _DOUBLE_BUCKETS, "s", _STRING_RANGE_BUCKETS
        ),
    ),
    SketchSpec(
        "heatmap.int_double",
        lambda: HeatmapSketch("i", _INT_BUCKETS, "d", _DOUBLE_BUCKETS),
    ),
    SketchSpec(
        "heatmap.string_date",
        lambda: HeatmapSketch("s", _STRING_RANGE_BUCKETS, "t", _DATE_BUCKETS),
    ),
    SketchSpec(
        "trellis_heatmap.1group",
        lambda: TrellisHeatmapSketch(
            "s", _STRING_EXPLICIT_BUCKETS,
            "i", _INT_BUCKETS,
            "d", _DOUBLE_BUCKETS,
        ),
    ),
    SketchSpec(
        "trellis_heatmap.2group",
        lambda: TrellisHeatmapSketch(
            "s", _STRING_RANGE_BUCKETS,
            "i", _INT_BUCKETS,
            "d", _DOUBLE_BUCKETS,
            group2_column="t",
            group2_buckets=_DATE_BUCKETS,
        ),
    ),
    SketchSpec(
        "trellis_histogram.1group",
        lambda: TrellisHistogramSketch(
            "s", _STRING_RANGE_BUCKETS, "d", _DOUBLE_BUCKETS
        ),
    ),
    SketchSpec(
        "trellis_histogram.2group",
        lambda: TrellisHistogramSketch(
            "i", _INT_BUCKETS,
            "d", _DOUBLE_BUCKETS,
            group2_column="s",
            group2_buckets=_STRING_EXPLICIT_BUCKETS,
        ),
    ),
    SketchSpec(
        "heavy_hitters.streaming_string",
        lambda: MisraGriesSketch("s", k=5),
    ),
    SketchSpec(
        "heavy_hitters.streaming_numeric",
        lambda: MisraGriesSketch("i", k=4),
    ),
    SketchSpec(
        "heavy_hitters.sampled",
        lambda: SampleHeavyHittersSketch("s", k=4, rate=0.5, seed=11),
    ),
    SketchSpec(
        "quantile.asc",
        lambda: SampleQuantileSketch(
            RecordOrder.of("s", "i"), rate=1.0, max_size=64
        ),
    ),
    SketchSpec(
        "quantile.desc_sampled",
        lambda: SampleQuantileSketch(
            RecordOrder.of("d", "t", ascending=[False, True]),
            rate=0.5,
            seed=3,
            max_size=64,
        ),
    ),
    SketchSpec(
        "find_text.from_start",
        lambda: FindTextSketch(
            StringMatchPredicate("s", "a", mode="substring"),
            RecordOrder.of("s", "i"),
        ),
    ),
    SketchSpec(
        "find_text.after_key",
        lambda: FindTextSketch(
            StringMatchPredicate("s", "a", mode="substring"),
            RecordOrder.of("s", "i"),
            start_key=RecordOrder.of("s", "i").key_from_values(("da", 0)),
        ),
    ),
    SketchSpec(
        "find_text.desc_missing_key",
        lambda: FindTextSketch(
            StringMatchPredicate("s", "b", mode="substring"),
            RecordOrder.of("s", ascending=False),
            start_key=RecordOrder.of("s", ascending=False).key_from_values(
                (None,)
            ),
        ),
    ),
]


def spec_by_name(name: str) -> SketchSpec:
    for spec in SKETCH_SPECS:
        if spec.name == name:
            return spec
    raise KeyError(f"unknown sketch spec {name!r}")
