"""Heat map vizketch (§4.3).

Bins two columns into a ``Bx x By`` grid where each bin is rendered as a
``b x b`` pixel block whose color encodes density.  With ~20 discernible
colors the required accuracy per bin is half a color shade, giving the
sample bound of :func:`repro.core.sampling.heatmap_sample_size`.

Sampling is only sound when the count-to-color map is linear; log-scale
color maps need exact counts (§4.3 footnote, Appendix C.2), so the
spreadsheet uses ``rate=1.0`` for log-scale heat maps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.buckets import Buckets
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import SampledSketch, Summary
from repro.sketches.binning import bin_row_reference, bin_rows
from repro.table.table import Table


@dataclass
class HeatmapSummary(Summary):
    """A matrix of bin counts; merge adds matrices."""

    counts: np.ndarray  # int64[Bx, By]
    x_missing: int = 0
    y_missing: int = 0
    out_of_range: int = 0
    sampled_rows: int = 0

    @property
    def shape(self) -> tuple[int, int]:
        return self.counts.shape  # type: ignore[return-value]

    @property
    def total_in_range(self) -> int:
        return int(self.counts.sum())

    def proportions(self) -> np.ndarray:
        total = self.total_in_range
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total

    def transposed(self) -> "HeatmapSummary":
        """The same density with the axes swapped (§3.4: "swap axes").

        No recomputation is needed: the bin counts are symmetric in the two
        columns, so the UI can flip a heat map instantly from the summary it
        already holds.
        """
        return HeatmapSummary(
            counts=self.counts.T.copy(),
            x_missing=self.y_missing,
            y_missing=self.x_missing,
            out_of_range=self.out_of_range,
            sampled_rows=self.sampled_rows,
        )

    def encode(self, enc: Encoder) -> None:
        enc.write_array(self.counts)
        enc.write_uvarint(self.x_missing)
        enc.write_uvarint(self.y_missing)
        enc.write_uvarint(self.out_of_range)
        enc.write_uvarint(self.sampled_rows)

    @classmethod
    def decode(cls, dec: Decoder) -> "HeatmapSummary":
        return cls(
            counts=dec.read_array(),
            x_missing=dec.read_uvarint(),
            y_missing=dec.read_uvarint(),
            out_of_range=dec.read_uvarint(),
            sampled_rows=dec.read_uvarint(),
        )


class HeatmapSketch(SampledSketch[HeatmapSummary]):
    """Two-dimensional frequency sketch."""

    def __init__(
        self,
        x_column: str,
        x_buckets: Buckets,
        y_column: str,
        y_buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(rate, seed)
        self.x_column = x_column
        self.x_buckets = x_buckets
        self.y_column = y_column
        self.y_buckets = y_buckets
        self.deterministic = rate >= 1.0

    @property
    def name(self) -> str:
        return f"Heatmap({self.x_column},{self.y_column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        return (
            f"Heatmap({self.x_column!r},{self.x_buckets.spec()},"
            f"{self.y_column!r},{self.y_buckets.spec()})"
        )

    def zero(self) -> HeatmapSummary:
        return HeatmapSummary(
            counts=np.zeros((self.x_buckets.count, self.y_buckets.count), dtype=np.int64)
        )

    def summarize(self, table: Table) -> HeatmapSummary:
        rows = self.sampled_rows(table)
        bx, by = self.x_buckets.count, self.y_buckets.count
        x_binned = bin_rows(table, self.x_column, self.x_buckets, rows)
        y_binned = bin_rows(table, self.y_column, self.y_buckets, rows)
        both = (x_binned.indexes >= 0) & (y_binned.indexes >= 0)
        flat = x_binned.indexes[both] * by + y_binned.indexes[both]
        counts = (
            np.bincount(flat, minlength=bx * by).astype(np.int64).reshape(bx, by)
        )
        out_of_range = int((~both).sum()) - max(x_binned.missing, 0)
        return HeatmapSummary(
            counts=counts,
            x_missing=x_binned.missing,
            y_missing=y_binned.missing,
            out_of_range=max(out_of_range, 0),
            sampled_rows=len(rows),
        )

    def summarize_reference(self, table: Table) -> HeatmapSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        counts = np.zeros((self.x_buckets.count, self.y_buckets.count), dtype=np.int64)
        x_missing = y_missing = not_both = 0
        for row in rows:
            xi = bin_row_reference(table, self.x_column, int(row), self.x_buckets)
            yi = bin_row_reference(table, self.y_column, int(row), self.y_buckets)
            if xi is None:
                x_missing += 1
            if yi is None:
                y_missing += 1
            if xi is None or xi < 0 or yi is None or yi < 0:
                not_both += 1
            else:
                counts[xi, yi] += 1
        return HeatmapSummary(
            counts=counts,
            x_missing=x_missing,
            y_missing=y_missing,
            out_of_range=max(not_both - x_missing, 0),
            sampled_rows=len(rows),
        )

    def merge(self, left: HeatmapSummary, right: HeatmapSummary) -> HeatmapSummary:
        return HeatmapSummary(
            counts=left.counts + right.counts,
            x_missing=left.x_missing + right.x_missing,
            y_missing=left.y_missing + right.y_missing,
            out_of_range=left.out_of_range + right.out_of_range,
            sampled_rows=left.sampled_rows + right.sampled_rows,
        )
