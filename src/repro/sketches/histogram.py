"""Histogram vizketches: streaming (exact) and sampled (§4.3, B.1).

The summarize function outputs a vector of B bin counts; merge adds two
vectors.  The sampled variant draws a Bernoulli sample at a globally chosen
rate (from :mod:`repro.core.sampling`) and records how many rows it sampled,
so the renderer can scale estimates back to population counts.  At rate 1.0
the sampled sketch degenerates to the streaming sketch bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.buckets import Buckets, decode_buckets
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import SampledSketch, Summary
from repro.sketches.binning import bin_row_reference, bin_rows, bincount
from repro.table.table import Table


@dataclass
class HistogramSummary(Summary):
    """Bucket counts plus residual counts, over the rows examined."""

    counts: np.ndarray  # int64[B]
    missing: int = 0
    out_of_range: int = 0
    #: Rows examined by summarize (== population rows when rate is 1.0).
    sampled_rows: int = 0

    @property
    def buckets(self) -> int:
        return len(self.counts)

    @property
    def total_in_range(self) -> int:
        return int(self.counts.sum())

    def scaled_counts(self, rate: float) -> np.ndarray:
        """Estimated population counts given the global sampling rate."""
        if rate >= 1.0:
            return self.counts.astype(np.float64)
        return self.counts / rate

    def proportions(self) -> np.ndarray:
        """Bucket proportions among in-range rows (rate cancels out)."""
        total = self.total_in_range
        if total == 0:
            return np.zeros(self.buckets, dtype=np.float64)
        return self.counts / total

    def encode(self, enc: Encoder) -> None:
        enc.write_array(self.counts)
        enc.write_uvarint(self.missing)
        enc.write_uvarint(self.out_of_range)
        enc.write_uvarint(self.sampled_rows)

    @classmethod
    def decode(cls, dec: Decoder) -> "HistogramSummary":
        return cls(
            counts=dec.read_array(),
            missing=dec.read_uvarint(),
            out_of_range=dec.read_uvarint(),
            sampled_rows=dec.read_uvarint(),
        )


class HistogramSketch(SampledSketch[HistogramSummary]):
    """Histogram over one column (numeric, date, or bucketed strings).

    ``rate=1.0`` (the default) is the *streaming* histogram: an exact scan
    with no error, usable when users "want results precise to the last
    digit" (Appendix B.1).  A rate below 1.0 is the sampled vizketch with
    the pixel-accuracy guarantee of Theorem 3.
    """

    def __init__(
        self,
        column: str,
        buckets: Buckets,
        rate: float = 1.0,
        seed: int = 0,
    ):
        super().__init__(rate, seed)
        self.column = column
        self.buckets = buckets
        # An exact scan is deterministic and therefore cacheable.
        self.deterministic = rate >= 1.0

    @property
    def name(self) -> str:
        kind = "streaming" if self.rate >= 1.0 else "sampled"
        return f"Histogram[{kind}]({self.column})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        return f"Histogram({self.column!r},{self.buckets.spec()})"

    def zero(self) -> HistogramSummary:
        return HistogramSummary(counts=np.zeros(self.buckets.count, dtype=np.int64))

    def summarize(self, table: Table) -> HistogramSummary:
        rows = self.sampled_rows(table)
        binned = bin_rows(table, self.column, self.buckets, rows)
        return HistogramSummary(
            counts=bincount(binned.indexes, self.buckets.count),
            missing=binned.missing,
            out_of_range=binned.out_of_range,
            sampled_rows=len(rows),
        )

    def summarize_reference(self, table: Table) -> HistogramSummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        counts = np.zeros(self.buckets.count, dtype=np.int64)
        missing = out_of_range = 0
        for row in rows:
            index = bin_row_reference(table, self.column, int(row), self.buckets)
            if index is None:
                missing += 1
            elif index < 0:
                out_of_range += 1
            else:
                counts[index] += 1
        return HistogramSummary(
            counts=counts,
            missing=missing,
            out_of_range=out_of_range,
            sampled_rows=len(rows),
        )

    def merge(
        self, left: HistogramSummary, right: HistogramSummary
    ) -> HistogramSummary:
        return HistogramSummary(
            counts=left.counts + right.counts,
            missing=left.missing + right.missing,
            out_of_range=left.out_of_range + right.out_of_range,
            sampled_rows=left.sampled_rows + right.sampled_rows,
        )
