"""Exact distinct-values sketch.

Collects the set of distinct values of a column.  The summary grows with
the number of *distinct* values (not rows), so it is appropriate for
categorical columns — e.g., deciding whether a string column gets one
bucket per value (<= 50 distinct, Appendix B.1).  ``limit`` guards against
accidentally sketching a high-cardinality column; approximate counting for
those belongs to :class:`repro.sketches.hll.HyperLogLogSketch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import Sketch, Summary
from repro.errors import EngineError
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table


@dataclass
class DistinctSetSummary(Summary):
    """The set of distinct values seen, plus a truncation flag."""

    values: set = field(default_factory=set)
    missing: int = 0
    #: True when the limit was hit and the set is no longer exhaustive.
    truncated: bool = False

    @property
    def count(self) -> int:
        return len(self.values)

    def sorted_values(self) -> list:
        return sorted(self.values, key=lambda v: (v is None, v))

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(len(self.values))
        for value in self.sorted_values():
            write_tagged_value(enc, value)
        enc.write_uvarint(self.missing)
        enc.write_bool(self.truncated)

    @classmethod
    def decode(cls, dec: Decoder) -> "DistinctSetSummary":
        values = {read_tagged_value(dec) for _ in range(dec.read_uvarint())}
        return cls(
            values=values,
            missing=dec.read_uvarint(),
            truncated=dec.read_bool(),
        )


class ExactDistinctSketch(Sketch[DistinctSetSummary]):
    """Exact distinct values of a column, bounded by ``limit``."""

    def __init__(self, column: str, limit: int = 100_000):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.column = column
        self.limit = limit

    @property
    def name(self) -> str:
        return f"Distinct({self.column})"

    def cache_key(self) -> str:
        return f"Distinct({self.column!r},limit={self.limit})"

    def zero(self) -> DistinctSetSummary:
        return DistinctSetSummary()

    def _bounded(self, summary: DistinctSetSummary) -> DistinctSetSummary:
        if len(summary.values) > self.limit:
            ordered = summary.sorted_values()[: self.limit]
            return DistinctSetSummary(
                values=set(ordered), missing=summary.missing, truncated=True
            )
        return summary

    def summarize(self, table: Table) -> DistinctSetSummary:
        rows = table.members.indices()
        column = table.column(self.column)
        if isinstance(column, StringColumn):
            codes = column.codes_at(rows)
            present = codes[codes != MISSING_CODE]
            missing = len(codes) - len(present)
            names = column.dictionary.values
            values = {names[int(c)] for c in np.unique(present)}
        else:
            numeric = column.numeric_values(rows)
            present_values = numeric[~np.isnan(numeric)]
            missing = len(numeric) - len(present_values)
            values = {float(v) for v in np.unique(present_values)}
        return self._bounded(DistinctSetSummary(values=values, missing=missing))

    def merge(
        self, left: DistinctSetSummary, right: DistinctSetSummary
    ) -> DistinctSetSummary:
        return self._bounded(
            DistinctSetSummary(
                values=left.values | right.values,
                missing=left.missing + right.missing,
                truncated=left.truncated or right.truncated,
            )
        )

    def require_exact(self, summary: DistinctSetSummary) -> DistinctSetSummary:
        """Raise if the summary was truncated (callers needing exactness)."""
        if summary.truncated:
            raise EngineError(
                f"column {self.column!r} exceeded the {self.limit} distinct-value"
                " limit; use HyperLogLogSketch for approximate counting"
            )
        return summary
