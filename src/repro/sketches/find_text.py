"""Find-text vizketch (§4.3, B.2): free-form search in the tabular view.

Given a search criterion (exact / substring / regexp, case sensitivity), a
sort order and a start position, this sketch finds the next matching row in
the sort order, plus how many matches lie before/after — enough for the UI
to say "match 7 of 152" and jump to it.

It is the next-items vizketch restricted to matching rows (the paper
describes it exactly that way).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import Sketch, Summary
from repro.table.compute import StringMatchPredicate
from repro.table.sort import RecordOrder, RowKey
from repro.table.table import Table


@dataclass
class FindResult(Summary):
    """First match after the start position plus match counts."""

    order: RecordOrder
    first_match: tuple | None = None
    #: Matches at or before the start position.
    matches_before: int = 0
    #: Matches strictly after the start position (including first_match).
    matches_after: int = 0

    @property
    def total_matches(self) -> int:
        return self.matches_before + self.matches_after

    def first_key(self) -> RowKey | None:
        if self.first_match is None:
            return None
        return self.order.key_from_values(self.first_match)

    def encode(self, enc: Encoder) -> None:
        self.order.encode(enc)
        enc.write_bool(self.first_match is not None)
        if self.first_match is not None:
            enc.write_uvarint(len(self.first_match))
            for value in self.first_match:
                write_tagged_value(enc, value)
        enc.write_uvarint(self.matches_before)
        enc.write_uvarint(self.matches_after)

    @classmethod
    def decode(cls, dec: Decoder) -> "FindResult":
        order = RecordOrder.decode(dec)
        first = None
        if dec.read_bool():
            first = tuple(read_tagged_value(dec) for _ in range(dec.read_uvarint()))
        return cls(
            order=order,
            first_match=first,
            matches_before=dec.read_uvarint(),
            matches_after=dec.read_uvarint(),
        )


class FindTextSketch(Sketch[FindResult]):
    """Locate the next row matching a text search (paper §3.3)."""

    def __init__(
        self,
        predicate: StringMatchPredicate,
        order: RecordOrder,
        start_key: RowKey | None = None,
    ):
        self.predicate = predicate
        self.order = order
        self.start_key = start_key

    @property
    def name(self) -> str:
        return f"FindText({self.predicate.pattern!r} in {self.predicate.column})"

    def cache_key(self) -> str | None:
        start = None if self.start_key is None else self.start_key.values()
        return f"Find({self.predicate.spec()},{self.order.spec()!r},{start!r})"

    def zero(self) -> FindResult:
        return FindResult(order=self.order)

    def summarize(self, table: Table) -> FindResult:
        rows = table.members.indices()
        matching = rows[self.predicate.evaluate(table, rows)]
        if len(matching) == 0:
            return self.zero()
        sorted_rows = self.order.argsort(table, matching)
        columns = [table.column(c) for c in self.order.columns]

        def values_of(position: int) -> tuple:
            row = int(sorted_rows[position])
            return tuple(column.value(row) for column in columns)

        total = len(sorted_rows)
        first = 0
        if self.start_key is not None:
            # Keys are non-decreasing along the sorted rows, so
            # ``start_key < key`` is monotone: the matches at or before
            # the start form a prefix.  Binary search builds O(log n) row
            # keys instead of one per match.
            lo, hi = 0, total
            while lo < hi:
                mid = (lo + hi) // 2
                key = self.order.key_from_values(values_of(mid))
                if self.start_key < key:
                    hi = mid
                else:
                    lo = mid + 1
            first = lo
        result = FindResult(
            order=self.order,
            matches_before=first,
            matches_after=total - first,
        )
        if first < total:
            result.first_match = values_of(first)
        return result

    def summarize_reference(self, table: Table) -> FindResult:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = table.members.indices()
        matching = rows[self.predicate.evaluate(table, rows)]
        if len(matching) == 0:
            return self.zero()
        sorted_rows = self.order.argsort(table, matching)
        columns = [table.column(c) for c in self.order.columns]
        result = FindResult(order=self.order)
        for row in sorted_rows:
            values = tuple(column.value(int(row)) for column in columns)
            key = self.order.key_from_values(values)
            if self.start_key is not None and not self.start_key < key:
                result.matches_before += 1
                continue
            if result.first_match is None:
                result.first_match = values
            result.matches_after += 1
        return result

    def merge(self, left: FindResult, right: FindResult) -> FindResult:
        merged = FindResult(
            order=self.order,
            matches_before=left.matches_before + right.matches_before,
            matches_after=left.matches_after + right.matches_after,
        )
        lkey, rkey = left.first_key(), right.first_key()
        if lkey is None:
            merged.first_match = right.first_match
        elif rkey is None:
            merged.first_match = left.first_match
        else:
            merged.first_match = (
                left.first_match if lkey.compare(rkey) <= 0 else right.first_match
            )
        return merged
