"""Heavy hitters vizketches (§4.3, B.2): streaming and sampling variants.

*Streaming* uses the Misra-Gries algorithm [Misra & Gries 1982] in its
mergeable-summaries form [Agarwal et al. 2012]: a summary is a set of at
most k counters; reduction subtracts the (k+1)-st largest counter from all
and drops non-positive ones, adding that amount to the error bound.  Every
element with frequency >= n/(k+1) survives, and reported counts undercount
by at most the error bound.

*Sampling* (Theorem 4) samples ~``K^2 log(K/delta)`` rows and reports
values occurring at least ``3n/(4K)`` times in the sample: all elements
above frequency 1/K are found and none below 1/(4K) are reported, w.h.p.
The paper notes sampling wins when K is small; the crossover is measured in
``benchmarks/bench_heavy_hitters.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import SampledSketch, Sketch, Summary
from repro.table.column import StringColumn
from repro.table.dictionary import MISSING_CODE
from repro.table.table import Table


def _canonical_value_rank(value: object) -> int:
    if isinstance(value, (bool, int, np.integer)):
        return 0
    if isinstance(value, (float, np.floating)):
        return 1
    if isinstance(value, str):
        return 2
    return 3


def canonical_counts(counts: dict) -> list[tuple[object, int]]:
    """``counts.items()`` in canonical wire order.

    Sorted by value kind first, then string form: a bare ``str(value)``
    sort ties distinct values whose string forms collide (``3`` vs
    ``"3"``), letting dict insertion order leak into the encoding.  With
    the kind rank the key is injective over any legal counts dict, so
    identical summaries from different merge orders (or a redo-log
    replay, §5.8) encode bit-identically.
    """
    return sorted(
        counts.items(),
        key=lambda kv: (_canonical_value_rank(kv[0]), str(kv[0])),
    )


@dataclass
class FrequencySummary(Summary):
    """Approximate value counts with a global undercount bound."""

    counts: dict = field(default_factory=dict)
    #: Reported counts may undercount true counts by at most this much.
    error_bound: int = 0
    #: Rows examined (population rows for streaming; sample size for sampling).
    scanned: int = 0

    def hitters(self, threshold_fraction: float) -> list[tuple[object, int]]:
        """Values whose estimated frequency is >= ``threshold_fraction``.

        Counts are corrected upward by the error bound before thresholding
        so no true heavy hitter is dropped; sorted by count descending.
        """
        if self.scanned == 0:
            return []
        cutoff = threshold_fraction * self.scanned
        found = [
            (value, count)
            for value, count in self.counts.items()
            if count + self.error_bound >= cutoff
        ]
        found.sort(key=lambda item: (-item[1], str(item[0])))
        return found

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(len(self.counts))
        for value, count in canonical_counts(self.counts):
            write_tagged_value(enc, value)
            enc.write_uvarint(count)
        enc.write_uvarint(self.error_bound)
        enc.write_uvarint(self.scanned)

    @classmethod
    def decode(cls, dec: Decoder) -> "FrequencySummary":
        counts = {}
        for _ in range(dec.read_uvarint()):
            value = read_tagged_value(dec)
            counts[value] = dec.read_uvarint()
        return cls(
            counts=counts,
            error_bound=dec.read_uvarint(),
            scanned=dec.read_uvarint(),
        )


def _exact_value_counts(table: Table, column_name: str, rows: np.ndarray) -> dict:
    """Exact value -> count over ``rows`` (missing values excluded)."""
    column = table.column(column_name)
    if isinstance(column, StringColumn):
        codes = column.codes_at(rows)
        codes = codes[codes != MISSING_CODE]
        unique, counts = np.unique(codes, return_counts=True)
        values = column.dictionary.values
        return {values[int(c)]: int(n) for c, n in zip(unique, counts)}
    values = column.numeric_values(rows)
    values = values[~np.isnan(values)]
    unique, counts = np.unique(values, return_counts=True)
    return {float(v): int(n) for v, n in zip(unique, counts)}


def _exact_value_counts_reference(
    table: Table, column_name: str, rows: np.ndarray
) -> dict:
    """Per-row oracle twin of :func:`_exact_value_counts`.

    Coerces each value exactly as the vectorized pass does (one-row
    ``numeric_values`` call) so the differential harness compares bytes,
    not approximations.
    """
    column = table.column(column_name)
    counts: dict = {}
    for row in rows:
        if isinstance(column, StringColumn):
            value = column.value(int(row))
        else:
            scalar = float(
                column.numeric_values(np.array([row], dtype=np.int64))[0]
            )
            value = None if np.isnan(scalar) else scalar
        if value is None:
            continue
        counts[value] = counts.get(value, 0) + 1
    return counts


def _misra_gries_reduce(summary: FrequencySummary, k: int) -> FrequencySummary:
    """Shrink to at most k counters (mergeable-summaries reduction)."""
    if len(summary.counts) <= k:
        return summary
    ordered = sorted(summary.counts.values(), reverse=True)
    subtract = ordered[k]
    reduced = {
        value: count - subtract
        for value, count in summary.counts.items()
        if count > subtract
    }
    return FrequencySummary(
        counts=reduced,
        error_bound=summary.error_bound + subtract,
        scanned=summary.scanned,
    )


class MisraGriesSketch(Sketch[FrequencySummary]):
    """Streaming heavy hitters with at most ``k`` counters."""

    def __init__(self, column: str, k: int):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.column = column
        self.k = k

    @property
    def name(self) -> str:
        return f"HeavyHitters[streaming]({self.column},k={self.k})"

    def cache_key(self) -> str:
        return f"MisraGries({self.column!r},{self.k})"

    def zero(self) -> FrequencySummary:
        return FrequencySummary()

    def summarize(self, table: Table) -> FrequencySummary:
        rows = table.members.indices()
        counts = _exact_value_counts(table, self.column, rows)
        summary = FrequencySummary(counts=counts, scanned=len(rows))
        return _misra_gries_reduce(summary, self.k)

    def summarize_reference(self, table: Table) -> FrequencySummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = table.members.indices()
        counts = _exact_value_counts_reference(table, self.column, rows)
        summary = FrequencySummary(counts=counts, scanned=len(rows))
        return _misra_gries_reduce(summary, self.k)

    def merge(
        self, left: FrequencySummary, right: FrequencySummary
    ) -> FrequencySummary:
        counts = dict(left.counts)
        # repro: ignore[D002] — addition is order-independent; mixed int/str keys only sort at encode time via canonical_counts()
        for value, count in right.counts.items():
            counts[value] = counts.get(value, 0) + count
        merged = FrequencySummary(
            counts=counts,
            error_bound=left.error_bound + right.error_bound,
            scanned=left.scanned + right.scanned,
        )
        return _misra_gries_reduce(merged, self.k)


class SampleHeavyHittersSketch(SampledSketch[FrequencySummary]):
    """Sampling heavy hitters (Theorem 4).

    Summaries count a Bernoulli sample exactly; the root thresholds at
    ``3/(4K)`` of the sample via :meth:`FrequencySummary.hitters`.
    """

    def __init__(self, column: str, k: int, rate: float, seed: int = 0):
        super().__init__(rate, seed)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.column = column
        self.k = k

    @property
    def name(self) -> str:
        return f"HeavyHitters[sampling]({self.column},k={self.k})"

    @property
    def report_threshold(self) -> float:
        """The paper's reporting threshold: 3/(4K) of the sampled rows."""
        return 3.0 / (4.0 * self.k)

    def zero(self) -> FrequencySummary:
        return FrequencySummary()

    def summarize(self, table: Table) -> FrequencySummary:
        rows = self.sampled_rows(table)
        counts = _exact_value_counts(table, self.column, rows)
        return FrequencySummary(counts=counts, scanned=len(rows))

    def summarize_reference(self, table: Table) -> FrequencySummary:
        """Per-row oracle for :meth:`summarize` (differential tests)."""
        rows = self.sampled_rows(table)
        counts = _exact_value_counts_reference(table, self.column, rows)
        return FrequencySummary(counts=counts, scanned=len(rows))

    def merge(
        self, left: FrequencySummary, right: FrequencySummary
    ) -> FrequencySummary:
        counts = dict(left.counts)
        # repro: ignore[D002] — addition is order-independent; ordering is canonicalized at encode time via canonical_counts()
        for value, count in right.counts.items():
            counts[value] = counts.get(value, 0) + count
        return FrequencySummary(
            counts=counts,
            error_bound=0,
            scanned=left.scanned + right.scanned,
        )

    def hitters(self, summary: FrequencySummary) -> list[tuple[object, int]]:
        """Apply the 3n/(4K) selection rule to a merged summary."""
        return summary.hitters(self.report_threshold)
