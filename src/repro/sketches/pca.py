"""PCA via a sampled correlation-matrix sketch (§B.3).

Principal component analysis of M numeric columns projects the data along
eigenvectors of the M x M correlation matrix, which "can be efficiently
computed by a sampling-based sketch": the summary accumulates row counts,
per-column sums and the cross-product matrix; merge adds them.  The root
then forms the correlation matrix and its eigendecomposition — an
O(M^2)-sized summary for any number of rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import SampledSketch, Summary
from repro.table.table import Table


@dataclass
class CorrelationSummary(Summary):
    """Accumulated sufficient statistics for a correlation matrix."""

    columns: list[str]
    count: int  # rows with all columns present
    sums: np.ndarray  # float64[M]
    products: np.ndarray  # float64[M, M]: sum of x_i * x_j

    def means(self) -> np.ndarray:
        if self.count == 0:
            return np.zeros(len(self.columns))
        return self.sums / self.count

    def covariance(self) -> np.ndarray:
        """Population covariance matrix."""
        if self.count == 0:
            return np.zeros_like(self.products)
        means = self.means()
        return self.products / self.count - np.outer(means, means)

    def correlation(self) -> np.ndarray:
        cov = self.covariance()
        std = np.sqrt(np.clip(np.diag(cov), 1e-30, None))
        return cov / np.outer(std, std)

    def principal_components(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` (eigenvalues, eigenvectors) of the correlation matrix.

        Eigenvectors are returned as rows, ordered by decreasing eigenvalue;
        each row's sign is normalized so its largest-magnitude entry is
        positive (eigenvectors are defined up to sign).
        """
        if not 1 <= k <= len(self.columns):
            raise ValueError(f"k must be in [1, {len(self.columns)}]")
        eigenvalues, eigenvectors = np.linalg.eigh(self.correlation())
        order = np.argsort(eigenvalues)[::-1][:k]
        values = eigenvalues[order]
        vectors = eigenvectors[:, order].T
        for row in vectors:
            pivot = np.argmax(np.abs(row))
            if row[pivot] < 0:
                row *= -1.0
        return values, vectors

    def explained_variance(self, k: int) -> float:
        """Fraction of total variance captured by the top k components."""
        values, _ = self.principal_components(len(self.columns))
        total = float(values.sum())
        return float(values[:k].sum() / total) if total > 0 else 0.0

    def encode(self, enc: Encoder) -> None:
        enc.write_str_list(self.columns)
        enc.write_uvarint(self.count)
        enc.write_array(self.sums)
        enc.write_array(self.products)

    @classmethod
    def decode(cls, dec: Decoder) -> "CorrelationSummary":
        columns = [s or "" for s in dec.read_str_list()]
        return cls(
            columns=columns,
            count=dec.read_uvarint(),
            sums=dec.read_array(),
            products=dec.read_array(),
        )


class CorrelationSketch(SampledSketch[CorrelationSummary]):
    """Sufficient statistics for PCA over ``columns``.

    Rows with a missing value in any of the columns are skipped (complete-
    case analysis).  ``rate=1.0`` scans; lower rates sample, which is sound
    because correlations are ratios of moments — scale cancels.
    """

    def __init__(self, columns: list[str], rate: float = 1.0, seed: int = 0):
        super().__init__(rate, seed)
        if len(columns) < 2:
            raise ValueError("PCA needs at least two columns")
        self.columns = list(columns)
        self.deterministic = rate >= 1.0

    @property
    def name(self) -> str:
        return f"Correlation({','.join(self.columns)})"

    def cache_key(self) -> str | None:
        if not self.deterministic:
            return None
        return f"Correlation({self.columns!r})"

    def zero(self) -> CorrelationSummary:
        m = len(self.columns)
        return CorrelationSummary(
            columns=self.columns,
            count=0,
            sums=np.zeros(m),
            products=np.zeros((m, m)),
        )

    def summarize(self, table: Table) -> CorrelationSummary:
        rows = self.sampled_rows(table)
        matrix = np.column_stack(
            [table.column(name).numeric_values(rows) for name in self.columns]
        )
        complete = ~np.isnan(matrix).any(axis=1)
        matrix = matrix[complete]
        return CorrelationSummary(
            columns=self.columns,
            count=matrix.shape[0],
            sums=matrix.sum(axis=0),
            products=matrix.T @ matrix,
        )

    def merge(
        self, left: CorrelationSummary, right: CorrelationSummary
    ) -> CorrelationSummary:
        return CorrelationSummary(
            columns=self.columns,
            count=left.count + right.count,
            sums=left.sums + right.sums,
            products=left.products + right.products,
        )
