"""Next-items vizketch: the tabular view of the spreadsheet (§4.3).

Given a sort order, a start position R (a row key, or None for the top) and
a count K, this sketch returns the K distinct rows following R in the sort
order, each with its repetition count (paper §3.3 aggregates duplicates).

``summarize`` sorts one shard and takes its local next-K groups;
``merge`` interleaves two sorted lists, combining counts of equal keys and
truncating to K — the classic mergeable top-K structure.  The summary also
carries how many rows precede R, which positions the scroll bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.serialization import (
    Decoder,
    Encoder,
    read_tagged_value,
    write_tagged_value,
)
from repro.core.sketch import Sketch, Summary
from repro.table.sort import RecordOrder, RowKey
from repro.table.table import Table


@dataclass
class NextKList(Summary):
    """K distinct row keys (as raw cell values) with repetition counts."""

    order: RecordOrder
    rows: list[tuple] = field(default_factory=list)
    counts: list[int] = field(default_factory=list)
    #: Member rows at or before the start position (for the scroll bar).
    preceding: int = 0
    #: Total member rows examined (preceding + following).
    scanned: int = 0

    def keys(self) -> list[RowKey]:
        return [self.order.key_from_values(values) for values in self.rows]

    @property
    def position_fraction(self) -> float:
        """Approximate scroll position of the first listed row."""
        if self.scanned == 0:
            return 0.0
        return self.preceding / self.scanned

    def encode(self, enc: Encoder) -> None:
        self.order.encode(enc)
        enc.write_uvarint(len(self.rows))
        for values, count in zip(self.rows, self.counts):
            enc.write_uvarint(count)
            enc.write_uvarint(len(values))
            for value in values:
                write_tagged_value(enc, value)
        enc.write_uvarint(self.preceding)
        enc.write_uvarint(self.scanned)

    @classmethod
    def decode(cls, dec: Decoder) -> "NextKList":
        order = RecordOrder.decode(dec)
        rows: list[tuple] = []
        counts: list[int] = []
        for _ in range(dec.read_uvarint()):
            counts.append(dec.read_uvarint())
            width = dec.read_uvarint()
            rows.append(tuple(read_tagged_value(dec) for _ in range(width)))
        return cls(
            order=order,
            rows=rows,
            counts=counts,
            preceding=dec.read_uvarint(),
            scanned=dec.read_uvarint(),
        )


class NextKSketch(Sketch[NextKList]):
    """The K distinct rows following ``start_key`` in ``order``.

    With ``inclusive`` the row equal to ``start_key`` is included at the top
    of the result — used when jumping to a found row or a quantile, so the
    target row is the first visible one.
    """

    def __init__(
        self,
        order: RecordOrder,
        k: int,
        start_key: RowKey | None = None,
        inclusive: bool = False,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.order = order
        self.k = k
        self.start_key = start_key
        self.inclusive = inclusive

    def _precedes(self, key: RowKey) -> bool:
        """Whether a row with ``key`` falls before the view window."""
        if self.start_key is None:
            return False
        if self.inclusive:
            return key < self.start_key
        return not self.start_key < key

    @property
    def name(self) -> str:
        return f"NextK({self.order.spec()},k={self.k})"

    def cache_key(self) -> str | None:
        start = None if self.start_key is None else self.start_key.values()
        return f"NextK({self.order.spec()!r},{self.k},{start!r},inc={self.inclusive})"

    def zero(self) -> NextKList:
        return NextKList(order=self.order)

    def summarize(self, table: Table) -> NextKList:
        rows = table.members.indices()
        if len(rows) == 0:
            return self.zero()
        sorted_rows = self.order.argsort(table, rows)
        # Group equal keys using the shard-local surrogates: equal surrogate
        # vectors imply equal cell values within one shard.
        keys = np.stack(self.order.surrogate_keys(table, sorted_rows))
        change = np.any(keys[:, 1:] != keys[:, :-1], axis=0)
        starts = np.concatenate(([0], np.flatnonzero(change) + 1))
        ends = np.concatenate((starts[1:], [len(sorted_rows)]))

        result = NextKList(order=self.order, scanned=len(rows))
        preceding = 0
        columns = [table.column(c) for c in self.order.columns]
        for start, end in zip(starts, ends):
            row = int(sorted_rows[start])
            values = tuple(column.value(row) for column in columns)
            key = self.order.key_from_values(values)
            if self._precedes(key):
                preceding += int(end - start)
                continue
            if len(result.rows) < self.k:
                result.rows.append(values)
                result.counts.append(int(end - start))
        result.preceding = preceding
        return result

    def merge(self, left: NextKList, right: NextKList) -> NextKList:
        merged = NextKList(
            order=self.order,
            preceding=left.preceding + right.preceding,
            scanned=left.scanned + right.scanned,
        )
        li = ri = 0
        lkeys, rkeys = left.keys(), right.keys()
        while len(merged.rows) < self.k and (li < len(lkeys) or ri < len(rkeys)):
            if li >= len(lkeys):
                take_left, take_right = False, True
            elif ri >= len(rkeys):
                take_left, take_right = True, False
            else:
                cmp = lkeys[li].compare(rkeys[ri])
                take_left, take_right = cmp <= 0, cmp >= 0
            count = 0
            values: tuple = ()
            if take_left:
                values = left.rows[li]
                count += left.counts[li]
                li += 1
            if take_right:
                values = right.rows[ri]
                count += right.counts[ri]
                ri += 1
            merged.rows.append(values)
            merged.counts.append(count)
        return merged
