"""The Hillview execution engine (paper §5).

Queries execute as trees: leaves run ``summarize`` over micropartitions in
parallel, aggregation nodes ``merge`` results upward at a fixed cadence, and
the root streams progressively merged partial results to the client.  The
engine also provides computation/data caching, cancellation, soft state
with redo-log replay (fault tolerance), and network byte accounting.

Two interchangeable engines implement :class:`~repro.engine.dataset.IDataSet`:

* :mod:`repro.engine.local` — in-process, real threads; used by tests and
  wall-clock microbenchmarks;
* :mod:`repro.engine.cluster` — a multi-"server" engine with per-server
  object stores, caches, redo log and fault injection; the reproduction of
  the paper's distributed architecture.

:mod:`repro.engine.simulation` additionally provides a deterministic
discrete-event simulator for figure-scale experiments (billions of rows).
"""

from repro.engine.progress import (
    CancellationToken,
    PartialResult,
    SketchRun,
)
from repro.engine.dataset import (
    IDataSet,
    TableMap,
    FilterMap,
    DeriveMap,
    ExpressionMap,
    ProjectMap,
)
from repro.engine.local import LocalDataSet, ParallelDataSet, parallel_dataset
from repro.engine.cache import (
    CacheStats,
    ComputationCache,
    DataCache,
    MemoCache,
    caches_disabled,
)
from repro.engine.cluster import (
    Cluster,
    ClusterDataSet,
    StealLedger,
    StolenParcel,
    Worker,
    WorkerProtocol,
    prewarm_budget_bytes,
    steal_enabled,
)
from repro.engine.remote import (
    ProcessCluster,
    RemoteWorkerProxy,
    WorkerServer,
)
from repro.engine.rpc import ProtocolError, RpcReply, RpcRequest
from repro.engine.web import WebServer

__all__ = [
    "CancellationToken",
    "PartialResult",
    "SketchRun",
    "IDataSet",
    "TableMap",
    "FilterMap",
    "DeriveMap",
    "ExpressionMap",
    "ProjectMap",
    "LocalDataSet",
    "ParallelDataSet",
    "parallel_dataset",
    "CacheStats",
    "ComputationCache",
    "MemoCache",
    "caches_disabled",
    "ProtocolError",
    "RpcReply",
    "RpcRequest",
    "WebServer",
    "DataCache",
    "Cluster",
    "ClusterDataSet",
    "ProcessCluster",
    "RemoteWorkerProxy",
    "StealLedger",
    "StolenParcel",
    "Worker",
    "WorkerProtocol",
    "WorkerServer",
    "prewarm_budget_bytes",
    "steal_enabled",
]
