"""The multi-tier memoization subsystem (paper §5.4).

Hillview's performance story rests on two *soft* caches:

* the **data cache** holds raw loaded data in memory; entries unused for a
  while (2 hours in the paper) are purged, and are reconstructed from the
  storage layer on demand — all cached state is soft;
* the **computation cache** stores vizketch *results*, which are tiny, so a
  large number can be kept; it is indexed by (dataset, sketch) and only
  holds deterministic computations.

This module provides the one cache implementation behind every tier of the
reproduction:

* :class:`MemoCache` — the shared interface: an LRU cache with a TTL, an
  optional byte budget (entries are sized by an injectable ``sizer``),
  hit/miss/eviction statistics, prefix invalidation (drop every entry of
  one dataset), and an injectable clock so tests and the simulator control
  time.  Caches created with ``disableable=True`` honor the
  ``REPRO_DISABLE_CACHES=1`` environment switch and become pass-through,
  which is how CI proves cached and uncached paths byte-identical.
* :class:`DataCache` — the worker's soft object store (shards per dataset).
  It is *not* disableable: it holds the data itself, not a memoized
  derivation of it.
* :class:`ComputationCache` — deterministic vizketch results at the root,
  keyed by (dataset id, sketch cache key), with byte-size accounting.

Workers additionally keep a memo cache of *partial* sketch results keyed by
``(dataset id, sketch cache key, shard slice)`` — see
:class:`~repro.engine.cluster.Worker` — so on a shared fleet a sketch
computed for one root is served from the worker cache to every other root.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass
from math import inf
from typing import Callable, Generic, TypeVar

V = TypeVar("V")

#: Separator between the dataset id and the rest of a cache key.  Every
#: dataset-dependent entry at every tier starts with ``dataset_id + KEY_SEP``
#: so evicting a dataset can invalidate its entries by prefix.
KEY_SEP = "\x00"


def caches_disabled() -> bool:
    """Whether the ``REPRO_DISABLE_CACHES`` switch is on.

    Read per call (not at import) so a test — or the CI matrix leg that
    runs the whole suite uncached — can flip it without re-importing the
    engine.  Only *memoization* caches honor it; the workers' shard
    stores are data, not derived results, and stay on.
    """
    return os.environ.get("REPRO_DISABLE_CACHES", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


@dataclass
class CacheStats:
    """One cache's counters, snapshotted for the ``cache_stats`` RPC."""

    name: str
    entries: int
    bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    max_entries: int
    max_bytes: int | None
    disabled: bool

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 for a never-probed cache."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "entries": self.entries,
            "bytes": self.bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hitRate": round(self.hit_rate, 4),
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "maxEntries": self.max_entries,
            "maxBytes": self.max_bytes,
            "disabled": self.disabled,
        }


class MemoCache(Generic[V]):
    """An LRU cache with a TTL, a byte budget, and statistics.

    The single implementation behind every cache tier: the worker shard
    store, the worker partial-sketch memo, the root computation cache and
    the root row-count cache are all instances with different budgets.

    ``clock`` is injectable so tests (and the simulator) can control time.
    ``sizer`` maps a value to its accounted size in bytes; entries are
    evicted LRU-first while the total exceeds ``max_bytes``.
    ``disableable=True`` makes the cache honor :func:`caches_disabled`:
    every ``get`` misses and every ``put`` is dropped, turning the cache
    into a pass-through without changing any caller.
    """

    def __init__(
        self,
        max_entries: int = 64,
        ttl_seconds: float = inf,
        clock: Callable[[], float] = time.monotonic,
        max_bytes: int | None = None,
        sizer: Callable[[V], int] | None = None,
        name: str = "cache",
        disableable: bool = False,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be >= 1 (or None for unbudgeted)")
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_seconds = ttl_seconds
        self.disableable = disableable
        self._clock = clock
        self._sizer = sizer
        self._lock = threading.Lock()
        #: key -> (stored_at, value, accounted size in bytes)
        self._entries: "dict[str, tuple[float, V, int]]" = {}
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- internals (lock held) ------------------------------------------
    def _disabled(self) -> bool:
        return self.disableable and caches_disabled()

    def _size_of(self, value: V) -> int:
        if self._sizer is None:
            return 0
        try:
            return max(0, int(self._sizer(value)))
        except Exception:  # repro: ignore[B001] — sizing must never fail a put
            return 0

    def _drop(self, key: str) -> None:
        _, _, size = self._entries.pop(key)
        # repro: ignore[C001] — private helper; every caller (get/put/invalidate/sweep) holds self._lock
        self.current_bytes -= size

    def _expired(self, stored_at: float, now: float) -> bool:
        return now - stored_at > self.ttl_seconds

    def _shrink_to_budget(self) -> None:
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self.current_bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            oldest = next(iter(self._entries))
            self._drop(oldest)
            # repro: ignore[C001] — private helper; every caller (put/sweep) holds self._lock
            self.evictions += 1

    # -- the cache interface --------------------------------------------
    def get(self, key: str) -> V | None:
        with self._lock:
            if self._disabled():
                self.misses += 1
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value, size = entry
            now = self._clock()
            if self._expired(stored_at, now):
                self._drop(key)
                self.evictions += 1
                self.misses += 1
                return None
            # Move to the MRU end (dicts preserve insertion order) and
            # refresh the stamp: the TTL is time since last *use* (§5.4,
            # "not accessed for 2 hours"), so the periodic sweep never
            # purges an entry that is actively serving queries.
            del self._entries[key]
            self._entries[key] = (now, value, size)
            self.hits += 1
            return value

    def put(self, key: str, value: V) -> None:
        with self._lock:
            if self._disabled():
                return
            if key in self._entries:
                self._drop(key)
            size = self._size_of(value)
            self._entries[key] = (self._clock(), value, size)
            self.current_bytes += size
            self._shrink_to_budget()

    def evict(self, key: str) -> bool:
        """Remove one entry (fault injection / memory pressure)."""
        with self._lock:
            if key in self._entries:
                self._drop(key)
                self.evictions += 1
                return True
            return False

    def invalidate_prefix(self, prefix: str) -> int:
        """Drop every entry whose key starts with ``prefix``.

        This is how evicting a dataset invalidates its dependent entries:
        every dataset-derived key starts with ``dataset_id + KEY_SEP``.
        Returns how many entries were dropped.
        """
        with self._lock:
            stale = [key for key in self._entries if key.startswith(prefix)]
            for key in stale:
                self._drop(key)
            self.invalidations += len(stale)
            return len(stale)

    def purge_stale(self) -> int:
        """Drop entries older than the TTL; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            stale = [
                key
                for key, (stored_at, _, _) in self._entries.items()
                if self._expired(stored_at, now)
            ]
            for key in stale:
                self._drop(key)
            self.evictions += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    def keys(self) -> list[str]:
        """Live (non-expired) keys, LRU-first; takes the lock.

        Used by fleet rebalancing to inventory a worker's resident
        datasets without disturbing recency or hit/miss counters.
        """
        now = self._clock()
        with self._lock:
            return [
                key
                for key, (stored_at, _, _) in self._entries.items()
                if not self._expired(stored_at, now)
            ]

    def peek(self, key: str) -> V | None:
        """Read an entry without touching it: no MRU move, no TTL
        refresh, no hit/miss accounting.  Inventory and monitoring paths
        use this so polling ``fleet status`` can never keep a dead
        dataset alive past the §5.4 idle TTL (or inflate hit rates)."""
        now = self._clock()
        with self._lock:
            if self._disabled():
                return None
            entry = self._entries.get(key)
            if entry is None or self._expired(entry[0], now):
                return None
            return entry[1]

    def stats(self) -> CacheStats:
        with self._lock:
            now = self._clock()
            live = live_bytes = 0
            for stored_at, _, size in self._entries.values():
                if not self._expired(stored_at, now):
                    live += 1
                    live_bytes += size
            return CacheStats(
                name=self.name,
                entries=live,
                bytes=live_bytes,
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                invalidations=self.invalidations,
                max_entries=self.max_entries,
                max_bytes=self.max_bytes,
                disabled=self._disabled(),
            )

    def __len__(self) -> int:
        """Live (non-expired) entry count; takes the lock."""
        now = self._clock()
        with self._lock:
            return sum(
                1
                for stored_at, _, _ in self._entries.values()
                if not self._expired(stored_at, now)
            )

    def __contains__(self, key: str) -> bool:
        """TTL-aware membership; takes the lock and never reports an
        expired entry as present (it is unreachable through ``get``)."""
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry[0], now)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name} entries={len(self._entries)} "
            f"bytes={self.current_bytes} hits={self.hits} misses={self.misses}>"
        )


class DataCache(MemoCache[V]):
    """The worker's soft object store: an LRU cache with a time-to-live.

    Not disableable — it holds the data itself (this worker's shards per
    dataset), so turning it off would change what the system *is*, not
    just what it memoizes.  Entries unused past the TTL are purged (the
    paper's "unused for 2 hours" behavior) and rebuilt by lineage replay.
    """

    def __init__(
        self,
        max_entries: int = 64,
        ttl_seconds: float = 2 * 3600.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "data",
        sizer: Callable[[V], int] | None = None,
        max_bytes: int | None = None,
    ):
        super().__init__(
            max_entries=max_entries,
            ttl_seconds=ttl_seconds,
            clock=clock,
            max_bytes=max_bytes,
            sizer=sizer,
            name=name,
            disableable=False,
        )


def summary_size(value: object) -> int:
    """Accounted byte size of a cached sketch result.

    Summaries carry :meth:`~repro.core.sketch.Summary.serialized_size`
    (their wire size); anything else is accounted at zero, bounded by the
    cache's entry budget instead.
    """
    size = getattr(value, "serialized_size", None)
    if callable(size):
        try:
            return int(size())
        except Exception:  # repro: ignore[B001] — sizing must never fail a put
            return 0
    return 0


class ComputationCache:
    """Cache of deterministic vizketch results, keyed by (dataset, sketch).

    Results are small by construction (§4.2), so the default capacity is
    generous; the byte budget is real nonetheless (eviction is LRU).
    Statistics feed the cache ablation benchmark and the ``cache_stats``
    RPC.  Honors ``REPRO_DISABLE_CACHES``.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        max_bytes: int | None = 64 * 1024 * 1024,
        name: str = "computation",
    ):
        self._cache: MemoCache[object] = MemoCache(
            max_entries=max_entries,
            max_bytes=max_bytes,
            ttl_seconds=inf,
            sizer=summary_size,
            name=name,
            disableable=True,
        )

    @staticmethod
    def key(dataset_id: str, sketch_key: str) -> str:
        return f"{dataset_id}{KEY_SEP}{sketch_key}"

    def get(self, dataset_id: str, sketch_key: str) -> object | None:
        return self._cache.get(self.key(dataset_id, sketch_key))

    def put(self, dataset_id: str, sketch_key: str, value: object) -> None:
        self._cache.put(self.key(dataset_id, sketch_key), value)

    def invalidate_dataset(self, dataset_id: str) -> int:
        """Drop every cached result computed over ``dataset_id``."""
        return self._cache.invalidate_prefix(dataset_id + KEY_SEP)

    def purge_stale(self) -> int:
        return self._cache.purge_stale()

    def stats(self) -> CacheStats:
        return self._cache.stats()

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def current_bytes(self) -> int:
        return self._cache.current_bytes

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
