"""Data and computation caches (paper §5.4).

Hillview uses two caches:

* the **data cache** holds raw loaded data in memory; entries unused for a
  while (2 hours in the paper) are purged, and are reconstructed from the
  storage layer on demand — all cached state is soft;
* the **computation cache** stores vizketch *results*, which are tiny, so a
  large number can be kept; it is indexed by (dataset, sketch) and only
  holds deterministic computations.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Generic, TypeVar

V = TypeVar("V")


class DataCache(Generic[V]):
    """An LRU cache with a time-to-live, for soft data state.

    ``clock`` is injectable so tests (and the simulator) can control time.
    """

    def __init__(
        self,
        max_entries: int = 64,
        ttl_seconds: float = 2 * 3600.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, V]] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> V | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value = entry
            if self._clock() - stored_at > self.ttl_seconds:
                del self._entries[key]
                self.evictions += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: V) -> None:
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def evict(self, key: str) -> bool:
        """Remove one entry (fault injection / memory pressure)."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self.evictions += 1
                return True
            return False

    def purge_stale(self) -> int:
        """Drop entries older than the TTL; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            stale = [
                key
                for key, (stored_at, _) in self._entries.items()
                if now - stored_at > self.ttl_seconds
            ]
            for key in stale:
                del self._entries[key]
            self.evictions += len(stale)
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class ComputationCache:
    """Cache of deterministic vizketch results, keyed by (dataset, sketch).

    Results are small by construction (§4.2), so the default capacity is
    generous.  Statistics feed the cache ablation benchmark.
    """

    def __init__(self, max_entries: int = 4096):
        self._cache: DataCache[object] = DataCache(
            max_entries=max_entries, ttl_seconds=float("inf")
        )

    @staticmethod
    def key(dataset_id: str, sketch_key: str) -> str:
        return f"{dataset_id}\x00{sketch_key}"

    def get(self, dataset_id: str, sketch_key: str) -> object | None:
        return self._cache.get(self.key(dataset_id, sketch_key))

    def put(self, dataset_id: str, sketch_key: str, value: object) -> None:
        self._cache.put(self.key(dataset_id, sketch_key), value)

    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
