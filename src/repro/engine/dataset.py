"""The IDataSet abstraction and table-to-table map operations.

An ``IDataSet`` is a (possibly distributed) immutable dataset supporting two
operations, mirroring the Partitioned Data Set architecture Hillview
inherits from Sketch [14] (§5.7):

* ``map`` — apply a table-to-table transformation at every leaf, producing
  a *new* dataset (filtering, derived columns, projections);
* ``sketch`` — run a vizketch and stream progressively merged partials.

Maps are declarative value objects so the redo log can replay them after a
failure (§5.8); user-defined maps carry a Python callable, the analogue of
the JavaScript UDFs Hillview records in its log.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Iterator, Sequence, TypeVar

from repro.core.sketch import Sketch
from repro.engine.progress import CancellationToken, PartialResult, SketchRun, drain
from repro.table.compute import Predicate
from repro.table.schema import ContentsKind, Schema
from repro.table.table import Table

R = TypeVar("R")


class TableMap(ABC):
    """A deterministic table-to-table transformation applied at leaves."""

    @abstractmethod
    def apply(self, table: Table) -> Table:
        """Transform one shard (pure; single-threaded)."""

    @abstractmethod
    def spec(self) -> str:
        """Stable description for the redo log and cache keys."""

    def __repr__(self) -> str:
        return self.spec()


class FilterMap(TableMap):
    """Keep the rows satisfying a predicate (§5.6 selection)."""

    def __init__(self, predicate: Predicate):
        self.predicate = predicate

    def apply(self, table: Table) -> Table:
        return table.filter(self.predicate)

    def spec(self) -> str:
        return f"Filter({self.predicate.spec()})"


class DeriveMap(TableMap):
    """Append a user-defined map column (§5.6)."""

    def __init__(
        self,
        name: str,
        kind: ContentsKind,
        fn: Callable,
        vectorized: bool = False,
    ):
        self.name = name
        self.kind = kind
        self.fn = fn
        self.vectorized = vectorized

    def apply(self, table: Table) -> Table:
        return table.derive(self.name, self.kind, self.fn, self.vectorized)

    def spec(self) -> str:
        fn_name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"Derive({self.name!r},{self.kind.value},{fn_name})"


class ExpressionMap(TableMap):
    """Append a column computed from an expression string (§5.6).

    The Python analogue of Hillview's user-defined JavaScript maps: the
    *source text* is the serializable artifact — it travels over RPC, is
    recorded in the redo log, and re-validates/re-compiles identically on
    replay, so a recovered worker derives the same column.
    """

    def __init__(self, name: str, expression: str):
        from repro.table.udf import ColumnExpression

        self.name = name
        self.compiled = ColumnExpression(expression)

    @property
    def expression(self) -> str:
        return self.compiled.expression

    def apply(self, table: Table) -> Table:
        return table.derive(
            self.name,
            ContentsKind.DOUBLE,
            self.compiled.evaluate,
            vectorized=True,
        )

    def spec(self) -> str:
        return f"Expression({self.name!r},{self.expression!r})"


class ProjectMap(TableMap):
    """Keep only the named columns (§3.3: select columns to show)."""

    def __init__(self, columns: Sequence[str]):
        self.columns = list(columns)

    def apply(self, table: Table) -> Table:
        return table.select_columns(self.columns)

    def spec(self) -> str:
        return f"Project({self.columns!r})"


class IDataSet(ABC):
    """A dataset the engine can map over and sketch."""

    @abstractmethod
    def map(self, table_map: TableMap) -> "IDataSet":
        """Apply ``table_map`` at every leaf; returns a new dataset."""

    @abstractmethod
    def sketch_stream(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None = None,
    ) -> Iterator[PartialResult[R]]:
        """Execute ``sketch`` and yield cumulative partial results."""

    @property
    @abstractmethod
    def total_rows(self) -> int:
        """Total member rows across all leaves (preparation-phase input)."""

    @property
    @abstractmethod
    def schema(self) -> "Schema":
        """The shared schema of every leaf table."""

    def sketch(self, sketch: Sketch[R], token: CancellationToken | None = None) -> R:
        """Execute ``sketch`` to completion and return the final summary."""
        return self.run(sketch, token).value

    def run(
        self, sketch: Sketch[R], token: CancellationToken | None = None
    ) -> SketchRun[R]:
        """Execute ``sketch`` to completion, returning result + statistics."""
        return drain(self.sketch_stream(sketch, token))
