"""Cost model for the discrete-event cluster simulator.

The paper's Figures 5-8 are statements about *work and communication
volume*: rows scanned per core, samples drawn, summary bytes shipped,
aggregation cadence, disk and NIC bandwidth.  The simulator executes those
quantities against this cost model.  Constants default to values measured
on this machine by :func:`CostModel.calibrate` (per-row scan and per-sample
costs of the actual sketch implementations) plus the paper's testbed
hardware parameters (10 Gbps network, SSD storage, 0.1 s aggregation
interval, 1 ms client ping).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-unit costs used by the simulator."""

    # Compute (calibratable)
    scan_ns_per_row_column: float = 2.0  # streaming sketch, per row per column
    sample_ns_per_row: float = 40.0  # per *sampled* row (skip-walk + bin)
    sort_ns_per_row: float = 25.0  # next-items style sort per row
    task_setup_s: float = 0.0005  # per micropartition dispatch

    # Storage (paper testbed: SSDs)
    disk_bytes_per_second: float = 500e6
    bytes_per_cell: float = 8.0

    # Network (paper testbed: 10 Gbps, client ping 1 ms)
    network_bytes_per_second: float = 10e9 / 8
    network_latency_s: float = 0.0005
    client_latency_s: float = 0.001

    # Engine behavior (§5.3)
    aggregation_interval_s: float = 0.1

    # Straggler dispersion: micropartition costs vary by this fraction.
    jitter_fraction: float = 0.2

    def scan_cost_s(self, rows: int, columns: int) -> float:
        """Cost of streaming ``rows`` over ``columns`` on one core."""
        return rows * columns * self.scan_ns_per_row_column * 1e-9

    def sample_cost_s(self, sampled_rows: int) -> float:
        """Cost of drawing and binning ``sampled_rows``."""
        return sampled_rows * self.sample_ns_per_row * 1e-9

    def sort_cost_s(self, rows: int, columns: int) -> float:
        return rows * columns * self.sort_ns_per_row * 1e-9

    def disk_load_s(self, rows: int, columns: int) -> float:
        """Time to read ``rows x columns`` cells from one server's SSD."""
        return rows * columns * self.bytes_per_cell / self.disk_bytes_per_second

    def transfer_s(self, size_bytes: int) -> float:
        return self.network_latency_s + size_bytes / self.network_bytes_per_second

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)

    @classmethod
    def calibrate(cls, rows: int = 2_000_000, seed: int = 0) -> "CostModel":
        """Measure per-row costs of the real sketches on this machine.

        Runs the streaming and sampled histogram vizketches (the §7.2
        microbenchmark pair) on a synthetic column and derives the per-unit
        constants, so simulated latencies are grounded in real code.
        """
        import numpy as np

        from repro.core.buckets import DoubleBuckets
        from repro.data.synth import numeric_table
        from repro.sketches.histogram import HistogramSketch

        table = numeric_table(rows, "uniform", seed=seed)
        buckets = DoubleBuckets(0.0, 100.0, 100)

        streaming = HistogramSketch("value", buckets)
        start = time.perf_counter()
        streaming.summarize(table)
        scan_seconds = time.perf_counter() - start
        scan_ns = scan_seconds / rows * 1e9

        rate = 0.02
        sampled = HistogramSketch("value", buckets, rate=rate, seed=1)
        start = time.perf_counter()
        summary = sampled.summarize(table)
        sample_seconds = time.perf_counter() - start
        sampled_rows = max(summary.sampled_rows, 1)
        sample_ns = sample_seconds / sampled_rows * 1e9

        # Sorting costs roughly an argsort over the same data.
        values = np.arange(rows, dtype=np.float64)
        start = time.perf_counter()
        np.argsort(values, kind="stable")
        sort_ns = (time.perf_counter() - start) / rows * 1e9

        return cls(
            scan_ns_per_row_column=max(scan_ns, 0.1),
            sample_ns_per_row=max(sample_ns, 1.0),
            sort_ns_per_row=max(sort_ns * 3, 1.0),
        )
