"""The web server: root of the execution tree, session state, RPC (§5.2).

Hillview's web server sits between the browser and the workers: it holds
*remote object handles* for the datasets a session derived (the initial
load, filters, projections), launches execution trees for vizketch
queries, streams progressively merged partials back to the client, and
honors cancellation.  All of its state is soft (§5.7): any handle can be
evicted and is lazily rebuilt from its lineage — a chain of map operations
ending in a reloadable :class:`~repro.storage.loader.DataSource` ("the
recursion ends when data is read from disk").

:class:`WebServer` is transport-free: :meth:`execute` accepts a JSON
request (or an :class:`~repro.engine.rpc.RpcRequest`) and yields JSON-able
reply envelopes one at a time, exactly the message sequence a WebSocket
would carry.  The concurrent service layer (:mod:`repro.service`) runs one
``WebServer`` per client session as its session-scoped execution facade:
handle namespaces are per-session while the cluster underneath is shared.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, Union

from repro.engine.cluster import Cluster
from repro.engine.dataset import (
    ExpressionMap,
    FilterMap,
    IDataSet,
    ProjectMap,
    TableMap,
)
from repro.engine.progress import CancellationToken
from repro.engine.rpc import (
    ProtocolError,
    RpcReply,
    RpcRequest,
    UnknownHandleError,
    predicate_from_json,
    sketch_from_json,
    summary_to_json,
)
from repro.errors import HillviewError
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceContext, serve_span, trace_enabled
from repro.storage.loader import DataSource


class WebServer:
    """Session-scoped query root over one (possibly shared) cluster (§5.2, §6).

    ``session_id`` names the session this facade serves; each facade mints
    handles in its own namespace, so sessions on a shared cluster can
    never collide.  ``dataset_pool``, when provided by the session
    manager, shares root datasets across sessions that load the same
    source spec (many users browsing one dataset reuse the cluster-side
    shards).  ``source_resolver`` turns a JSON source spec into a
    :class:`DataSource` and enables the wire-level ``load`` method.
    """

    def __init__(
        self,
        cluster: Cluster | None = None,
        session_id: str = "local",
        dataset_pool: "dict[str, IDataSet] | None" = None,
        source_resolver: "Callable[[dict], DataSource] | None" = None,
    ):
        self.cluster = cluster if cluster is not None else Cluster()
        self.session_id = session_id
        self.dataset_pool = dataset_pool
        self.source_resolver = source_resolver
        self._handles: dict[str, IDataSet] = {}
        #: handle -> how to rebuild it: a DataSource for loads, or
        #: (parent handle, TableMap) for derived datasets (§5.7).
        self._lineage: dict[str, Union[DataSource, tuple[str, TableMap]]] = {}
        self._tokens: dict[int, CancellationToken] = {}
        self._counter = 0
        self._lock = threading.Lock()
        #: Invoked after every handle mint (load or derive); the session
        #: layer hooks this to persist the session's recipe book into a
        #: shared store, so another root can resume the session (§5.2).
        self.on_lineage_change: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # Remote object handles (soft state)
    # ------------------------------------------------------------------
    def _new_handle(self) -> str:
        with self._lock:
            self._counter += 1
            return f"obj-{self._counter}"

    def load(self, source: DataSource) -> str:
        """Load a data source; returns the session's root handle.

        When a ``dataset_pool`` is shared across sessions, identical source
        specs bind to the already-loaded cluster dataset instead of loading
        the shards a second time.
        """
        handle = self._new_handle()
        dataset: IDataSet | None = None
        spec = source.spec()
        if self.dataset_pool is not None:
            dataset = self.dataset_pool.get(spec)
        if dataset is None:
            dataset = self.cluster.load(source)
            if self.dataset_pool is not None:
                self.dataset_pool[spec] = dataset
        self._handles[handle] = dataset
        with self._lock:
            self._lineage[handle] = source
        self._lineage_changed()
        return handle

    def _lineage_changed(self) -> None:
        if self.on_lineage_change is not None:
            self.on_lineage_change()

    def evict(self, handle: str) -> None:
        """Drop a handle's dataset (soft state); it rebuilds on next use."""
        self._handles.pop(handle, None)

    def evict_all(self) -> int:
        """Drop every handle's dataset (idle-TTL sweep); lineage survives,
        so any handle rebuilds on next use (§5.7).  Returns the count."""
        count = len(self._handles)
        self._handles.clear()
        return count

    @property
    def handles(self) -> list[str]:
        """Every handle this session has minted (resident or evicted)."""
        with self._lock:
            return list(self._lineage)

    def dataset(self, handle: str) -> IDataSet:
        """The dataset behind ``handle``, lazily rebuilt if evicted (§5.7)."""
        existing = self._handles.get(handle)
        if existing is not None:
            return existing
        recipe = self._lineage.get(handle)
        if recipe is None:
            raise UnknownHandleError(f"unknown remote object {handle!r}")
        if isinstance(recipe, tuple):
            parent_handle, table_map = recipe
            rebuilt = self.dataset(parent_handle).map(table_map)
        else:
            # A root handle rebuilds through the shared pool when there is
            # one, so an idle-TTL sweep reattaches to the still-loaded
            # cluster dataset instead of re-reading the source and
            # duplicating every worker's shards.
            rebuilt = None
            if self.dataset_pool is not None:
                rebuilt = self.dataset_pool.get(recipe.spec())
            if rebuilt is None:
                rebuilt = self.cluster.load(recipe)
                if self.dataset_pool is not None:
                    self.dataset_pool[recipe.spec()] = rebuilt
        self._handles[handle] = rebuilt
        return rebuilt

    def _derive(self, parent: str, table_map: TableMap) -> str:
        handle = self._new_handle()
        self._handles[handle] = self.dataset(parent).map(table_map)
        with self._lock:
            self._lineage[handle] = (parent, table_map)
        self._lineage_changed()
        return handle

    # ------------------------------------------------------------------
    # Lineage export/restore: session migration between roots (§5.2)
    # ------------------------------------------------------------------
    def export_lineage(self) -> list[dict]:
        """The session's recipe book as JSON records, in mint order.

        Handles whose recipe cannot cross a process boundary (an
        in-memory :class:`~repro.storage.loader.TableSource`, a map
        carrying a Python callable) are skipped along with their
        descendants — exactly the §5.7 constraint that durable lineage
        must bottom out at a reloadable source.
        """
        from repro.engine.rpc import source_to_json, table_map_to_json

        records: list[dict] = []
        exported: set[str] = set()
        # Snapshot under the mint lock: concurrent queries of the same
        # session may be minting handles while persistence runs.
        with self._lock:
            lineage = list(self._lineage.items())
        for handle, recipe in lineage:
            try:
                if isinstance(recipe, tuple):
                    parent, table_map = recipe
                    if parent not in exported:
                        continue  # the parent itself was not exportable
                    record = {
                        "handle": handle,
                        "parent": parent,
                        "map": table_map_to_json(table_map),
                    }
                else:
                    record = {"handle": handle, "source": source_to_json(recipe)}
            except ProtocolError:
                continue
            records.append(record)
            exported.add(handle)
        return records

    def restore_lineage(self, records: list[dict], counter: int = 0) -> int:
        """Rebuild the recipe book from :meth:`export_lineage` output.

        Nothing is materialized here: handles rebuild lazily through
        :meth:`dataset` on first use, the same way an idle-swept session
        comes back.  ``counter`` restores the handle counter high-water
        mark so newly minted handles cannot collide with restored ones.
        Returns the number of handles restored.
        """
        from repro.engine.rpc import source_from_json, table_map_from_json

        restored = 0
        for record in records:
            handle = str(record["handle"])
            if "map" in record:
                recipe: Union[DataSource, tuple[str, TableMap]] = (
                    str(record["parent"]),
                    table_map_from_json(record["map"]),
                )
            else:
                recipe = source_from_json(record["source"])
            with self._lock:
                self._lineage[handle] = recipe
            restored += 1
        with self._lock:
            numbered = [
                int(h.split("-", 1)[1])
                for h in self._lineage
                if h.startswith("obj-") and h.split("-", 1)[1].isdigit()
            ]
            self._counter = max([counter, self._counter, *numbered, 0])
        return restored

    # ------------------------------------------------------------------
    # Cancellation (§5.3)
    # ------------------------------------------------------------------
    def cancel(self, request_id: int) -> bool:
        """Cancel an in-flight request; returns whether one was active."""
        token = self._tokens.get(request_id)
        if token is None:
            return False
        token.cancel()
        return True

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def execute(
        self,
        request: RpcRequest | str,
        token: CancellationToken | None = None,
    ) -> Iterator[RpcReply]:
        """Run one request, yielding the reply message sequence.

        Successful sketch queries yield zero or more ``partial`` replies
        followed by one ``complete`` (or ``cancelled``); map operations
        yield a single ``ack`` carrying the new handle; failures yield a
        single structured ``error`` envelope (code + message) — the
        protocol never raises to the caller, so one bad client cannot
        kill a shared service loop.

        ``token``, when supplied by a scheduler, is the cancellation
        token sketch execution observes (newest-query-wins, §5.3);
        otherwise a fresh token is minted per request.
        """
        try:
            if isinstance(request, str):
                request = RpcRequest.from_json(request)
            yield from self._dispatch(request, token)
        except HillviewError as exc:
            yield RpcReply(
                request_id=getattr(request, "request_id", -1),
                kind="error",
                error=str(exc),
                code=exc.code,
            )
        except Exception as exc:  # repro: ignore[B001] — shield the service loop
            yield RpcReply(
                request_id=getattr(request, "request_id", -1),
                kind="error",
                error=f"internal error: {type(exc).__name__}: {exc}",
                code="internal",
            )

    def _dispatch(
        self, request: RpcRequest, token: CancellationToken | None = None
    ) -> Iterator[RpcReply]:
        method = request.method
        if method == "sketch":
            yield from self._run_sketch(request, token)
        elif method == "load":
            if self.source_resolver is None:
                raise ProtocolError(
                    "this server has no source resolver; load locally instead"
                )
            spec = request.args.get("source")
            source = self.source_resolver(spec if isinstance(spec, dict) else {})
            handle = self.load(source)
            yield RpcReply(request.request_id, "ack", payload={"handle": handle})
        elif method == "filter":
            predicate = predicate_from_json(request.args.get("predicate", {}))
            handle = self._derive(request.target, FilterMap(predicate))
            yield RpcReply(request.request_id, "ack", payload={"handle": handle})
        elif method == "project":
            columns = request.args.get("columns")
            if not isinstance(columns, list) or not columns:
                raise ProtocolError("project needs a non-empty column list")
            handle = self._derive(
                request.target, ProjectMap([str(c) for c in columns])
            )
            yield RpcReply(request.request_id, "ack", payload={"handle": handle})
        elif method == "derive":
            name = request.args.get("name")
            expression = request.args.get("expression")
            if not isinstance(name, str) or not isinstance(expression, str):
                raise ProtocolError("derive needs 'name' and 'expression'")
            handle = self._derive(request.target, ExpressionMap(name, expression))
            yield RpcReply(request.request_id, "ack", payload={"handle": handle})
        elif method == "schema":
            schema = self.dataset(request.target).schema
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "columns": [
                        {"name": d.name, "kind": d.kind.value} for d in schema
                    ]
                },
            )
        elif method == "rowCount":
            rows = self.dataset(request.target).total_rows
            yield RpcReply(request.request_id, "complete", payload={"rows": rows})
        elif method == "evict":
            self.evict(request.target)
            yield RpcReply(request.request_id, "ack", payload={"evicted": True})
        elif method == "ping":
            yield RpcReply(request.request_id, "ack", payload={"pong": True})
        else:
            raise ProtocolError(f"unknown method {method!r}")

    @staticmethod
    def _finalize(sketch, payload: object | None) -> None:
        """Root-side completion work for side-effecting sketches.

        A clean ``hvc`` save gets its snapshot manifest written once every
        partition has landed (mirrors :meth:`Spreadsheet.save`).
        """
        from repro.sketches.save import SaveTableSketch
        from repro.storage.columnar import write_manifest

        if (
            isinstance(sketch, SaveTableSketch)
            and sketch.format == "hvc"
            and isinstance(payload, dict)
            and not payload.get("errors")
            and payload.get("files")
        ):
            write_manifest(sketch.directory, payload["files"])

    def _run_sketch(
        self, request: RpcRequest, token: CancellationToken | None = None
    ) -> Iterator[RpcReply]:
        spec = request.args.get("sketch")
        if not isinstance(spec, dict):
            raise ProtocolError("sketch requests need a 'sketch' spec object")
        sketch = sketch_from_json(spec)
        dataset = self.dataset(request.target)
        if token is None:
            token = CancellationToken()
        self._tokens[request.request_id] = token
        last_payload: object | None = None
        # Cache telemetry for the terminal envelope (§5.4): a root-tier
        # hit, and/or how many workers served memoized partials.  It
        # rides the envelope so payload bytes stay identical across
        # warm and cold roots.
        cache_info = {"hit": False, "workerHits": 0}
        # The root span of this query on this daemon.  The envelope's
        # context wins (the client or scheduler minted it); a bare facade
        # with REPRO_TRACE=1 originates its own, so direct WebServer use
        # (benchmarks, tests) traces too.
        ctx = TraceContext.from_json(request.trace)
        if ctx is None and trace_enabled():
            ctx = TraceContext.new_root()
        want_profile = bool(request.args.get("profile"))
        engine_profile: dict | None = None
        first_partial_seconds: float | None = None
        started = time.perf_counter()
        try:
            with serve_span(
                ctx,
                "query.sketch",
                session=self.session_id,
                target=request.target,
                sketch=str(spec.get("type")),
            ):
                # The stream is drained to exhaustion, never abandoned
                # early: breaking at the final partial would kill the
                # generator before its completion work (the root-tier
                # cache write in ClusterDataSet.sketch_stream) could run.
                for partial in dataset.sketch_stream(sketch, token):
                    if first_partial_seconds is None:
                        first_partial_seconds = time.perf_counter() - started
                    last_payload = summary_to_json(partial.value)
                    cache_info["hit"] = cache_info["hit"] or partial.cache_hit
                    cache_info["workerHits"] = max(
                        cache_info["workerHits"], partial.worker_cache_hits
                    )
                    if getattr(partial, "profile", None) is not None:
                        engine_profile = partial.profile
                    if partial.progress >= 1.0:
                        continue  # the final summary becomes the complete reply
                    yield RpcReply(
                        request.request_id,
                        "partial",
                        progress=partial.progress,
                        payload=last_payload,
                    )
            REGISTRY.histogram(
                "web.first_partial_seconds",
                "latency to the first rendering-capable partial",
            ).observe(
                first_partial_seconds
                if first_partial_seconds is not None
                else time.perf_counter() - started
            )
            profile = (
                self._assemble_profile(
                    request, engine_profile, cache_info, first_partial_seconds, started
                )
                if want_profile
                else None
            )
            if token.cancelled:
                yield RpcReply(
                    request.request_id,
                    "cancelled",
                    progress=1.0,
                    payload=last_payload,
                    cache=cache_info,
                    profile=profile,
                )
            else:
                self._finalize(sketch, last_payload)
                yield RpcReply(
                    request.request_id,
                    "complete",
                    progress=1.0,
                    payload=last_payload,
                    cache=cache_info,
                    profile=profile,
                )
        finally:
            self._tokens.pop(request.request_id, None)

    @staticmethod
    def _assemble_profile(
        request: RpcRequest,
        engine_profile: dict | None,
        cache_info: dict,
        first_partial_seconds: float | None,
        started: float,
    ) -> dict:
        """The terminal reply's per-stage breakdown (``profile: true``).

        The engine contributes the fan-out view (per-worker streams,
        merge time, straggler) via the final partial; the facade adds
        the stages only it can see: queue wait (stamped on the request
        by the scheduler), first-partial latency, and total wall-clock.
        """
        profile = dict(engine_profile or {})
        profile["queueWaitSeconds"] = round(
            getattr(request, "queue_wait_seconds", 0.0), 6
        )
        profile["firstPartialSeconds"] = round(
            first_partial_seconds
            if first_partial_seconds is not None
            else time.perf_counter() - started,
            6,
        )
        profile["totalSeconds"] = round(time.perf_counter() - started, 6)
        profile["cacheHit"] = bool(cache_info.get("hit"))
        return profile
