"""Discrete-event simulator of the Hillview cluster (figure-scale runs).

The paper's testbed is eight 28-core Xeon servers holding 13B rows; this
machine is not.  The figure-scale experiments therefore run on a
deterministic discrete-event simulation with the architecture of §5:

* servers with a fixed core count execute micropartition *leaf tasks*
  (costs from the calibrated :class:`~repro.engine.costmodel.CostModel`);
* each server is its own aggregation node: it merges finished leaves and
  forwards a cumulative partial to the root at the 0.1 s cadence;
* the root merges server partials; the client sees the first partial after
  one more network hop — both timestamps are reported, as in Figure 5;
* cold runs prepend per-server SSD loads of the touched columns (§5.4:
  "when a worker needs a column, it reads it completely");
* per-shard multiplicative jitter models stragglers, which is what makes
  progressive partials matter.

A query is a sequence of :class:`SimPhase` values (preparation, rendering —
§5.3's two trees); concurrent phases share the tree, sequential phases add.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.rand import rng_for
from repro.engine.costmodel import CostModel


@dataclass(frozen=True)
class SimCluster:
    """Cluster shape: servers, cores, and the dataset's sharding."""

    servers: int
    cores_per_server: int
    total_rows: int
    micropartition_rows: int = 15_000_000  # §5.3: 10-20M rows

    def shards_per_server(self) -> list[int]:
        """Number of micropartitions each server holds."""
        rows_per_server = self.total_rows // self.servers
        shards = max(1, round(rows_per_server / self.micropartition_rows))
        return [shards] * self.servers

    def rows_per_shard(self) -> int:
        per_server = self.total_rows // self.servers
        return per_server // max(1, self.shards_per_server()[0])


@dataclass(frozen=True)
class SimPhase:
    """One execution tree: what every leaf does and what it sends up.

    ``kind`` selects the cost formula:

    * ``scan`` — stream every row of the shard over ``columns`` columns;
    * ``sample`` — draw ``total_samples`` rows across the whole dataset
      (each shard draws its proportional share — this is what makes sampled
      vizketches scale *super-linearly*, §7.2.2);
    * ``sort`` — scan + sort the shard over ``columns`` columns (next-items).
    """

    kind: str  # "scan" | "sample" | "sort"
    columns: int = 1
    total_samples: int = 0
    summary_bytes: int = 256

    def leaf_cost_s(
        self, model: CostModel, shard_rows: int, total_rows: int
    ) -> float:
        if self.kind == "scan":
            return model.task_setup_s + model.scan_cost_s(shard_rows, self.columns)
        if self.kind == "sample":
            share = shard_rows / max(total_rows, 1)
            sampled = min(self.total_samples * share, shard_rows)
            # Above ~80% sampling a scan is cheaper; the engine switches to
            # streaming, exactly like the spreadsheet's SCAN_RATE_THRESHOLD.
            if sampled >= 0.8 * shard_rows:
                return model.task_setup_s + model.scan_cost_s(
                    shard_rows, self.columns
                )
            return model.task_setup_s + model.sample_cost_s(int(sampled))
        if self.kind == "sort":
            return model.task_setup_s + model.sort_cost_s(shard_rows, self.columns)
        raise ValueError(f"unknown phase kind {self.kind!r}")


@dataclass
class SimResult:
    """Timings and bytes for one simulated query."""

    first_partial_s: float
    total_s: float
    bytes_to_root: int
    partials_to_root: int
    leaf_tasks: int

    def __add__(self, other: "SimResult") -> "SimResult":
        """Sequential composition of two query phases."""
        return SimResult(
            first_partial_s=self.first_partial_s,
            total_s=self.total_s + other.total_s,
            bytes_to_root=self.bytes_to_root + other.bytes_to_root,
            partials_to_root=self.partials_to_root + other.partials_to_root,
            leaf_tasks=self.leaf_tasks + other.leaf_tasks,
        )


def _schedule_leaves(
    costs: list[float], cores: int, releases: list[float]
) -> list[float]:
    """List-schedule leaf tasks on ``cores``; returns completion times.

    ``releases[i]`` is when shard i becomes available (0 when warm; its
    disk-load completion when cold — loading overlaps compute, §5.4).
    """
    heap = [0.0] * cores
    heapq.heapify(heap)
    finished = []
    for cost, release in zip(costs, releases):
        free_at = heapq.heappop(heap)
        done = max(free_at, release) + cost
        finished.append(done)
        heapq.heappush(heap, done)
    return finished


def simulate_phase(
    cluster: SimCluster,
    phase: SimPhase,
    model: CostModel,
    cold_columns: int = 0,
    seed: int = 0,
) -> SimResult:
    """Simulate one execution tree over the cluster."""
    shard_counts = cluster.shards_per_server()
    shard_rows = cluster.rows_per_shard()
    total_rows = cluster.total_rows

    bytes_to_root = 0
    partials = 0
    first_partial: float | None = None
    completion = 0.0
    leaf_tasks = 0

    for server in range(cluster.servers):
        rng = rng_for(seed, "sim", server)
        count = shard_counts[server]
        if cold_columns > 0:
            # Cold data: one disk per server streams the touched columns of
            # each micropartition in turn; computation on a shard starts as
            # soon as that shard is loaded (loads overlap compute, §5.4) —
            # this is why first partials stay early even on cold data.
            per_shard_load = model.disk_load_s(shard_rows, cold_columns)
            releases = [per_shard_load * (i + 1) for i in range(count)]
        else:
            releases = [0.0] * count
        base = phase.leaf_cost_s(model, shard_rows, total_rows)
        jitter = 1.0 + model.jitter_fraction * (rng.random(count) * 2.0 - 1.0)
        costs = (base * jitter).tolist()
        leaf_tasks += len(costs)
        finish_times = sorted(
            _schedule_leaves(costs, cluster.cores_per_server, releases)
        )

        # Aggregation node: one partial per cadence window with >= 1 new
        # leaf result, plus the final one when the last leaf lands.
        sends = 0
        window_end = None
        for t in finish_times:
            if window_end is None or t > window_end:
                sends += 1
                window_end = t + model.aggregation_interval_s
        last_leaf = finish_times[-1]
        first_leaf = finish_times[0]

        transfer = model.transfer_s(phase.summary_bytes)
        first_arrival = first_leaf + transfer
        final_arrival = last_leaf + transfer
        bytes_to_root += sends * phase.summary_bytes
        partials += sends
        if first_partial is None or first_arrival < first_partial:
            first_partial = first_arrival
        completion = max(completion, final_arrival)

    assert first_partial is not None
    return SimResult(
        first_partial_s=first_partial + model.client_latency_s,
        total_s=completion + model.client_latency_s,
        bytes_to_root=bytes_to_root,
        partials_to_root=partials,
        leaf_tasks=leaf_tasks,
    )


@dataclass(frozen=True)
class TreeShape:
    """The aggregation-tree geometry for one query (§5.2, Figure 1).

    Hillview's execution tree is rooted at the web server with one or more
    layers of aggregation nodes above the per-server leaves; "a small
    deployment with tens of servers needs only one layer".  This model
    quantifies the trade-off a fanout choice makes: fewer children per node
    shrinks the root's in-degree (incast) at the price of extra merge hops
    on the path of every partial result.
    """

    servers: int
    fanout: int
    #: Aggregation-node counts per layer, leaf-most layer first; empty when
    #: every server reports directly to the root.
    layer_widths: tuple[int, ...]

    @property
    def layers(self) -> int:
        return len(self.layer_widths)

    @property
    def root_in_degree(self) -> int:
        return self.layer_widths[-1] if self.layer_widths else self.servers

    @property
    def aggregation_nodes(self) -> int:
        return sum(self.layer_widths)

    def hop_latency_s(self, model: CostModel, summary_bytes: int) -> float:
        """Added latency of the aggregation hops (vs direct-to-root)."""
        return self.layers * model.transfer_s(summary_bytes)

    def root_bytes_per_round(self, summary_bytes: int) -> int:
        """Bytes arriving at the root per aggregation cadence round."""
        return self.root_in_degree * summary_bytes


def aggregation_tree(servers: int, fanout: int) -> TreeShape:
    """Build the aggregation-tree shape for ``servers`` under ``fanout``.

    Layers of aggregation nodes are added until at most ``fanout`` nodes
    report to the root.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    widths: list[int] = []
    width = servers
    while width > fanout:
        width = -(-width // fanout)  # ceil division
        widths.append(width)
    return TreeShape(servers=servers, fanout=fanout, layer_widths=tuple(widths))


def simulate_query(
    cluster: SimCluster,
    phases: list[SimPhase],
    model: CostModel,
    cold_columns: int = 0,
    seed: int = 0,
) -> SimResult:
    """Simulate a query of sequential phases (§5.3: prepare then render).

    Cold column loads are paid once, by the first phase — afterwards the
    data cache holds the columns (§5.4).
    """
    if not phases:
        raise ValueError("a query needs at least one phase")
    result = simulate_phase(cluster, phases[0], model, cold_columns, seed)
    total = result
    for i, phase in enumerate(phases[1:], start=1):
        step = simulate_phase(cluster, phase, model, 0, seed + i)
        # The first *user-visible* partial comes from the final phase (the
        # rendering tree); earlier trees only prepare parameters.
        total = SimResult(
            first_partial_s=total.total_s + step.first_partial_s,
            total_s=total.total_s + step.total_s,
            bytes_to_root=total.bytes_to_root + step.bytes_to_root,
            partials_to_root=total.partials_to_root + step.partials_to_root,
            leaf_tasks=total.leaf_tasks + step.leaf_tasks,
        )
    return total
