"""Progressive results, cancellation, and per-query statistics (§5.3).

A sketch execution yields a stream of :class:`PartialResult` values: each
carries the cumulative merged summary so far plus a progress fraction (the
share of leaves that completed — exactly what Hillview's progress bar
shows).  The client renders each partial as it arrives and may cancel at
any time through a :class:`CancellationToken`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Generic, Iterator, TypeVar

from repro.errors import CancelledError

R = TypeVar("R")


@dataclass
class PartialResult(Generic[R]):
    """A cumulative partial result: ``value`` reflects all merged leaves.

    ``received_bytes``, when set by the engine, is the serialized size of
    the summary that *arrived at the root* to produce this partial (the
    network cost), which can be smaller than the cumulative value.

    ``cache_hit`` marks a result served whole from the root's computation
    cache (§5.4); ``worker_cache_hits`` counts the workers whose partial
    was served from their own memo cache instead of a shard scan — the
    worker tier of the multi-tier memoization story.

    ``profile``, set by the engine on the *final* partial of a fan-out,
    is the per-stage timing breakdown (ensure, per-worker streams, root
    merge, straggler) that a ``profile: true`` request surfaces on its
    terminal reply envelope.
    """

    progress: float  # in [0, 1]: fraction of leaves merged so far
    value: R
    received_bytes: int | None = None
    cache_hit: bool = False
    worker_cache_hits: int = 0
    profile: dict | None = None

    def __post_init__(self) -> None:
        self.progress = min(max(self.progress, 0.0), 1.0)


class CancellationToken:
    """Cooperative cancellation (§5.3).

    Cancelling removes *queued* work; micropartitions already being
    summarized run to completion, as in Hillview ("we currently do not stop
    ongoing computations on a micropartition").
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise CancelledError("computation cancelled by the user")


@dataclass
class SketchRun(Generic[R]):
    """The drained result of a sketch execution, with its statistics.

    ``bytes_received`` counts serialized summary bytes that arrived at the
    root (the quantity of Figure 5, bottom); ``first_partial_seconds`` is
    the latency to the first rendering-capable result (Hillview100xF in
    Figure 5, top).
    """

    value: R
    partials: int = 0
    bytes_received: int = 0
    first_partial_seconds: float = 0.0
    total_seconds: float = 0.0
    cache_hit: bool = False
    worker_cache_hits: int = 0
    cancelled: bool = False

    def __repr__(self) -> str:
        return (
            f"<SketchRun partials={self.partials} bytes={self.bytes_received} "
            f"first={self.first_partial_seconds * 1000:.1f}ms "
            f"total={self.total_seconds * 1000:.1f}ms"
            f"{' cached' if self.cache_hit else ''}>"
        )


def drain(
    stream: Iterator[PartialResult[R]],
    count_bytes: bool = True,
) -> SketchRun[R]:
    """Consume a partial-result stream, recording timing and byte stats."""
    start = time.perf_counter()
    run: SketchRun[R] = SketchRun(value=None)  # type: ignore[arg-type]
    first = None
    for partial in stream:
        now = time.perf_counter()
        if first is None:
            first = now - start
        run.partials += 1
        run.value = partial.value
        run.cache_hit = run.cache_hit or partial.cache_hit
        run.worker_cache_hits = max(
            run.worker_cache_hits, partial.worker_cache_hits
        )
        if count_bytes:
            if partial.received_bytes is not None:
                run.bytes_received += partial.received_bytes
            elif hasattr(partial.value, "serialized_size"):
                run.bytes_received += partial.value.serialized_size()
    run.first_partial_seconds = first if first is not None else 0.0
    run.total_seconds = time.perf_counter() - start
    return run
