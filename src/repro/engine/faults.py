"""Fault injection for exercising the soft-state/replay design (§5.7–5.8).

The engine's claim is that *any* soft state can disappear at any time and
queries still return identical results, because vizketches are
deterministic given their logged seeds and lineage is replayable.  The
injector scripts the failure modes:

* worker crash-restarts (all soft state on one server lost);
* dataset evictions (memory pressure / TTL purge) on some or all workers;
* randomized "chaos" schedules driven by a seeded RNG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.rand import rng_for
from repro.engine.cluster import Cluster
from repro.obs.logs import log_event


@dataclass
class FaultEvent:
    """A record of one injected fault (for test assertions and reports)."""

    kind: str  # "crash" | "evict"
    worker: int | None
    dataset_id: str | None = None

    def describe(self) -> str:
        where = f"worker-{self.worker}" if self.worker is not None else "all workers"
        if self.kind == "crash":
            return f"crash {where}"
        return f"evict {self.dataset_id} on {where}"


@dataclass
class FaultInjector:
    """Scripted and randomized fault injection against a cluster."""

    cluster: Cluster
    seed: int = 0
    events: list[FaultEvent] = field(default_factory=list)

    def _rng(self) -> np.random.Generator:
        return rng_for(self.seed, "faults", len(self.events))

    def _record(self, event: FaultEvent) -> FaultEvent:
        self.events.append(event)
        # Injected faults land in the same structured stream as the
        # director's decisions, so a chaos run's log correlates failures
        # with the queries (trace ids) they hit.
        log_event(
            "chaos.fault",
            level="warning",
            kind=event.kind,
            worker=event.worker,
            dataset=event.dataset_id,
        )
        return event

    def crash_worker(self, index: int) -> FaultEvent:
        self.cluster.kill_worker(index)
        return self._record(FaultEvent("crash", index))

    def crash_random_worker(self) -> FaultEvent:
        index = int(self._rng().integers(len(self.cluster.workers)))
        return self.crash_worker(index)

    def evict_everywhere(self, dataset_id: str) -> FaultEvent:
        self.cluster.evict_dataset(dataset_id)
        return self._record(FaultEvent("evict", None, dataset_id))

    def evict_on_random_worker(self, dataset_id: str) -> FaultEvent:
        index = int(self._rng().integers(len(self.cluster.workers)))
        self.cluster.evict_dataset(dataset_id, index)
        return self._record(FaultEvent("evict", index, dataset_id))

    def chaos(self, dataset_ids: list[str], rounds: int) -> list[FaultEvent]:
        """Inject ``rounds`` random faults over the given datasets."""
        injected = []
        for _ in range(rounds):
            rng = self._rng()
            if rng.random() < 0.5 or not dataset_ids:
                injected.append(self.crash_random_worker())
            else:
                dataset = dataset_ids[int(rng.integers(len(dataset_ids)))]
                injected.append(self.evict_on_random_worker(dataset))
        return injected
