"""Out-of-process workers: the root/worker wire of the paper (§5.2, §5.8).

Hillview's root node fans queries out to worker *processes* on separate
servers.  This module is that deployment for the reproduction:

* :class:`WorkerServer` — the worker daemon (``repro worker``): owns a
  shard store and a leaf thread pool (a plain in-process
  :class:`~repro.engine.cluster.Worker`) and speaks uvarint-framed JSON
  request/reply envelopes over TCP, streaming cumulative sketch partials;
* :class:`RemoteWorkerProxy` — the root's view of one worker process;
  implements :class:`~repro.engine.cluster.WorkerProtocol`, so the generic
  :class:`~repro.engine.cluster.Cluster` machinery (broadcast, 0.1 s
  aggregation cadence, progressive merge, redo-log replay) runs unchanged
  over a real network;
* :class:`ProcessCluster` — a cluster whose workers are spawned
  subprocesses (or pre-started daemons reached by address).  A worker that
  dies — even SIGKILL mid-sketch — is respawned and its stream re-run;
  lineage replay rebuilds its soft state and cumulative partials make the
  retry invisible to the streaming client (§5.7–5.8).

Everything on this wire is JSON: sketches travel as the same specs a
browser submits, summaries travel as the same payloads the UI renders, and
lineage travels as load/map descriptions — one codec for every hop.
"""

from __future__ import annotations

import itertools
import json
import os
import queue
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Iterator

from repro.core.framing import FrameError, read_frame_blocking, write_frame
from repro.engine.cluster import (
    Cluster,
    Worker,
    WorkerEmission,
    WorkerProtocol,
)
from repro.engine.placement import (
    PlacementError,
    ShardPlacement,
    agree_placement,
)
from repro.engine.progress import CancellationToken
from repro.engine.rpc import (
    ProtocolError,
    RpcReply,
    RpcRequest,
    lineage_from_json,
    lineage_to_json,
    sketch_from_json,
    sketch_to_json,
    source_from_json,
    source_to_json,
    summary_from_json,
    summary_to_json,
)
from repro.errors import EngineError, HillviewError, WorkerUnavailableError
from repro.storage.loader import DataSource
from repro.table.schema import ColumnDescription, Schema

#: Reply kinds that end one request's reply stream.
_TERMINAL = frozenset({"ack", "complete", "cancelled", "error"})


# ---------------------------------------------------------------------------
# The worker daemon
# ---------------------------------------------------------------------------
class _RootLink:
    """One root's connection to this worker, with its own request-id space.

    A fleet daemon serves several roots at once (the multi-root service
    tier); each root numbers its requests independently, so cancellation
    state and the write lock must be per-connection — a shared token table
    would let root A's request #7 cancel root B's request #7.
    """

    def __init__(self, rfile, wfile):
        self.rfile = rfile
        self.wfile = wfile
        self.write_lock = threading.Lock()
        self.tokens: dict[int, CancellationToken] = {}
        #: Cancels that arrived before their sketch left the request pool's
        #: queue (the token is only registered when execution starts).
        self.cancelled_early: set[int] = set()
        self.tokens_lock = threading.Lock()


class WorkerServer:
    """One worker process: a shard store + leaf pool behind a socket.

    Two attachment modes mirror real deployments:

    * ``run_connect`` — dial the root that spawned us (``--connect``);
    * ``run_listen`` — bind a port and serve roots as they dial in
      (``--listen``), e.g. a fleet of daemons started by an init system.
      Several roots may be connected at once, each on its own thread —
      the multi-root service tier shares one fleet this way.

    The connection protocol is symmetric request/reply: after a ``hello``
    info exchange the root sends :class:`~repro.engine.rpc.RpcRequest`
    envelopes (``configure``, ``placement``, ``load``, ``ensure``,
    ``rows``, ``schema``, ``sketch``, ``cancel``, ``evict``, ``crash``,
    ``ping``, ``stats``, ``shutdown``) and the worker streams back
    replies, interleaved by request id.  ``sketch`` yields one
    ``partial`` per aggregation-cadence tick carrying the cumulative
    summary as a JSON payload.

    The worker's shard-slice assignment is **sticky**: the first
    ``configure`` pins it, every root can read it back via ``placement``,
    and a conflicting ``configure`` is rejected (``placement_conflict``)
    instead of silently re-slicing datasets another root already loaded.
    """

    def __init__(
        self,
        name: str | None = None,
        cores: int = 4,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
        cache_sweep_interval_seconds: float = 300.0,
    ):
        # "slow" sketches (service load tests) must deserialize here too.
        import repro.service.slow  # noqa: F401

        self.worker = Worker(
            name or f"worker-{os.getpid()}",
            cores=cores,
            cache_entries=cache_entries,
            cache_ttl_seconds=cache_ttl_seconds,
        )
        self._placement: tuple[int, int] | None = None
        self._placement_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._listener: socket.socket | None = None
        self.requests_served = 0
        self.roots_served = 0
        #: The daemon-side cache sweep (§5.4: "unused for 2 hours →
        #: purged"): a timer thread drops TTL-expired shards and memo
        #: entries so idle daemons actually release memory instead of
        #: waiting for the next get() to notice staleness.  <= 0 disables.
        self.cache_sweep_interval_seconds = cache_sweep_interval_seconds
        self.cache_entries_purged = 0
        self._sweeper: threading.Thread | None = None
        self._sweeper_lock = threading.Lock()

    # -- the cache sweep -------------------------------------------------
    def _start_sweeper(self) -> None:
        """Start the periodic cache sweep (idempotent; daemon thread)."""
        if self.cache_sweep_interval_seconds <= 0:
            return
        with self._sweeper_lock:
            if self._sweeper is not None and self._sweeper.is_alive():
                return
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                name=f"{self.worker.name}-cache-sweep",
                daemon=True,
            )
            self._sweeper.start()

    def _sweep_loop(self) -> None:
        while not self._shutdown.wait(self.cache_sweep_interval_seconds):
            self.cache_entries_purged += self.worker.sweep_caches()

    # -- attachment modes ----------------------------------------------
    def run_connect(self, host: str, port: int, timeout: float = 10.0) -> None:
        """Dial the root and serve it until it disconnects (spawn mode)."""
        self._start_sweeper()
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        wfile = sock.makefile("wb")
        write_frame(
            wfile,
            RpcRequest(0, "", "hello", self._info()).to_json().encode("utf-8"),
        )
        rfile = sock.makefile("rb")
        frame = read_frame_blocking(rfile, error=FrameError)
        if frame is None:
            raise EngineError("root closed the connection during handshake")
        RpcReply.from_json(frame.decode("utf-8"))  # the root's ack
        self._serve(rfile, wfile)

    def run_listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        on_bound=None,
        once: bool = False,
    ) -> None:
        """Bind and serve roots as they dial in (daemon-fleet mode).

        Each root gets its own serving thread, so N service front-ends can
        share this worker concurrently; ``once=True`` serves a single
        connection inline and returns (tests).
        """
        self._start_sweeper()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        self._listener = listener
        if on_bound is not None:
            on_bound(listener.getsockname()[:2])
        try:
            while not self._shutdown.is_set():
                try:
                    sock, _ = listener.accept()
                except OSError:
                    break  # listener closed by a shutdown RPC
                sock.settimeout(None)
                self.roots_served += 1
                if once:
                    self._serve_socket(sock)
                    break
                threading.Thread(
                    target=self._serve_socket,
                    args=(sock,),
                    name=f"{self.worker.name}-root-{self.roots_served}",
                    daemon=True,
                ).start()
        finally:
            self._listener = None
            try:
                listener.close()
            except OSError:
                pass

    def _serve_socket(self, sock: socket.socket) -> None:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            self._serve(rfile, wfile)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _info(self) -> dict:
        return {
            "name": self.worker.name,
            "pid": os.getpid(),
            "cores": self.worker.cores,
        }

    # -- the request loop ----------------------------------------------
    def _serve(self, rfile, wfile) -> None:
        import concurrent.futures

        link = _RootLink(rfile, wfile)
        with concurrent.futures.ThreadPoolExecutor(
            max(4, self.worker.cores)
        ) as pool:
            try:
                while not self._shutdown.is_set():
                    frame = read_frame_blocking(rfile, error=FrameError)
                    if frame is None:
                        break
                    try:
                        request = RpcRequest.from_json(frame.decode("utf-8"))
                    except (ProtocolError, UnicodeDecodeError) as exc:
                        self._reply(
                            link,
                            RpcReply(-1, "error", error=str(exc), code="protocol"),
                        )
                        continue
                    self.requests_served += 1
                    if request.method == "hello":
                        self._reply(
                            link,
                            RpcReply(request.request_id, "ack", payload=self._info()),
                        )
                    elif request.method == "cancel":
                        # Handled inline so a cancel is never stuck behind
                        # the sketch it is trying to stop.  A cancel may
                        # outrun its sketch through the request pool: the
                        # target id is remembered and honored when the
                        # sketch registers its token (§5.3 must hold even
                        # on a saturated worker).
                        target = int(request.args.get("requestId", -1))
                        with link.tokens_lock:
                            token = link.tokens.get(target)
                            if token is None:
                                link.cancelled_early.add(target)
                                if len(link.cancelled_early) > 1024:
                                    link.cancelled_early.clear()
                        if token is not None:
                            token.cancel()
                        self._reply(
                            link,
                            RpcReply(
                                request.request_id,
                                "ack",
                                payload={"cancelled": True},
                            ),
                        )
                    elif request.method == "shutdown":
                        self._reply(link, RpcReply(request.request_id, "ack"))
                        self._shutdown.set()
                        listener = self._listener
                        if listener is not None:
                            try:  # unblock the accept loop
                                listener.close()
                            except OSError:
                                pass
                        break
                    else:
                        pool.submit(self._handle, request, link)
            except (FrameError, ConnectionError, OSError):
                pass  # root went away; fall through to cancel leftovers
            finally:
                with link.tokens_lock:
                    for token in link.tokens.values():
                        token.cancel()

    def _reply(self, link: _RootLink, reply: RpcReply) -> None:
        with link.write_lock:
            write_frame(link.wfile, reply.to_json().encode("utf-8"))

    def _handle(self, request: RpcRequest, link: _RootLink) -> None:
        try:
            for reply in self._dispatch(request, link):
                self._reply(link, reply)
        except (ConnectionError, OSError, ValueError):
            # The root is gone mid-stream: stop producing for it.
            with link.tokens_lock:
                token = link.tokens.get(request.request_id)
            if token is not None:
                token.cancel()
        except HillviewError as exc:
            self._safe_error(link, request, str(exc), exc.code)
        except Exception as exc:  # noqa: BLE001 — shield the worker loop
            self._safe_error(
                link, request, f"internal error: {type(exc).__name__}: {exc}",
                "internal",
            )

    def _safe_error(
        self, link: _RootLink, request, message: str, code: str
    ) -> None:
        try:
            self._reply(
                link,
                RpcReply(request.request_id, "error", error=message, code=code),
            )
        except (ConnectionError, OSError, ValueError):
            pass

    def _dispatch(
        self, request: RpcRequest, link: _RootLink
    ) -> Iterator[RpcReply]:
        method = request.method
        args = request.args
        worker = self.worker
        if method == "configure":
            index = int(args["index"])
            count = int(args["count"])
            with self._placement_lock:
                if self._placement is None:
                    # First configure pins this worker's slice for the
                    # fleet's lifetime; later roots must agree with it.
                    self._placement = (index, count)
                elif self._placement != (index, count):
                    held = self._placement
                    raise PlacementError(
                        f"worker {worker.name} is placed as slice "
                        f"{held[0]}/{held[1]} but this root asked for "
                        f"{index}/{count}; re-slicing a shared fleet would "
                        "corrupt datasets other roots already loaded"
                    )
            worker.configure(
                index, count, float(args.get("aggregationInterval", 0.1))
            )
            yield RpcReply(
                request.request_id,
                "ack",
                payload={"index": index, "count": count},
            )
        elif method == "placement":
            with self._placement_lock:
                placement = self._placement
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "name": worker.name,
                    "index": None if placement is None else placement[0],
                    "count": None if placement is None else placement[1],
                },
            )
        elif method == "load":
            shards = worker.load_source(
                str(args["dataset"]), source_from_json(args["source"])
            )
            yield RpcReply(
                request.request_id, "ack", payload={"shards": shards}
            )
        elif method == "ensure":
            shards = worker.ensure(
                str(args["dataset"]), lineage_from_json(args["lineage"])
            )
            yield RpcReply(
                request.request_id, "ack", payload={"shards": shards}
            )
        elif method == "rows":
            rows = worker.shard_rows(
                str(args["dataset"]), lineage_from_json(args["lineage"])
            )
            yield RpcReply(
                request.request_id, "complete", payload={"rows": rows}
            )
        elif method == "schema":
            schema = worker.shard_schema(
                str(args["dataset"]), lineage_from_json(args["lineage"])
            )
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "columns": (
                        None
                        if schema is None
                        else [d.to_json() for d in schema]
                    )
                },
            )
        elif method == "sketch":
            yield from self._run_sketch(request, link)
        elif method == "evict":
            worker.evict(str(args["dataset"]))
            yield RpcReply(request.request_id, "ack")
        elif method == "crash":
            worker.crash()
            yield RpcReply(request.request_id, "ack")
        elif method == "ping":
            yield RpcReply(
                request.request_id, "ack", payload={"pong": True}
            )
        elif method == "stats":
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    **self._info(),
                    "shardsSummarized": worker.shards_summarized,
                    "crashes": worker.crashes,
                    "requestsServed": self.requests_served,
                },
            )
        elif method == "cacheStats":
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    **worker.cache_stats(),
                    "entriesPurged": self.cache_entries_purged,
                },
            )
        elif method == "sweepCaches":
            # An on-demand sweep (operators, tests); the periodic daemon
            # sweep calls the same worker hook.
            purged = worker.sweep_caches()
            self.cache_entries_purged += purged
            yield RpcReply(
                request.request_id, "complete", payload={"purged": purged}
            )
        else:
            raise ProtocolError(f"unknown worker method {method!r}")

    def _run_sketch(
        self, request: RpcRequest, link: _RootLink
    ) -> Iterator[RpcReply]:
        args = request.args
        sketch = sketch_from_json(args["sketch"])
        lineage = lineage_from_json(args["lineage"])
        token = CancellationToken()
        with link.tokens_lock:
            link.tokens[request.request_id] = token
            if request.request_id in link.cancelled_early:
                link.cancelled_early.discard(request.request_id)
                token.cancel()
        done = 0
        cache_hit = False
        try:
            for emission in self.worker.sketch_partials(
                str(args["dataset"]), sketch, lineage, token
            ):
                done = emission.shards_done
                cache_hit = cache_hit or emission.cache_hit
                yield RpcReply(
                    request.request_id,
                    "partial",
                    progress=0.0,
                    payload={
                        "summary": summary_to_json(emission.summary),
                        "shardsDone": emission.shards_done,
                        "bytes": emission.bytes,
                        "cacheHit": emission.cache_hit,
                    },
                )
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "shardsDone": done,
                    "cancelled": token.cancelled,
                    "cacheHit": cache_hit,
                },
            )
        finally:
            with link.tokens_lock:
                link.tokens.pop(request.request_id, None)


# ---------------------------------------------------------------------------
# Root side: channel + proxy
# ---------------------------------------------------------------------------
class _WorkerChannel:
    """One framed connection to a worker, demultiplexed by request id."""

    def __init__(self, sock: socket.socket, name: str):
        self.name = name
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._ids = itertools.count(1)
        self._pending: dict[int, "queue.Queue[RpcReply]"] = {}
        self._lock = threading.Lock()
        self.dead = threading.Event()
        self._reader = threading.Thread(
            target=self._reader_loop, name=f"{name}-reader", daemon=True
        )
        self._reader.start()

    def submit(self, method: str, args: dict) -> tuple[int, "queue.Queue[RpcReply]"]:
        request = RpcRequest(next(self._ids), "", method, args)
        replies: "queue.Queue[RpcReply]" = queue.Queue()
        with self._lock:
            if self.dead.is_set():
                raise WorkerUnavailableError(
                    f"worker {self.name} connection is closed"
                )
            self._pending[request.request_id] = replies
            try:
                write_frame(
                    self._wfile, request.to_json().encode("utf-8")
                )
            except (ConnectionError, OSError, ValueError) as exc:
                self._pending.pop(request.request_id, None)
                self.dead.set()
                raise WorkerUnavailableError(
                    f"worker {self.name} is unreachable: {exc}"
                ) from exc
        return request.request_id, replies

    def call(self, method: str, args: dict, timeout: float = 60.0) -> RpcReply:
        """One request, blocking for its terminal reply."""
        _, replies = self.submit(method, args)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerUnavailableError(
                    f"worker {self.name} did not answer {method!r} "
                    f"within {timeout:.0f}s"
                )
            try:
                reply = replies.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if reply.kind == "error":
                if reply.code in ("connection", "worker_unavailable"):
                    raise WorkerUnavailableError(
                        f"worker {self.name}: {reply.error}"
                    )
                raise EngineError(f"worker {self.name}: [{reply.code}] {reply.error}")
            if reply.kind in _TERMINAL:
                return reply

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = read_frame_blocking(self._rfile, error=FrameError)
                if frame is None:
                    break
                reply = RpcReply.from_json(frame.decode("utf-8"))
                with self._lock:
                    replies = self._pending.get(reply.request_id)
                    if replies is not None and reply.kind in _TERMINAL:
                        del self._pending[reply.request_id]
                if replies is not None:
                    replies.put(reply)
        except (FrameError, OSError, ValueError):
            pass
        finally:
            self.dead.set()
            with self._lock:
                orphans = list(self._pending.items())
                self._pending.clear()
            for request_id, replies in orphans:
                replies.put(
                    RpcReply(
                        request_id,
                        "error",
                        error=f"connection to worker {self.name} lost",
                        code="connection",
                    )
                )

    def close(self) -> None:
        self.dead.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=5.0)


class RemoteWorkerProxy(WorkerProtocol):
    """The root's handle on one worker process (drop-in for ``Worker``)."""

    def __init__(
        self,
        name: str,
        channel: _WorkerChannel,
        cores: int,
        process: "subprocess.Popen | None" = None,
        address: tuple[str, int] | None = None,
        request_timeout: float = 300.0,
    ):
        self.name = name
        self.channel = channel
        self.cores = cores
        self.process = process
        self.address = address
        self.request_timeout = request_timeout
        self.index = 0
        self.count = 1
        self.aggregation_interval = 0.1

    @property
    def alive(self) -> bool:
        if self.channel.dead.is_set():
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    # -- WorkerProtocol -------------------------------------------------
    def configure(
        self, index: int, count: int, aggregation_interval: float
    ) -> None:
        self.index = index
        self.count = count
        self.aggregation_interval = aggregation_interval
        self.channel.call(
            "configure",
            {
                "index": index,
                "count": count,
                "aggregationInterval": aggregation_interval,
            },
            timeout=self.request_timeout,
        )

    def load_source(self, dataset_id: str, source: DataSource) -> int:
        reply = self.channel.call(
            "load",
            {"dataset": dataset_id, "source": source_to_json(source)},
            timeout=self.request_timeout,
        )
        return int(reply.payload["shards"])

    def ensure(self, dataset_id: str, lineage: list) -> int:
        reply = self.channel.call(
            "ensure",
            {"dataset": dataset_id, "lineage": lineage_to_json(lineage)},
            timeout=self.request_timeout,
        )
        return int(reply.payload["shards"])

    def shard_rows(self, dataset_id: str, lineage: list) -> int:
        reply = self.channel.call(
            "rows",
            {"dataset": dataset_id, "lineage": lineage_to_json(lineage)},
            timeout=self.request_timeout,
        )
        return int(reply.payload["rows"])

    def shard_schema(self, dataset_id: str, lineage: list) -> Schema | None:
        reply = self.channel.call(
            "schema",
            {"dataset": dataset_id, "lineage": lineage_to_json(lineage)},
            timeout=self.request_timeout,
        )
        columns = reply.payload["columns"]
        if columns is None:
            return None
        return Schema(ColumnDescription.from_json(c) for c in columns)

    def sketch_partials(
        self,
        dataset_id: str,
        sketch,
        lineage: list,
        token: CancellationToken | None = None,
    ) -> Iterator[WorkerEmission]:
        request_id, replies = self.channel.submit(
            "sketch",
            {
                "dataset": dataset_id,
                "sketch": sketch_to_json(sketch),
                "lineage": lineage_to_json(lineage),
            },
        )
        cancel_sent = False
        deadline = time.monotonic() + self.request_timeout
        while True:
            if token is not None and token.cancelled and not cancel_sent:
                cancel_sent = True
                try:
                    self.channel.submit("cancel", {"requestId": request_id})
                except WorkerUnavailableError:
                    pass  # the dead-channel path below reports it
            try:
                reply = replies.get(timeout=0.05)
            except queue.Empty:
                if self.channel.dead.is_set():
                    raise WorkerUnavailableError(
                        f"worker {self.name} died mid-sketch"
                    )
                if time.monotonic() > deadline:
                    raise WorkerUnavailableError(
                        f"worker {self.name} stalled mid-sketch "
                        f"(> {self.request_timeout:.0f}s)"
                    )
                continue
            deadline = time.monotonic() + self.request_timeout
            if reply.kind == "partial":
                payload = reply.payload
                yield WorkerEmission(
                    summary_from_json(payload["summary"]),
                    int(payload["shardsDone"]),
                    int(payload["bytes"]),
                    cache_hit=bool(payload.get("cacheHit", False)),
                )
            elif reply.kind == "complete":
                return
            elif reply.kind == "error":
                if reply.code in ("connection", "worker_unavailable"):
                    raise WorkerUnavailableError(
                        f"worker {self.name}: {reply.error}"
                    )
                raise EngineError(
                    f"worker {self.name}: [{reply.code}] {reply.error}"
                )
            else:  # cancelled / ack — treat as stream end
                return

    def evict(self, dataset_id: str) -> None:
        self.channel.call(
            "evict", {"dataset": dataset_id}, timeout=self.request_timeout
        )

    def crash(self) -> None:
        self.channel.call("crash", {}, timeout=self.request_timeout)

    def query_placement(self) -> "ShardPlacement | None":
        """The worker's sticky slice assignment, or None if unplaced."""
        reply = self.channel.call(
            "placement", {}, timeout=self.request_timeout
        )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        return ShardPlacement.from_json(payload)

    # -- liveness / lifecycle -------------------------------------------
    def ping(self, timeout: float = 5.0) -> bool:
        try:
            reply = self.channel.call("ping", {}, timeout=timeout)
            return bool(reply.payload.get("pong"))
        except (WorkerUnavailableError, EngineError):
            return False

    def stats(self) -> dict:
        return self.channel.call("stats", {}, timeout=self.request_timeout).payload

    def cache_stats(self) -> dict:
        """The daemon-side cache counters (store + memo + sweep totals)."""
        return self.channel.call(
            "cacheStats", {}, timeout=self.request_timeout
        ).payload

    def sweep_remote_caches(self) -> int:
        """Trigger an on-demand TTL sweep on the worker daemon."""
        reply = self.channel.call(
            "sweepCaches", {}, timeout=self.request_timeout
        )
        return int(reply.payload["purged"])

    def kill_process(self, sig: int = signal.SIGKILL) -> None:
        """Hard-kill the worker process (chaos testing)."""
        if self.process is None:
            raise EngineError(f"worker {self.name} was not spawned by us")
        self.process.send_signal(sig)

    def close(self) -> None:
        # Only a worker we spawned is ours to shut down.  A pre-started
        # daemon is shared fleet infrastructure: other roots may be
        # serving through it right now, so detaching just closes this
        # root's connection (the daemon outlives any particular root).
        if self.process is not None and not self.channel.dead.is_set():
            try:
                self.channel.call("shutdown", {}, timeout=2.0)
            except (WorkerUnavailableError, EngineError):
                pass
        self.channel.close()
        if self.process is not None:
            try:
                self.process.terminate()
                self.process.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                try:
                    self.process.kill()
                    self.process.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<RemoteWorkerProxy {self.name} cores={self.cores} {state}>"


# ---------------------------------------------------------------------------
# ProcessCluster
# ---------------------------------------------------------------------------
def _worker_command(
    python: str, connect: tuple[str, int], name: str, cores: int
) -> list[str]:
    host, port = connect
    return [
        python,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"{host}:{port}",
        "--name",
        name,
        "--cores",
        str(cores),
    ]


def _spawn_env() -> dict:
    """The child's environment, with this package importable."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class ProcessCluster(Cluster):
    """A cluster whose workers are separate OS processes (§5.2).

    Two construction modes:

    * ``ProcessCluster(num_workers=4)`` — spawn ``repro worker``
      subprocesses that dial back into the root; the default zero-config
      path (``repro serve --spawn``).
    * ``ProcessCluster(addresses=[(host, port), ...])`` — attach to
      pre-started ``repro worker --listen`` daemons, one per server.

    ``respawn=True`` (default, spawn mode) revives a worker that dies
    mid-query: the subprocess is relaunched, reconfigured, and the sketch
    stream re-run; redo-log lineage rebuilds its soft state (§5.8).
    """

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 2,
        aggregation_interval: float = 0.1,
        addresses: "list[tuple[str, int]] | None" = None,
        python: str | None = None,
        startup_timeout: float = 30.0,
        request_timeout: float = 300.0,
        respawn: bool = True,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
    ):
        self._python = python or sys.executable
        self._startup_timeout = startup_timeout
        self._request_timeout = request_timeout
        self._respawn = respawn
        self._revive_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._addresses = list(addresses) if addresses is not None else None
        workers: list[RemoteWorkerProxy] = []
        try:
            if self._addresses is None:
                self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                self._listener.bind(("127.0.0.1", 0))
                self._listener.listen(max(num_workers, 4))
                self._env = _spawn_env()
                for i in range(num_workers):
                    workers.append(self._spawn_worker(i, cores_per_worker))
            else:
                for host, port in self._addresses:
                    workers.append(self._dial_worker(host, port))
                workers = self._agree_placement(workers)
        except BaseException:
            for proxy in workers:
                proxy.close()
            if self._listener is not None:
                self._listener.close()
            raise
        super().__init__(
            aggregation_interval=aggregation_interval,
            cache_entries=cache_entries,
            cache_ttl_seconds=cache_ttl_seconds,
            workers=workers,
        )

    # -- attachment ------------------------------------------------------
    def _spawn_worker(self, index: int, cores: int) -> RemoteWorkerProxy:
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        name = f"worker-{index}"
        process = subprocess.Popen(
            _worker_command(self._python, (host, port), name, cores),
            env=self._env,
            stdout=subprocess.DEVNULL,
        )
        try:
            self._listener.settimeout(self._startup_timeout)
            while True:
                sock, _ = self._listener.accept()
                proxy = self._handshake(sock, process)
                if proxy is not None:
                    return proxy
        except socket.timeout:
            process.kill()
            raise EngineError(
                f"worker {name} did not attach within "
                f"{self._startup_timeout:.0f}s"
            ) from None
        finally:
            self._listener.settimeout(None)

    def _handshake(
        self, sock: socket.socket, process: "subprocess.Popen | None"
    ) -> RemoteWorkerProxy | None:
        """Read the worker's hello, ack it, wrap the socket in a channel."""
        sock.settimeout(self._startup_timeout)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            frame = read_frame_blocking(rfile, error=FrameError)
            if frame is None:
                sock.close()
                return None
            hello = RpcRequest.from_json(frame.decode("utf-8"))
            if hello.method != "hello":
                sock.close()
                return None
            write_frame(
                wfile, RpcReply(hello.request_id, "ack").to_json().encode("utf-8")
            )
        except (FrameError, ProtocolError, OSError, ValueError):
            sock.close()
            return None
        sock.settimeout(None)
        name = str(hello.args.get("name", "worker"))
        cores = int(hello.args.get("cores", 1))
        return RemoteWorkerProxy(
            name,
            _WorkerChannel(sock, name),
            cores,
            process=process,
            request_timeout=self._request_timeout,
        )

    def _agree_placement(
        self, proxies: "list[RemoteWorkerProxy]"
    ) -> "list[RemoteWorkerProxy]":
        """Order attached workers by the fleet's agreed slice assignment.

        Workers report their sticky placement; a fresh fleet gets the
        canonical (address-sorted) assignment, a placed fleet is adopted
        verbatim.  Every root attaching to the same daemons therefore
        configures the same worker with the same slice index — the
        byte-for-byte agreement the multi-root service tier needs (the
        ``configure`` calls in ``Cluster.__init__`` then match each
        worker's pinned placement instead of fighting it).

        A *partially* placed fleet is a transient state — another root is
        pinning workers one by one at this very moment — so that case is
        re-queried briefly instead of failing the attach.
        """
        assert self._addresses is not None
        deadline = time.monotonic() + min(self._startup_timeout, 10.0)
        while True:
            reported = [proxy.query_placement() for proxy in proxies]
            try:
                assignment = agree_placement(self._addresses, reported)
                break
            except PlacementError as exc:
                if not exc.retryable or time.monotonic() > deadline:
                    raise
                time.sleep(0.1)
        ordered: "list[RemoteWorkerProxy | None]" = [None] * len(proxies)
        for position, index in enumerate(assignment):
            ordered[index] = proxies[position]
        return [proxy for proxy in ordered if proxy is not None]

    def _dial_worker(self, host: str, port: int) -> RemoteWorkerProxy:
        sock = socket.create_connection(
            (host, port), timeout=self._startup_timeout
        )
        sock.settimeout(None)
        wfile = sock.makefile("wb")
        rfile = sock.makefile("rb")
        write_frame(wfile, RpcRequest(0, "", "hello", {}).to_json().encode("utf-8"))
        frame = read_frame_blocking(rfile, error=FrameError)
        if frame is None:
            raise EngineError(f"worker at {host}:{port} closed during handshake")
        ack = RpcReply.from_json(frame.decode("utf-8"))
        payload = ack.payload if isinstance(ack.payload, dict) else {}
        name = str(payload.get("name", f"{host}:{port}"))
        cores = int(payload.get("cores", 1))
        proxy = RemoteWorkerProxy(
            name,
            _WorkerChannel(sock, name),
            cores,
            address=(host, port),
            request_timeout=self._request_timeout,
        )
        return proxy

    # -- fault recovery (§5.8) ------------------------------------------
    def revive_worker(self, index: int) -> bool:
        """Respawn (or re-dial) a dead worker and reconfigure it."""
        if not self._respawn:
            return False
        with self._revive_lock:
            proxy = self.workers[index]
            if not isinstance(proxy, RemoteWorkerProxy):
                return False
            if proxy.alive and proxy.ping():
                return True  # another thread already revived it
            proxy.close()
            try:
                if proxy.address is not None:
                    replacement = self._retry_dial(proxy.address)
                else:
                    replacement = self._spawn_worker(index, proxy.cores)
            except (EngineError, OSError):
                return False
            if replacement is None:
                return False
            try:
                replacement.configure(
                    index, len(self.workers), self.aggregation_interval
                )
            except (WorkerUnavailableError, EngineError):
                # The replacement died during configuration; revive_worker
                # must report failure, never raise (callers retry on True).
                replacement.close()
                return False
            self.workers[index] = replacement
            return True

    def _retry_dial(
        self, address: tuple[str, int], attempts: int = 10, delay: float = 0.3
    ) -> RemoteWorkerProxy | None:
        for _ in range(attempts):
            try:
                return self._dial_worker(*address)
            except (OSError, EngineError):
                time.sleep(delay)
        return None

    def kill_worker_process(self, index: int, sig: int = signal.SIGKILL) -> None:
        """SIGKILL one worker process (chaos testing; §5.8 fault model)."""
        proxy = self.workers[index]
        if not isinstance(proxy, RemoteWorkerProxy):
            raise EngineError("kill_worker_process needs a remote worker")
        proxy.kill_process(sig)

    def worker_pids(self) -> list[int | None]:
        return [
            w.pid if isinstance(w, RemoteWorkerProxy) else None
            for w in self.workers
        ]

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        if self._listener is not None:
            self._listener.close()
            self._listener = None


# ---------------------------------------------------------------------------
# CLI entry (``repro worker``)
# ---------------------------------------------------------------------------
def worker_main(argv: list[str]) -> int:
    """`repro worker`: run one worker daemon."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.cli worker",
        description="Run one Hillview worker process.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a root that spawned this worker",
    )
    mode.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="bind and wait for a root to dial in (daemon fleet)",
    )
    parser.add_argument("--name", help="worker name (defaults to worker-<pid>)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument(
        "--cache-entries", type=int, default=64,
        help="soft object store capacity (datasets per worker)",
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=2 * 3600.0,
        help="seconds before an unused dataset/memo entry is purged "
             "(the paper's 2-hour soft-state TTL)",
    )
    parser.add_argument(
        "--cache-sweep-interval", type=float, default=300.0,
        help="how often the daemon purges TTL-expired cache entries "
             "(<= 0 disables the periodic sweep)",
    )
    args = parser.parse_args(argv)

    server = WorkerServer(
        name=args.name,
        cores=args.cores,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=args.cache_ttl,
        cache_sweep_interval_seconds=args.cache_sweep_interval,
    )
    try:
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            server.run_connect(host or "127.0.0.1", int(port))
        else:
            host, _, port = args.listen.rpartition(":")

            def announce(address: tuple[str, int]) -> None:
                # The announcement line is a valid @fleet.txt entry: it
                # must carry a *dialable* host, so a wildcard bind falls
                # back to loopback (multi-host fleets edit the file or
                # announce a real interface address).
                bound = address[0]
                dialable = (
                    "127.0.0.1" if bound in ("0.0.0.0", "::", "") else bound
                )
                print(
                    json.dumps(
                        {
                            "worker": server.worker.name,
                            "host": dialable,
                            "port": address[1],
                        }
                    ),
                    flush=True,
                )

            server.run_listen(host or "127.0.0.1", int(port), on_bound=announce)
    except KeyboardInterrupt:
        # Ctrl-C on a foreground `repro serve --spawn` reaches the whole
        # process group; workers exit quietly, like the root does.
        pass
    return 0
