"""Out-of-process workers: the root/worker wire of the paper (§5.2, §5.8).

Hillview's root node fans queries out to worker *processes* on separate
servers.  This module is that deployment for the reproduction:

* :class:`WorkerServer` — the worker daemon (``repro worker``): owns a
  shard store and a leaf thread pool (a plain in-process
  :class:`~repro.engine.cluster.Worker`) and speaks uvarint-framed JSON
  request/reply envelopes over TCP, streaming cumulative sketch partials;
* :class:`RemoteWorkerProxy` — the root's view of one worker process;
  implements :class:`~repro.engine.cluster.WorkerProtocol`, so the generic
  :class:`~repro.engine.cluster.Cluster` machinery (broadcast, 0.1 s
  aggregation cadence, progressive merge, redo-log replay) runs unchanged
  over a real network;
* :class:`ProcessCluster` — a cluster whose workers are spawned
  subprocesses (or pre-started daemons reached by address).  A worker that
  dies — even SIGKILL mid-sketch — is respawned and its stream re-run;
  lineage replay rebuilds its soft state and cumulative partials make the
  retry invisible to the streaming client (§5.7–5.8).

Control messages on this wire are JSON: sketches travel as the same specs
a browser submits and lineage travels as load/map descriptions — one codec
for every hop.  Bulk payloads (sketch partials, shard transfers) ride the
same frames as binary attachments — each summary's own Encoder format and
raw hvc table bytes — instead of base64-inside-JSON; ``REPRO_WIRE_JSON=1``
forces the pure-JSON wire as a differential baseline.
"""

from __future__ import annotations

import base64
import contextlib
import itertools
import json
import os
import queue
import signal
import socket
import subprocess
import sys
import threading
import time
from typing import Iterator, Sequence

from repro.core.framing import FrameError, read_frame_blocking, write_frame
from repro.engine.cluster import (
    Cluster,
    StolenParcel,
    Worker,
    WorkerEmission,
    WorkerProtocol,
)
from repro.engine.placement import (
    PlacementError,
    ShardPlacement,
    StalePlacementError,
    agree_placement,
    format_address,
    global_indices,
    parse_address,
    plan_moves,
)
from repro.engine.progress import CancellationToken
from repro.core.serialization import Decoder, Encoder
from repro.engine.rpc import (
    TERMINAL_REPLY_KINDS,
    ProtocolError,
    RpcReply,
    RpcRequest,
    call_once,
    lineage_from_json,
    lineage_to_json,
    sketch_from_json,
    sketch_to_json,
    source_from_json,
    source_to_json,
    summary_from_bytes,
    summary_from_json,
    summary_tag,
    summary_to_bytes,
    summary_to_json,
    wire_json_forced,
)
from repro.errors import (
    EngineError,
    HillviewError,
    SerializationError,
    WorkerUnavailableError,
)
from repro.obs.logs import configure_logging, log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import (
    RECORDER,
    TraceContext,
    current_context,
    serve_span,
    set_service_name,
)
from repro.storage.loader import DataSource
from repro.table.schema import ColumnDescription, Schema

#: Reply kinds that end one request's reply stream (the shared set —
#: both wires terminate streams identically).
_TERMINAL = TERMINAL_REPLY_KINDS

#: Methods that touch the shard store under a placement; each carries the
#: root's ``placementVersion`` and drains before a rebalance commit.
_DATASET_METHODS = frozenset(
    {"load", "ensure", "rows", "schema", "sketch", "evict"}
)

#: State-creating methods a draining worker (SIGTERM received) refuses;
#: in-flight partial streams still run to completion.
_REFUSED_WHILE_DRAINING = frozenset(
    {
        "configure",
        "load",
        "adoptShards",
        "transferShards",
        "rebalanceCommit",
        # A draining worker finishes what it has; acting as a steal
        # thief or prewarm target is *new* work it must not take on.
        "stolenPartial",
        "importEntries",
    }
)

#: Roughly how many shard payload bytes one adoptShards batch carries
#: (well under MAX_FRAME_BYTES so the envelope always fits, even with
#: the ~4/3 inflation of the JSON-wire base64 fallback).
_TRANSFER_BATCH_BYTES = 8 * 1024 * 1024


class WorkerDrainingError(HillviewError):
    """The worker received SIGTERM and refuses new state-creating work."""

    code = "worker_draining"


# ---------------------------------------------------------------------------
# The worker daemon
# ---------------------------------------------------------------------------
class _RootLink:
    """One root's connection to this worker, with its own request-id space.

    A fleet daemon serves several roots at once (the multi-root service
    tier); each root numbers its requests independently, so cancellation
    state and the write lock must be per-connection — a shared token table
    would let root A's request #7 cancel root B's request #7.
    """

    def __init__(self, rfile, wfile):
        self.rfile = rfile
        self.wfile = wfile
        self.write_lock = threading.Lock()
        self.tokens: dict[int, CancellationToken] = {}
        #: Cancels that arrived before their sketch left the request pool's
        #: queue (the token is only registered when execution starts).
        self.cancelled_early: set[int] = set()
        #: Steal ledgers of this root's in-flight sketches, by request id:
        #: a ``claimSlices`` for request N cedes unstarted trailing shards
        #: of exactly that run.  Per-link, like the tokens — request ids
        #: are only unique per root connection.
        self.ledgers: dict[int, object] = {}
        self.tokens_lock = threading.Lock()


class WorkerServer:
    """One worker process: a shard store + leaf pool behind a socket.

    Two attachment modes mirror real deployments:

    * ``run_connect`` — dial the root that spawned us (``--connect``);
    * ``run_listen`` — bind a port and serve roots as they dial in
      (``--listen``), e.g. a fleet of daemons started by an init system.
      Several roots may be connected at once, each on its own thread —
      the multi-root service tier shares one fleet this way.

    The connection protocol is symmetric request/reply: after a ``hello``
    info exchange the root sends :class:`~repro.engine.rpc.RpcRequest`
    envelopes (``configure``, ``placement``, ``load``, ``ensure``,
    ``rows``, ``schema``, ``sketch``, ``cancel``, ``evict``, ``crash``,
    ``ping``, ``stats``, ``shutdown``) and the worker streams back
    replies, interleaved by request id.  ``sketch`` yields one
    ``partial`` per aggregation-cadence tick carrying the cumulative
    summary as a JSON payload.

    The worker's shard-slice assignment is **sticky**: the first
    ``configure`` pins it, every root can read it back via ``placement``,
    and a conflicting ``configure`` is rejected (``placement_conflict``)
    instead of silently re-slicing datasets another root already loaded.
    """

    def __init__(
        self,
        name: str | None = None,
        cores: int = 4,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
        cache_sweep_interval_seconds: float = 300.0,
    ):
        # "slow" sketches (service load tests) must deserialize here too.
        import repro.service.slow  # noqa: F401

        self.worker = Worker(
            name or f"worker-{os.getpid()}",
            cores=cores,
            cache_entries=cache_entries,
            cache_ttl_seconds=cache_ttl_seconds,
        )
        self._placement: tuple[int, int] | None = None
        self._placement_lock = threading.Lock()
        #: Placement versioning (elastic fleets): the version this
        #: worker's slice was pinned at, the fleet membership it was told
        #: about, staged shards adopted for a pending rebalance (keyed by
        #: target version), and the in-flight dataset-op counter a
        #: rebalance commit drains before re-keying the store.
        self._version = 0
        self._members: list[str] | None = None
        self._retired = False
        self._staged: dict[int, dict[str, dict[int, object]]] = {}
        #: When each staged version arrived: an aborted rebalance must
        #: not pin a copy of the moved slices forever, so the periodic
        #: cache sweep drops staging older than this.
        self._staged_at: dict[int, float] = {}
        self.staged_stage_ttl_seconds = 900.0
        self._ops_cv = threading.Condition(self._placement_lock)
        self._dataset_ops = 0
        self._rebalance_pending = False
        self.shards_adopted = 0
        self.shards_transferred = 0
        #: Graceful shutdown (SIGTERM): finish in-flight partials, refuse
        #: new state-creating requests, then exit once drained.
        self._draining = threading.Event()
        self._shutdown = threading.Event()
        self._listener: socket.socket | None = None
        self.requests_served = 0
        self.roots_served = 0
        #: Requests admitted to the handler pool and not yet finished —
        #: the daemon's queue depth, reported by ``metricsSnapshot``.
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        #: The daemon-side cache sweep (§5.4: "unused for 2 hours →
        #: purged"): a timer thread drops TTL-expired shards and memo
        #: entries so idle daemons actually release memory instead of
        #: waiting for the next get() to notice staleness.  <= 0 disables.
        self.cache_sweep_interval_seconds = cache_sweep_interval_seconds
        self.cache_entries_purged = 0
        self._sweeper: threading.Thread | None = None
        self._sweeper_lock = threading.Lock()

    # -- the cache sweep -------------------------------------------------
    def _start_sweeper(self) -> None:
        """Start the periodic cache sweep (idempotent; daemon thread)."""
        if self.cache_sweep_interval_seconds <= 0:
            return
        with self._sweeper_lock:
            if self._sweeper is not None and self._sweeper.is_alive():
                return
            # repro: ignore[C002] — daemon-lifetime TTL sweep; no query context exists to carry
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                name=f"{self.worker.name}-cache-sweep",
                daemon=True,
            )
            self._sweeper.start()

    def _sweep_loop(self) -> None:
        while not self._shutdown.wait(self.cache_sweep_interval_seconds):
            self.cache_entries_purged += self.worker.sweep_caches()
            self.cache_entries_purged += self._sweep_stale_staging()

    def _sweep_stale_staging(self) -> int:
        """Drop shards staged for a rebalance that never committed (the
        initiating root died mid-resize); returns shards dropped."""
        now = time.monotonic()
        dropped = 0
        with self._ops_cv:
            for version in list(self._staged):
                stamped = self._staged_at.get(version, now)
                if now - stamped > self.staged_stage_ttl_seconds:
                    for shards in self._staged.pop(version).values():
                        dropped += len(shards)
                    self._staged_at.pop(version, None)
        return dropped

    # -- graceful shutdown (SIGTERM) -------------------------------------
    def begin_drain(self) -> None:
        """Start a graceful shutdown: stop accepting roots, refuse new
        state-creating requests, let in-flight partial streams finish.

        Idempotent; wired to SIGTERM by ``repro worker`` so a fleet
        shrink or a CI teardown never races a mid-stream kill."""
        self._draining.set()
        listener = self._listener
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def wait_drained(self, timeout: float = 30.0) -> bool:
        """Block until every in-flight dataset op finished (or timeout).

        Returns whether the worker is idle; ``repro worker`` calls this
        after SIGTERM before letting the process exit."""
        deadline = time.monotonic() + timeout
        with self._ops_cv:
            while self._dataset_ops:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._ops_cv.wait(timeout=min(remaining, 0.5))
        return True

    # -- placement versioning (elastic fleets) ---------------------------
    @contextlib.contextmanager
    def _dataset_op(self, args: dict):
        """Admission guard for store-touching requests.

        Verifies the root's placement version under the placement lock
        and registers the op so a rebalance commit can drain in-flight
        work before re-keying the store — the invariant that every
        admitted request runs start-to-finish against exactly one slice
        assignment (results stay byte-identical across rebalances).
        """
        version = args.get("placementVersion")
        with self._ops_cv:
            if self._rebalance_pending:
                raise StalePlacementError(
                    f"worker {self.worker.name} is committing a rebalance; "
                    "re-read the placement and retry"
                )
            if self._retired:
                raise StalePlacementError(
                    f"worker {self.worker.name} was retired from the fleet "
                    f"at version {self._version}; it serves no shard slice"
                )
            if version is not None and int(version) != self._version:
                raise StalePlacementError(
                    f"worker {self.worker.name} holds placement version "
                    f"{self._version} but this root sent "
                    f"{int(version)}; the fleet was rebalanced — re-read "
                    "the placement and retry"
                )
            self._dataset_ops += 1
        try:
            yield
        finally:
            with self._ops_cv:
                self._dataset_ops -= 1
                self._ops_cv.notify_all()

    # -- attachment modes ----------------------------------------------
    def run_connect(self, host: str, port: int, timeout: float = 10.0) -> None:
        """Dial the root and serve it until it disconnects (spawn mode)."""
        self._start_sweeper()
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        wfile = sock.makefile("wb")
        write_frame(
            wfile,
            RpcRequest(0, "", "hello", self._info()).to_json().encode("utf-8"),
        )
        rfile = sock.makefile("rb")
        frame = read_frame_blocking(rfile, error=FrameError)
        if frame is None:
            raise EngineError("root closed the connection during handshake")
        RpcReply.from_json(frame.decode("utf-8"))  # the root's ack
        self._serve(rfile, wfile)

    def run_listen(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        on_bound=None,
        once: bool = False,
    ) -> None:
        """Bind and serve roots as they dial in (daemon-fleet mode).

        Each root gets its own serving thread, so N service front-ends can
        share this worker concurrently; ``once=True`` serves a single
        connection inline and returns (tests).
        """
        self._start_sweeper()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(16)
        self._listener = listener
        if on_bound is not None:
            on_bound(listener.getsockname()[:2])
        try:
            while not self._shutdown.is_set():
                try:
                    sock, _ = listener.accept()
                except OSError:
                    break  # listener closed by a shutdown RPC
                sock.settimeout(None)
                self.roots_served += 1
                if once:
                    self._serve_socket(sock)
                    break
                # repro: ignore[C002] — per-connection server thread; trace context rides each RPC envelope and is restored in _handle
                threading.Thread(
                    target=self._serve_socket,
                    args=(sock,),
                    name=f"{self.worker.name}-root-{self.roots_served}",
                    daemon=True,
                ).start()
        finally:
            self._listener = None
            try:
                listener.close()
            except OSError:
                pass

    def _serve_socket(self, sock: socket.socket) -> None:
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            self._serve(rfile, wfile)
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _info(self) -> dict:
        return {
            "name": self.worker.name,
            "pid": os.getpid(),
            "cores": self.worker.cores,
        }

    def metrics_snapshot(self) -> dict:
        """The daemon's live metrics: queue depth, in-flight dataset
        ops, cache hit rates, placement version, plus this process's
        metrics registry — one payload for ``repro fleet top`` and the
        root's fleet-wide aggregation."""
        with self._ops_cv:
            dataset_ops = self._dataset_ops
        with self._inflight_lock:
            inflight = self._inflight
        snapshot = self.worker.metrics_snapshot()
        snapshot.update(
            {
                "pid": os.getpid(),
                "inflight": inflight,
                "datasetOps": dataset_ops,
                "requestsServed": self.requests_served,
                "rootsServed": self.roots_served,
                "placementVersion": self._version,
                "draining": self.draining,
                "entriesPurged": self.cache_entries_purged,
                "spansBuffered": len(RECORDER),
                "registry": REGISTRY.snapshot(),
            }
        )
        return snapshot

    # -- the request loop ----------------------------------------------
    def _serve(self, rfile, wfile) -> None:
        import concurrent.futures

        link = _RootLink(rfile, wfile)
        with concurrent.futures.ThreadPoolExecutor(
            max(4, self.worker.cores)
        ) as pool:
            try:
                while not self._shutdown.is_set():
                    frame = read_frame_blocking(rfile, error=FrameError)
                    if frame is None:
                        break
                    try:
                        request = RpcRequest.from_frame(frame)
                    except (
                        ProtocolError,
                        SerializationError,
                        UnicodeDecodeError,
                    ) as exc:
                        self._reply(
                            link,
                            RpcReply(-1, "error", error=str(exc), code="protocol"),
                        )
                        continue
                    self.requests_served += 1
                    if request.method == "hello":
                        self._reply(
                            link,
                            RpcReply(request.request_id, "ack", payload=self._info()),
                        )
                    elif request.method == "cancel":
                        # Handled inline so a cancel is never stuck behind
                        # the sketch it is trying to stop.  A cancel may
                        # outrun its sketch through the request pool: the
                        # target id is remembered and honored when the
                        # sketch registers its token (§5.3 must hold even
                        # on a saturated worker).
                        target = int(request.args.get("requestId", -1))
                        with link.tokens_lock:
                            token = link.tokens.get(target)
                            if token is None:
                                link.cancelled_early.add(target)
                                if len(link.cancelled_early) > 1024:
                                    link.cancelled_early.clear()
                        if token is not None:
                            token.cancel()
                        self._reply(
                            link,
                            RpcReply(
                                request.request_id,
                                "ack",
                                payload={"cancelled": True},
                            ),
                        )
                    elif request.method == "shutdown":
                        self._reply(link, RpcReply(request.request_id, "ack"))
                        self._shutdown.set()
                        listener = self._listener
                        if listener is not None:
                            try:  # unblock the accept loop
                                listener.close()
                            except OSError:
                                pass
                        break
                    else:
                        pool.submit(self._handle, request, link)
            except (FrameError, ConnectionError, OSError):
                pass  # root went away; fall through to cancel leftovers
            finally:
                with link.tokens_lock:
                    for token in link.tokens.values():
                        token.cancel()

    def _reply(self, link: _RootLink, reply: RpcReply) -> None:
        with link.write_lock:
            write_frame(link.wfile, reply.to_frame())

    def _handle(self, request: RpcRequest, link: _RootLink) -> None:
        # The envelope's trace context (if any) identifies this span: the
        # root allocated the id when it stamped the request, so the
        # merged timeline shows the daemon-side handling nested exactly
        # under the root's submission — regardless of this daemon's own
        # REPRO_TRACE setting (tracing one query traces the whole fleet).
        ctx = TraceContext.from_json(request.trace)
        with self._inflight_lock:
            self._inflight += 1
        try:
            with serve_span(
                ctx, f"worker.{request.method}", worker=self.worker.name
            ):
                for reply in self._dispatch(request, link):
                    self._reply(link, reply)
        except (ConnectionError, OSError, ValueError):
            # The root is gone mid-stream: stop producing for it.
            with link.tokens_lock:
                token = link.tokens.get(request.request_id)
            if token is not None:
                token.cancel()
        except HillviewError as exc:
            self._safe_error(link, request, str(exc), exc.code)
        except Exception as exc:  # repro: ignore[B001] — shield the worker loop
            self._safe_error(
                link, request, f"internal error: {type(exc).__name__}: {exc}",
                "internal",
            )
        finally:
            with self._inflight_lock:
                self._inflight -= 1

    def _safe_error(
        self, link: _RootLink, request, message: str, code: str
    ) -> None:
        try:
            self._reply(
                link,
                RpcReply(request.request_id, "error", error=message, code=code),
            )
        except (ConnectionError, OSError, ValueError):
            pass

    def _dispatch(
        self, request: RpcRequest, link: _RootLink
    ) -> Iterator[RpcReply]:
        method = request.method
        args = request.args
        worker = self.worker
        if method in _REFUSED_WHILE_DRAINING and self._draining.is_set():
            raise WorkerDrainingError(
                f"worker {worker.name} is draining for shutdown and "
                f"refuses {method!r}"
            )
        if method == "configure":
            index = int(args["index"])
            count = int(args["count"])
            version = int(args.get("placementVersion", 0) or 0)
            members = args.get("members")
            with self._placement_lock:
                if self._retired:
                    # A stale root re-dialing a worker the fleet shrank
                    # away must not resurrect it by re-pinning the old
                    # slice; the root resyncs to the farewell membership
                    # instead.  (To genuinely re-add this daemon, use
                    # `repro fleet grow` — or restart it clean.)
                    raise StalePlacementError(
                        f"worker {worker.name} was retired from the fleet "
                        f"at version {self._version}; it cannot be "
                        "re-placed by configure"
                    )
                if self._placement is None:
                    # First configure pins this worker's slice (and the
                    # fleet version the configuring root agreed on);
                    # later roots must agree with it.
                    self._placement = (index, count)
                    self._version = version
                    self._retired = False
                    if members:
                        self._members = [str(m) for m in members]
                elif version != self._version:
                    raise StalePlacementError(
                        f"worker {worker.name} holds placement version "
                        f"{self._version} but this root configured for "
                        f"{version}; re-read the placement and retry"
                    )
                elif self._placement != (index, count):
                    held = self._placement
                    raise PlacementError(
                        f"worker {worker.name} is placed as slice "
                        f"{held[0]}/{held[1]} but this root asked for "
                        f"{index}/{count}; re-slicing a shared fleet would "
                        "corrupt datasets other roots already loaded"
                    )
            interval = args.get("aggregationInterval")
            worker.configure(
                index,
                count,
                # None = "keep your cadence": administrative roots (the
                # fleet CLI) attach without rewriting the tier's tuning.
                float(interval)
                if interval is not None
                else worker.aggregation_interval,
            )
            yield RpcReply(
                request.request_id,
                "ack",
                payload={"index": index, "count": count, "version": version},
            )
        elif method == "placement":
            yield RpcReply(
                request.request_id,
                "complete",
                payload=self._placement_payload(),
            )
        elif method == "load":
            with self._dataset_op(args):
                shards = worker.load_source(
                    str(args["dataset"]), source_from_json(args["source"])
                )
            yield RpcReply(
                request.request_id, "ack", payload={"shards": shards}
            )
        elif method == "ensure":
            with self._dataset_op(args):
                shards = worker.ensure(
                    str(args["dataset"]), lineage_from_json(args["lineage"])
                )
            yield RpcReply(
                request.request_id, "ack", payload={"shards": shards}
            )
        elif method == "rows":
            with self._dataset_op(args):
                rows = worker.shard_rows(
                    str(args["dataset"]), lineage_from_json(args["lineage"])
                )
            yield RpcReply(
                request.request_id, "complete", payload={"rows": rows}
            )
        elif method == "schema":
            with self._dataset_op(args):
                schema = worker.shard_schema(
                    str(args["dataset"]), lineage_from_json(args["lineage"])
                )
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "columns": (
                        None
                        if schema is None
                        else [d.to_json() for d in schema]
                    )
                },
            )
        elif method == "sketch":
            with self._dataset_op(args):
                yield from self._run_sketch(request, link)
        elif method == "evict":
            with self._dataset_op(args):
                worker.evict(str(args["dataset"]))
            yield RpcReply(request.request_id, "ack")
        elif method == "inventory":
            with self._placement_lock:
                payload = {
                    "datasets": self.worker.inventory(),
                    **self._placement_payload(),
                }
            yield RpcReply(request.request_id, "complete", payload=payload)
        elif method == "transferShards":
            yield self._transfer_shards(request)
        elif method == "adoptShards":
            yield self._adopt_shards(request)
        elif method == "claimSlices":
            yield self._claim_slices(request, link)
        elif method == "stolenPartial":
            yield self._stolen_partial(request)
        elif method == "exportHotEntries":
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "entries": worker.export_hot_entries(
                        int(args.get("budgetBytes", 0))
                    )
                },
            )
        elif method == "importEntries":
            warmed = worker.import_entries(list(args.get("entries") or []))
            yield RpcReply(
                request.request_id, "complete", payload={"warmed": warmed}
            )
        elif method == "rebalanceCommit":
            yield self._rebalance_commit(request)
        elif method == "retire":
            yield self._retire(request)
        elif method == "crash":
            worker.crash()
            yield RpcReply(request.request_id, "ack")
        elif method == "ping":
            yield RpcReply(
                request.request_id, "ack", payload={"pong": True}
            )
        elif method == "stats":
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    **self._info(),
                    "shardsSummarized": worker.shards_summarized,
                    "crashes": worker.crashes,
                    "requestsServed": self.requests_served,
                },
            )
        elif method == "cacheStats":
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    **worker.cache_stats(),
                    "entriesPurged": self.cache_entries_purged,
                },
            )
        elif method == "sweepCaches":
            # An on-demand sweep (operators, tests); the periodic daemon
            # sweep calls the same worker hook.
            purged = worker.sweep_caches()
            self.cache_entries_purged += purged
            yield RpcReply(
                request.request_id, "complete", payload={"purged": purged}
            )
        elif method == "metricsSnapshot":
            yield RpcReply(
                request.request_id,
                "complete",
                payload=self.metrics_snapshot(),
            )
        elif method == "traceDump":
            trace_id = args.get("traceId")
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "spans": RECORDER.spans(
                        None if trace_id is None else str(trace_id)
                    )
                },
            )
        else:
            raise ProtocolError(f"unknown worker method {method!r}")

    def _run_sketch(
        self, request: RpcRequest, link: _RootLink
    ) -> Iterator[RpcReply]:
        args = request.args
        sketch = sketch_from_json(args["sketch"])
        lineage = lineage_from_json(args["lineage"])
        token = CancellationToken()
        with link.tokens_lock:
            link.tokens[request.request_id] = token
            if request.request_id in link.cancelled_early:
                link.cancelled_early.discard(request.request_id)
                token.cancel()
        done = 0
        cache_hit = False
        json_wire = wire_json_forced()

        def on_ledger(ledger: object) -> None:
            # Registered alongside the cancellation token: a claimSlices
            # for this request id (from whichever root runs the fan-out)
            # cedes unstarted trailing shards of exactly this run.
            with link.tokens_lock:
                link.ledgers[request.request_id] = ledger

        try:
            for emission in self.worker.sketch_partials(
                str(args["dataset"]), sketch, lineage, token,
                on_ledger=on_ledger,
            ):
                done = emission.shards_done
                cache_hit = cache_hit or emission.cache_hit
                if json_wire:
                    # Differential baseline: the historical pure-JSON
                    # partial (summary rendered as the UI payload).
                    yield RpcReply(
                        request.request_id,
                        "partial",
                        progress=0.0,
                        payload={
                            "summary": summary_to_json(emission.summary),
                            "shardsDone": emission.shards_done,
                            "bytes": emission.bytes,
                            "cacheHit": emission.cache_hit,
                        },
                    )
                    continue
                # Hot path: the summary travels as its own Encoder
                # format in a binary attachment; the JSON header keeps
                # only the stream metadata plus the payload type tag.
                partial = RpcReply(
                    request.request_id,
                    "partial",
                    progress=0.0,
                    payload={
                        "summaryType": summary_tag(emission.summary),
                        "shardsDone": emission.shards_done,
                        "bytes": emission.bytes,
                        "cacheHit": emission.cache_hit,
                    },
                )
                partial.attachment = summary_to_bytes(emission.summary)
                yield partial
            yield RpcReply(
                request.request_id,
                "complete",
                payload={
                    "shardsDone": done,
                    "cancelled": token.cancelled,
                    "cacheHit": cache_hit,
                },
            )
        finally:
            with link.tokens_lock:
                link.tokens.pop(request.request_id, None)
                link.ledgers.pop(request.request_id, None)

    # -- work stealing (the claim/stolen wire) ---------------------------
    def _claim_slices(self, request: RpcRequest, link: _RootLink) -> RpcReply:
        """Cede unstarted trailing shards of one in-flight sketch.

        The root (steal coordinator) names the sketch by its request id
        on this link; the ledger cancels a contiguous suffix of that
        run's leaf futures under its own lock, and the ceded shards
        travel back serialized — ready to be relayed to the thief.  No
        ledger (the run finished, never started, or was served from the
        memo) reads as "nothing to cede", never an error: an empty claim
        is the normal outcome of racing a finishing victim.
        """
        from repro.storage.columnar import table_to_bytes

        args = request.args
        target = int(args.get("requestId", -1))
        budget = max(0, int(args.get("budget", 0)))
        with link.tokens_lock:
            ledger = link.ledgers.get(target)
        parcels = ledger.cede(budget) if ledger is not None and budget else []
        json_wire = wire_json_forced()
        entries: list[dict] = []
        blobs: list[bytes] = []
        for parcel in parcels:
            shard = parcel.resolve()
            payload = table_to_bytes(shard)
            entry = {
                "globalIndex": parcel.global_index,
                "shardId": shard.shard_id,
            }
            if json_wire:
                entry["data"] = base64.b64encode(payload).decode("ascii")
            else:
                blobs.append(payload)
            entries.append(entry)
        reply = RpcReply(
            request.request_id, "complete", payload={"parcels": entries}
        )
        if blobs:
            enc = Encoder()
            enc.write_uvarint(len(blobs))
            for blob in blobs:
                enc.write_bytes(blob)
            reply.attachment = enc.to_bytes()
        return reply

    def _stolen_partial(self, request: RpcRequest) -> RpcReply:
        """Summarize shard slices stolen from a straggling peer.

        The root relays the victim's ceded shards here; per-shard
        summaries (never pre-merged — the root folds them in global
        shard order) travel back the same way sketch partials do.
        """
        args = request.args
        sketch = sketch_from_json(args["sketch"])
        items = args.get("parcels") or []
        blobs: list[bytes] | None = None
        if request.attachment is not None:
            dec = Decoder(request.attachment)
            blobs = [dec.read_bytes() for _ in range(dec.read_uvarint())]
            if len(blobs) != len(items):
                raise ProtocolError(
                    f"stolenPartial attachment carries {len(blobs)} payloads "
                    f"for {len(items)} parcel entries"
                )
        parcels: list[StolenParcel] = []
        for position, item in enumerate(items):
            payload = (
                blobs[position]
                if blobs is not None
                else base64.b64decode(str(item["data"]))
            )
            parcels.append(
                StolenParcel(
                    global_index=int(item["globalIndex"]),
                    payload=payload,
                    shard_id=str(item.get("shardId") or "") or None,
                )
            )
        summaries = self.worker.summarize_stolen(sketch, parcels) or []
        json_wire = wire_json_forced()
        entries: list[dict] = []
        out_blobs: list[bytes] = []
        for global_index, summary in summaries:
            entry: dict = {"globalIndex": global_index}
            if json_wire:
                entry["summary"] = summary_to_json(summary)
            else:
                out_blobs.append(summary_to_bytes(summary))
            entries.append(entry)
        reply = RpcReply(
            request.request_id, "complete", payload={"summaries": entries}
        )
        if out_blobs:
            enc = Encoder()
            enc.write_uvarint(len(out_blobs))
            for blob in out_blobs:
                enc.write_bytes(blob)
            reply.attachment = enc.to_bytes()
        return reply

    # -- the rebalance protocol (elastic fleets) -------------------------
    def _placement_payload(self) -> dict:
        """The ``placement`` RPC payload; lock-free attribute reads, so
        handlers already holding the placement lock can call it too."""
        placement = self._placement
        return {
            "name": self.worker.name,
            "index": None if placement is None else placement[0],
            "count": None if placement is None else placement[1],
            "version": self._version,
            "members": self._members,
            "retired": self._retired,
            # True while a commit is draining this worker's in-flight
            # ops: tells repairing roots "the initiator is still here —
            # do not finish its rebalance out from under it".
            "rebalancing": self._rebalance_pending,
        }

    def _transfer_shards(self, request: RpcRequest) -> RpcReply:
        """Push this worker's moved shard slices to their new owners.

        The root computed the move plan from inventories; this worker
        serializes each named shard (in-memory hvc payload) and streams
        it to the target daemon's ``adoptShards`` staging area.  Shards
        that went cold since the inventory are reported ``missing`` —
        the new owner's commit will find its slice incomplete, drop it,
        and redo-log replay rebuilds it on first use (§5.7 fallback).
        """
        from repro.storage.columnar import table_to_bytes

        args = request.args
        dataset_id = str(args["dataset"])
        target_version = int(args["targetVersion"])
        with self._placement_lock:
            placement = self._placement
        if placement is None:
            raise PlacementError(
                f"worker {self.worker.name} is unplaced; nothing to transfer"
            )
        index, count = placement
        shards = self.worker.store.get(dataset_id)
        json_wire = wire_json_forced()
        moved = 0
        missing: list[int] = []
        for move in args.get("moves") or []:
            target = str(move["target"])
            wanted = [int(g) for g in move.get("globalIndices") or []]
            batch: list[dict] = []
            blobs: list[bytes] = []
            batch_bytes = 0
            for g in wanted:
                local = (g - index) // count
                if (
                    shards is None
                    or g % count != index
                    or not 0 <= local < len(shards)
                ):
                    missing.append(g)
                    continue
                shard = shards[local]
                payload = table_to_bytes(shard)
                entry = {"globalIndex": g, "shardId": shard.shard_id}
                if json_wire:
                    # Differential baseline: hvc bytes as base64 text
                    # inside the JSON envelope (the historical wire).
                    entry["data"] = base64.b64encode(payload).decode("ascii")
                else:
                    blobs.append(payload)
                batch.append(entry)
                batch_bytes += len(payload)
                if batch_bytes >= _TRANSFER_BATCH_BYTES:
                    moved += self._push_adopts(
                        target, dataset_id, target_version, batch, blobs
                    )
                    batch, blobs, batch_bytes = [], [], 0
            if batch:
                moved += self._push_adopts(
                    target, dataset_id, target_version, batch, blobs
                )
        self.shards_transferred += moved
        return RpcReply(
            request.request_id,
            "ack",
            payload={"moved": moved, "missing": missing},
        )

    def _push_adopts(
        self,
        target: str,
        dataset_id: str,
        version: int,
        batch: list[dict],
        blobs: list[bytes] | None = None,
    ) -> int:
        """One worker-to-worker push: dial the target daemon, hand it a
        batch of serialized shards, return how many it staged.

        ``blobs`` (one raw hvc payload per batch entry, in order) travel
        as a binary attachment; on the JSON wire the batch entries carry
        base64 ``data`` instead and ``blobs`` is empty.
        """
        host, port = parse_address(target)
        sock = socket.create_connection((host, port), timeout=30.0)
        sock.settimeout(120.0)
        try:
            wfile = sock.makefile("wb")
            rfile = sock.makefile("rb")
            where = f"transfer target {target}"

            def call(
                request_id: int,
                method: str,
                args: dict,
                attachment: bytes | None = None,
            ) -> RpcReply:
                reply = call_once(
                    rfile,
                    wfile,
                    request_id,
                    method,
                    args,
                    where=where,
                    attachment=attachment,
                )
                if reply.kind == "error":
                    raise EngineError(
                        f"{where}: [{reply.code}] {reply.error}"
                    )
                return reply

            attachment = None
            if blobs:
                enc = Encoder()
                enc.write_uvarint(len(blobs))
                for blob in blobs:
                    enc.write_bytes(blob)
                attachment = enc.to_bytes()
            call(0, "hello", {})
            reply = call(
                1,
                "adoptShards",
                {
                    "dataset": dataset_id,
                    "targetVersion": version,
                    "shards": batch,
                },
                attachment=attachment,
            )
            return int(reply.payload.get("staged", 0))
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _adopt_shards(self, request: RpcRequest) -> RpcReply:
        """Stage shards streamed in by a sibling worker for a pending
        rebalance; ``rebalanceCommit`` folds them into the store."""
        from repro.storage.columnar import table_from_bytes

        # Opportunistic reclamation: staging from an aborted rebalance
        # must go even on daemons running with the periodic sweep
        # disabled, and a new transfer is the natural moment.
        self._sweep_stale_staging()
        args = request.args
        dataset_id = str(args["dataset"])
        version = int(args["targetVersion"])
        items = args.get("shards") or []
        blobs: list[bytes] | None = None
        if request.attachment is not None:
            dec = Decoder(request.attachment)
            blobs = [dec.read_bytes() for _ in range(dec.read_uvarint())]
            if len(blobs) != len(items):
                raise ProtocolError(
                    f"adoptShards attachment carries {len(blobs)} payloads "
                    f"for {len(items)} shard entries"
                )
        staged = 0
        for position, item in enumerate(items):
            payload = (
                blobs[position]
                if blobs is not None
                else base64.b64decode(str(item["data"]))
            )
            table = table_from_bytes(
                payload,
                shard_id=str(item.get("shardId") or f"shard-{item['globalIndex']}"),
            )
            with self._ops_cv:
                self._staged_at.setdefault(version, time.monotonic())
                bucket = self._staged.setdefault(version, {}).setdefault(
                    dataset_id, {}
                )
                bucket[int(item["globalIndex"])] = table
            staged += 1
        self.shards_adopted += staged
        return RpcReply(
            request.request_id, "ack", payload={"staged": staged}
        )

    def _drain_ops_locked(self, what: str, timeout: float) -> None:
        """Wait (holding ``_ops_cv``) for in-flight dataset ops to finish
        — the "in-flight sketches drain on the old placement" half of the
        rebalance contract."""
        deadline = time.monotonic() + timeout
        while self._dataset_ops:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise PlacementError(
                    f"{self._dataset_ops} dataset op(s) still in flight "
                    f"after {timeout:.0f}s; {what} aborted"
                )
            self._ops_cv.wait(timeout=min(remaining, 0.5))

    def _rebalance_commit(self, request: RpcRequest) -> RpcReply:
        """Adopt a new slice assignment: drain in-flight ops, re-key the
        store (kept + staged shards, ascending global order), bump the
        placement version.  Idempotent for the already-committed version
        so an interrupted rebalance can simply be re-run."""
        args = request.args
        version = int(args["version"])
        index = int(args["index"])
        count = int(args["count"])
        members = [str(m) for m in args.get("members") or []] or None
        totals = {
            str(k): int(v) for k, v in (args.get("datasets") or {}).items()
        }
        drain_timeout = float(args.get("drainTimeout", 60.0))
        with self._ops_cv:
            if (
                version == self._version
                and self._placement == (index, count)
                and not self._retired
            ):
                return RpcReply(
                    request.request_id,
                    "ack",
                    payload={"version": version, "idempotent": True},
                )
            if self._placement is not None and version <= self._version:
                # Versions are monotonic; an older commit is a replay of
                # a rebalance this worker already moved past.  Anything
                # *newer* is accepted — including a skip-ahead from a
                # repair pass healing an interrupted rebalance.
                raise PlacementError(
                    f"worker {self.worker.name} is at placement version "
                    f"{self._version}; cannot commit version {version}"
                )
            self._rebalance_pending = True
            try:
                self._drain_ops_locked("rebalance commit", drain_timeout)
                staged = self._staged.pop(version, {})
                self._staged.clear()  # older targets are dead
                self._staged_at.clear()
                kept = self.worker.rebalance_store(
                    index, count, totals, staged  # type: ignore[arg-type]
                )
                interval = args.get("aggregationInterval")
                self.worker.configure(
                    index,
                    count,
                    float(interval)
                    if interval is not None
                    else self.worker.aggregation_interval,
                )
                self._placement = (index, count)
                self._version = version
                self._members = members
                self._retired = False
            finally:
                self._rebalance_pending = False
                self._ops_cv.notify_all()
        return RpcReply(
            request.request_id,
            "ack",
            payload={"version": version, "kept": kept},
        )

    def _retire(self, request: RpcRequest) -> RpcReply:
        """Leave the fleet (shrink): drain in-flight ops, drop all soft
        state, and report the successor membership to stale roots."""
        args = request.args
        version = int(args["version"])
        members = [str(m) for m in args.get("members") or []] or None
        drain_timeout = float(args.get("drainTimeout", 60.0))
        with self._ops_cv:
            if self._retired and version <= self._version:
                return RpcReply(
                    request.request_id,
                    "ack",
                    payload={"version": self._version, "idempotent": True},
                )
            if self._placement is not None and version <= self._version:
                raise PlacementError(
                    f"worker {self.worker.name} is at placement version "
                    f"{self._version}; cannot retire at version {version}"
                )
            self._rebalance_pending = True
            try:
                self._drain_ops_locked("retire", drain_timeout)
                self._staged.clear()
                self._staged_at.clear()
                self.worker.store.clear()
                self.worker.memo.clear()
                self._placement = None
                self._version = version
                self._members = members
                self._retired = True
            finally:
                self._rebalance_pending = False
                self._ops_cv.notify_all()
        return RpcReply(
            request.request_id, "ack", payload={"version": version}
        )


# ---------------------------------------------------------------------------
# Root side: channel + proxy
# ---------------------------------------------------------------------------
def _raise_for_error_reply(name: str, reply: RpcReply) -> None:
    """Map a worker's error envelope to the root-side exception class."""
    if reply.code in ("connection", "worker_unavailable", "worker_draining"):
        raise WorkerUnavailableError(f"worker {name}: {reply.error}")
    if reply.code == "stale_placement":
        raise StalePlacementError(f"worker {name}: {reply.error}")
    raise EngineError(f"worker {name}: [{reply.code}] {reply.error}")


class _WorkerChannel:
    """One framed connection to a worker, demultiplexed by request id."""

    def __init__(self, sock: socket.socket, name: str):
        self.name = name
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        self._ids = itertools.count(1)
        self._pending: dict[int, "queue.Queue[RpcReply]"] = {}
        self._lock = threading.Lock()
        self.dead = threading.Event()
        # repro: ignore[C002] — reply-demux thread; contexts are stamped per request in submit(), replies carry none
        self._reader = threading.Thread(
            target=self._reader_loop, name=f"{name}-reader", daemon=True
        )
        self._reader.start()

    def submit(
        self,
        method: str,
        args: dict,
        attachment: bytes | None = None,
    ) -> tuple[int, "queue.Queue[RpcReply]"]:
        request = RpcRequest(next(self._ids), "", method, args)
        request.attachment = attachment
        # Auto-propagation: any RPC issued while the calling thread is
        # inside a traced span carries a child context on its envelope,
        # so every root→worker hop parents correctly with zero changes
        # at the call sites.  Untraced threads stamp nothing and the
        # wire bytes stay identical to the pre-tracing format.
        ctx = current_context()
        if ctx is not None:
            request.trace = ctx.child().to_json()
        payload = request.to_frame()
        replies: "queue.Queue[RpcReply]" = queue.Queue()
        with self._lock:
            if self.dead.is_set():
                raise WorkerUnavailableError(
                    f"worker {self.name} connection is closed"
                )
            self._pending[request.request_id] = replies
            try:
                write_frame(self._wfile, payload)
            except (ConnectionError, OSError, ValueError) as exc:
                self._pending.pop(request.request_id, None)
                self.dead.set()
                raise WorkerUnavailableError(
                    f"worker {self.name} is unreachable: {exc}"
                ) from exc
        REGISTRY.counter(
            "rpc.worker.bytes_sent", "request bytes on the root→worker wire"
        ).inc(len(payload))
        return request.request_id, replies

    def call(
        self,
        method: str,
        args: dict,
        timeout: float = 60.0,
        attachment: bytes | None = None,
    ) -> RpcReply:
        """One request, blocking for its terminal reply."""
        _, replies = self.submit(method, args, attachment=attachment)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerUnavailableError(
                    f"worker {self.name} did not answer {method!r} "
                    f"within {timeout:.0f}s"
                )
            try:
                reply = replies.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                continue
            if reply.kind == "error":
                _raise_for_error_reply(self.name, reply)
            if reply.kind in _TERMINAL:
                return reply

    def _reader_loop(self) -> None:
        received = REGISTRY.counter(
            "rpc.worker.bytes_received",
            "reply bytes on the root→worker wire",
        )
        try:
            while True:
                frame = read_frame_blocking(self._rfile, error=FrameError)
                if frame is None:
                    break
                received.inc(len(frame))
                reply = RpcReply.from_frame(frame)
                with self._lock:
                    replies = self._pending.get(reply.request_id)
                    if replies is not None and reply.kind in _TERMINAL:
                        del self._pending[reply.request_id]
                if replies is not None:
                    replies.put(reply)
        except (FrameError, OSError, ValueError, SerializationError):
            pass
        finally:
            self.dead.set()
            with self._lock:
                orphans = list(self._pending.items())
                self._pending.clear()
            for request_id, replies in orphans:
                replies.put(
                    RpcReply(
                        request_id,
                        "error",
                        error=f"connection to worker {self.name} lost",
                        code="connection",
                    )
                )

    def close(self) -> None:
        self.dead.set()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass
        self._reader.join(timeout=5.0)


class _RemoteStealLedger:
    """The root's claim handle onto one in-flight remote sketch.

    ``cede`` is one synchronous ``claimSlices`` RPC; the daemon cancels
    unstarted trailing leaves under its own ledger lock and returns the
    ceded shards serialized.  Every failure reads as "nothing ceded",
    which is always safe: an error reply means the daemon ceded nothing,
    and a dead connection kills the victim's whole sketch stream — its
    revival restart recomputes every shard regardless.
    """

    def __init__(self, proxy: "RemoteWorkerProxy", request_id: int):
        self._proxy = proxy
        self._request_id = request_id

    def cede(self, budget: int) -> "list[StolenParcel]":
        try:
            reply = self._proxy.channel.call(
                "claimSlices",
                {"requestId": self._request_id, "budget": int(budget)},
                timeout=self._proxy.request_timeout,
            )
        except (WorkerUnavailableError, EngineError):
            return []
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        items = payload.get("parcels") or []
        blobs: list[bytes] | None = None
        if reply.attachment is not None:
            dec = Decoder(reply.attachment)
            blobs = [dec.read_bytes() for _ in range(dec.read_uvarint())]
        parcels: list[StolenParcel] = []
        for position, item in enumerate(items):
            data = (
                blobs[position]
                if blobs is not None and position < len(blobs)
                else base64.b64decode(str(item["data"]))
            )
            parcels.append(
                StolenParcel(
                    global_index=int(item["globalIndex"]),
                    payload=data,
                    shard_id=str(item.get("shardId") or "") or None,
                )
            )
        return parcels


class RemoteWorkerProxy(WorkerProtocol):
    """The root's handle on one worker process (drop-in for ``Worker``)."""

    def __init__(
        self,
        name: str,
        channel: _WorkerChannel,
        cores: int,
        process: "subprocess.Popen | None" = None,
        address: tuple[str, int] | None = None,
        request_timeout: float = 300.0,
    ):
        self.name = name
        self.channel = channel
        self.cores = cores
        self.process = process
        self.address = address
        self.request_timeout = request_timeout
        self.index = 0
        self.count = 1
        self.aggregation_interval = 0.1
        #: The placement version this root believes the fleet is at;
        #: stamped onto every dataset RPC so the worker can reject a
        #: stale root after a rebalance (elastic fleets).
        self.placement_version = 0
        #: Fleet membership (host:port, slice order) told to the worker
        #: on configure so any member can report it back after a resize.
        self.fleet_members: "list[str] | None" = None
        #: Administrative roots (the fleet CLI) set this so attaching —
        #: and rebalancing — never rewrites the serving tier's
        #: aggregation cadence with their own default.
        self.preserve_cadence = False

    def _versioned(self, args: dict) -> dict:
        args["placementVersion"] = self.placement_version
        return args

    @property
    def alive(self) -> bool:
        if self.channel.dead.is_set():
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    # -- WorkerProtocol -------------------------------------------------
    def configure(
        self, index: int, count: int, aggregation_interval: float
    ) -> None:
        self.index = index
        self.count = count
        self.aggregation_interval = aggregation_interval
        self.channel.call(
            "configure",
            {
                "index": index,
                "count": count,
                "aggregationInterval": (
                    None if self.preserve_cadence else aggregation_interval
                ),
                "placementVersion": self.placement_version,
                "members": self.fleet_members,
            },
            timeout=self.request_timeout,
        )

    def load_source(self, dataset_id: str, source: DataSource) -> int:
        reply = self.channel.call(
            "load",
            self._versioned(
                {"dataset": dataset_id, "source": source_to_json(source)}
            ),
            timeout=self.request_timeout,
        )
        return int(reply.payload["shards"])

    def ensure(self, dataset_id: str, lineage: list) -> int:
        reply = self.channel.call(
            "ensure",
            self._versioned(
                {"dataset": dataset_id, "lineage": lineage_to_json(lineage)}
            ),
            timeout=self.request_timeout,
        )
        return int(reply.payload["shards"])

    def shard_rows(self, dataset_id: str, lineage: list) -> int:
        reply = self.channel.call(
            "rows",
            self._versioned(
                {"dataset": dataset_id, "lineage": lineage_to_json(lineage)}
            ),
            timeout=self.request_timeout,
        )
        return int(reply.payload["rows"])

    def shard_schema(self, dataset_id: str, lineage: list) -> Schema | None:
        reply = self.channel.call(
            "schema",
            self._versioned(
                {"dataset": dataset_id, "lineage": lineage_to_json(lineage)}
            ),
            timeout=self.request_timeout,
        )
        columns = reply.payload["columns"]
        if columns is None:
            return None
        return Schema(ColumnDescription.from_json(c) for c in columns)

    def sketch_partials(
        self,
        dataset_id: str,
        sketch,
        lineage: list,
        token: CancellationToken | None = None,
        on_ledger=None,
    ) -> Iterator[WorkerEmission]:
        request_id, replies = self.channel.submit(
            "sketch",
            self._versioned(
                {
                    "dataset": dataset_id,
                    "sketch": sketch_to_json(sketch),
                    "lineage": lineage_to_json(lineage),
                }
            ),
        )
        if on_ledger is not None:
            # The handle is valid immediately: a claim that reaches the
            # daemon before the run registers its ledger (or after it
            # finished) simply cedes nothing.
            on_ledger(_RemoteStealLedger(self, request_id))
        cancel_sent = False
        deadline = time.monotonic() + self.request_timeout
        while True:
            if token is not None and token.cancelled and not cancel_sent:
                cancel_sent = True
                try:
                    self.channel.submit("cancel", {"requestId": request_id})
                except WorkerUnavailableError:
                    pass  # the dead-channel path below reports it
            try:
                reply = replies.get(timeout=0.05)
            except queue.Empty:
                if self.channel.dead.is_set():
                    raise WorkerUnavailableError(
                        f"worker {self.name} died mid-sketch"
                    )
                if time.monotonic() > deadline:
                    raise WorkerUnavailableError(
                        f"worker {self.name} stalled mid-sketch "
                        f"(> {self.request_timeout:.0f}s)"
                    )
                continue
            deadline = time.monotonic() + self.request_timeout
            if reply.kind == "partial":
                payload = reply.payload
                if reply.attachment is not None:
                    summary = summary_from_bytes(reply.attachment)
                else:
                    summary = summary_from_json(payload["summary"])
                yield WorkerEmission(
                    summary,
                    int(payload["shardsDone"]),
                    int(payload["bytes"]),
                    cache_hit=bool(payload.get("cacheHit", False)),
                )
            elif reply.kind == "complete":
                return
            elif reply.kind == "error":
                _raise_for_error_reply(self.name, reply)
            else:  # cancelled / ack — treat as stream end
                return

    def evict(self, dataset_id: str) -> None:
        self.channel.call(
            "evict",
            self._versioned({"dataset": dataset_id}),
            timeout=self.request_timeout,
        )

    def summarize_stolen(
        self, sketch, parcels: "list[StolenParcel]"
    ) -> "list[tuple[int, object]]":
        """Relay a victim's ceded shards to this daemon for summarizing.

        The parcels arrived from ``claimSlices`` already serialized, so
        the root forwards the bytes untouched; per-shard summaries come
        back individually, exactly like sketch partials travel.
        """
        if not parcels:
            return []
        from repro.storage.columnar import table_to_bytes

        json_wire = wire_json_forced()
        entries: list[dict] = []
        blobs: list[bytes] = []
        for parcel in parcels:
            payload = parcel.payload
            if payload is None:
                payload = table_to_bytes(parcel.resolve())
            entry: dict = {
                "globalIndex": parcel.global_index,
                "shardId": parcel.shard_id,
            }
            if json_wire:
                entry["data"] = base64.b64encode(payload).decode("ascii")
            else:
                blobs.append(payload)
            entries.append(entry)
        attachment = None
        if blobs:
            enc = Encoder()
            enc.write_uvarint(len(blobs))
            for blob in blobs:
                enc.write_bytes(blob)
            attachment = enc.to_bytes()
        reply = self.channel.call(
            "stolenPartial",
            {"sketch": sketch_to_json(sketch), "parcels": entries},
            timeout=self.request_timeout,
            attachment=attachment,
        )
        payload_dict = reply.payload if isinstance(reply.payload, dict) else {}
        items = payload_dict.get("summaries") or []
        in_blobs: list[bytes] | None = None
        if reply.attachment is not None:
            dec = Decoder(reply.attachment)
            in_blobs = [dec.read_bytes() for _ in range(dec.read_uvarint())]
        results: "list[tuple[int, object]]" = []
        for position, item in enumerate(items):
            if in_blobs is not None and position < len(in_blobs):
                summary = summary_from_bytes(in_blobs[position])
            else:
                summary = summary_from_json(item["summary"])
            results.append((int(item["globalIndex"]), summary))
        return results

    def export_hot_entries(self, budget_bytes: int) -> list[dict]:
        reply = self.channel.call(
            "exportHotEntries",
            {"budgetBytes": int(budget_bytes)},
            timeout=self.request_timeout,
        )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        entries = payload.get("entries")
        return entries if isinstance(entries, list) else []

    def import_entries(self, entries: list[dict]) -> int:
        reply = self.channel.call(
            "importEntries",
            {"entries": entries},
            timeout=self.request_timeout,
        )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        return int(payload.get("warmed", 0))

    def crash(self) -> None:
        self.channel.call("crash", {}, timeout=self.request_timeout)

    def query_placement(self) -> "ShardPlacement | None":
        """The worker's sticky slice assignment, or None if unplaced."""
        return ShardPlacement.from_json(self.query_placement_info())

    def query_placement_info(self) -> dict:
        """The raw ``placement`` payload: slice, version, membership,
        retired flag — everything a root needs to resync after a
        rebalance it did not initiate."""
        reply = self.channel.call(
            "placement", {}, timeout=self.request_timeout
        )
        return reply.payload if isinstance(reply.payload, dict) else {}

    # -- the rebalance protocol (root side) ------------------------------
    def inventory(self) -> dict[str, dict]:
        reply = self.channel.call(
            "inventory", {}, timeout=self.request_timeout
        )
        payload = reply.payload if isinstance(reply.payload, dict) else {}
        return {
            str(k): dict(v)
            for k, v in (payload.get("datasets") or {}).items()
            if isinstance(v, dict)
        }

    def transfer_shards(
        self, dataset_id: str, moves: list[dict], target_version: int
    ) -> dict:
        """Ask this worker to push moved shard slices to their new
        owners; ``moves`` is ``[{"target": "host:port", "globalIndices":
        [...]}, ...]``.  Returns the worker's ``{moved, missing}``."""
        reply = self.channel.call(
            "transferShards",
            {
                "dataset": dataset_id,
                "moves": moves,
                "targetVersion": target_version,
            },
            timeout=self.request_timeout,
        )
        return reply.payload if isinstance(reply.payload, dict) else {}

    def rebalance_commit(
        self,
        version: int,
        index: int,
        count: int,
        members: "list[str] | None",
        totals: dict[str, int],
        drain_timeout: float = 60.0,
        aggregation_interval: float | None = None,
    ) -> dict:
        reply = self.channel.call(
            "rebalanceCommit",
            {
                "version": version,
                "index": index,
                "count": count,
                "members": members,
                "datasets": totals,
                "drainTimeout": drain_timeout,
                "aggregationInterval": aggregation_interval,
            },
            timeout=max(self.request_timeout, drain_timeout + 30.0),
        )
        self.index = index
        self.count = count
        self.placement_version = version
        return reply.payload if isinstance(reply.payload, dict) else {}

    def retire(
        self,
        version: int,
        members: "list[str] | None",
        drain_timeout: float = 60.0,
    ) -> dict:
        reply = self.channel.call(
            "retire",
            {
                "version": version,
                "members": members,
                "drainTimeout": drain_timeout,
            },
            timeout=max(self.request_timeout, drain_timeout + 30.0),
        )
        return reply.payload if isinstance(reply.payload, dict) else {}

    # -- liveness / lifecycle -------------------------------------------
    def ping(self, timeout: float = 5.0) -> bool:
        try:
            reply = self.channel.call("ping", {}, timeout=timeout)
            return bool(reply.payload.get("pong"))
        except (WorkerUnavailableError, EngineError):
            return False

    def stats(self) -> dict:
        return self.channel.call("stats", {}, timeout=self.request_timeout).payload

    def cache_stats(self) -> dict:
        """The daemon-side cache counters (store + memo + sweep totals)."""
        return self.channel.call(
            "cacheStats", {}, timeout=self.request_timeout
        ).payload

    def sweep_remote_caches(self) -> int:
        """Trigger an on-demand TTL sweep on the worker daemon."""
        reply = self.channel.call(
            "sweepCaches", {}, timeout=self.request_timeout
        )
        return int(reply.payload["purged"])

    def metrics_snapshot(self) -> dict:
        """The daemon's live metrics (queue depth, hit rates, registry)."""
        payload = self.channel.call(
            "metricsSnapshot", {}, timeout=self.request_timeout
        ).payload
        return payload if isinstance(payload, dict) else {"name": self.name}

    def trace_dump(self, trace_id: str | None = None) -> list[dict]:
        """Fetch the daemon's span ring buffer (optionally one trace)."""
        args: dict = {} if trace_id is None else {"traceId": trace_id}
        payload = self.channel.call(
            "traceDump", args, timeout=self.request_timeout
        ).payload
        spans = payload.get("spans") if isinstance(payload, dict) else None
        return spans if isinstance(spans, list) else []

    def kill_process(self, sig: int = signal.SIGKILL) -> None:
        """Hard-kill the worker process (chaos testing)."""
        if self.process is None:
            raise EngineError(f"worker {self.name} was not spawned by us")
        self.process.send_signal(sig)

    def close(self) -> None:
        # Only a worker we spawned is ours to shut down.  A pre-started
        # daemon is shared fleet infrastructure: other roots may be
        # serving through it right now, so detaching just closes this
        # root's connection (the daemon outlives any particular root).
        if self.process is not None and not self.channel.dead.is_set():
            try:
                self.channel.call("shutdown", {}, timeout=2.0)
            except (WorkerUnavailableError, EngineError):
                pass
        self.channel.close()
        if self.process is not None:
            try:
                self.process.terminate()
                self.process.wait(timeout=5.0)
            except (OSError, subprocess.TimeoutExpired):
                try:
                    self.process.kill()
                    self.process.wait(timeout=5.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return f"<RemoteWorkerProxy {self.name} cores={self.cores} {state}>"


# ---------------------------------------------------------------------------
# ProcessCluster
# ---------------------------------------------------------------------------
def _worker_command(
    python: str, connect: tuple[str, int], name: str, cores: int
) -> list[str]:
    host, port = connect
    return [
        python,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"{host}:{port}",
        "--name",
        name,
        "--cores",
        str(cores),
    ]


def _spawn_env() -> dict:
    """The child's environment, with this package importable."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    return env


class ProcessCluster(Cluster):
    """A cluster whose workers are separate OS processes (§5.2).

    Two construction modes:

    * ``ProcessCluster(num_workers=4)`` — spawn ``repro worker``
      subprocesses that dial back into the root; the default zero-config
      path (``repro serve --spawn``).
    * ``ProcessCluster(addresses=[(host, port), ...])`` — attach to
      pre-started ``repro worker --listen`` daemons, one per server.

    ``respawn=True`` (default, spawn mode) revives a worker that dies
    mid-query: the subprocess is relaunched, reconfigured, and the sketch
    stream re-run; redo-log lineage rebuilds its soft state (§5.8).
    """

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: "int | Sequence[int]" = 2,
        aggregation_interval: float = 0.1,
        addresses: "list[tuple[str, int]] | None" = None,
        python: str | None = None,
        startup_timeout: float = 30.0,
        request_timeout: float = 300.0,
        respawn: bool = True,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
        preserve_cadence: bool = False,
    ):
        self._python = python or sys.executable
        self._startup_timeout = startup_timeout
        self._request_timeout = request_timeout
        self._respawn = respawn
        #: Administrative attaches (the fleet CLI) must not rewrite the
        #: serving tier's worker cadence with this cluster's default.
        self._preserve_cadence = preserve_cadence
        self._revive_lock = threading.Lock()
        self._resync_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._addresses = list(addresses) if addresses is not None else None
        #: Proxies dropped from the placement by a resize/resync, with
        #: their detach times.  Their connections stay open so in-flight
        #: streams admitted under the old placement can drain, then are
        #: pruned after a grace period (a long-lived root riding many
        #: resizes must not accumulate dead sockets and reader threads).
        self._detached: "list[tuple[float, RemoteWorkerProxy]]" = []
        workers: list[RemoteWorkerProxy] = []
        try:
            if self._addresses is None:
                self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                self._listener.bind(("127.0.0.1", 0))
                self._listener.listen(max(num_workers, 4))
                self._env = _spawn_env()
                # A sequence gives each spawned worker its own core
                # count — chaos and steal tests build deliberately
                # skewed fleets this way (a 1-core straggler next to a
                # 4-core thief).  Respawn keeps the skew: each proxy
                # remembers its own ``cores``.
                if isinstance(cores_per_worker, int):
                    core_plan = [cores_per_worker] * num_workers
                else:
                    core_plan = [int(c) for c in cores_per_worker]
                    if len(core_plan) != num_workers:
                        raise ValueError(
                            f"cores_per_worker has {len(core_plan)} "
                            f"entries for {num_workers} workers"
                        )
                for i, cores in enumerate(core_plan):
                    workers.append(self._spawn_worker(i, cores))
            else:
                for host, port in self._addresses:
                    workers.append(self._dial_worker(host, port))
                workers = self._agree_placement(workers)
        except BaseException:
            for proxy in workers:
                proxy.close()
            if self._listener is not None:
                self._listener.close()
            raise
        super().__init__(
            aggregation_interval=aggregation_interval,
            cache_entries=cache_entries,
            cache_ttl_seconds=cache_ttl_seconds,
            workers=workers,
        )

    # -- attachment ------------------------------------------------------
    def _spawn_worker(self, index: int, cores: int) -> RemoteWorkerProxy:
        assert self._listener is not None
        host, port = self._listener.getsockname()[:2]
        name = f"worker-{index}"
        process = subprocess.Popen(
            _worker_command(self._python, (host, port), name, cores),
            env=self._env,
            stdout=subprocess.DEVNULL,
        )
        try:
            self._listener.settimeout(self._startup_timeout)
            while True:
                sock, _ = self._listener.accept()
                proxy = self._handshake(sock, process)
                if proxy is not None:
                    return proxy
        except socket.timeout:
            process.kill()
            raise EngineError(
                f"worker {name} did not attach within "
                f"{self._startup_timeout:.0f}s"
            ) from None
        finally:
            self._listener.settimeout(None)

    def _handshake(
        self, sock: socket.socket, process: "subprocess.Popen | None"
    ) -> RemoteWorkerProxy | None:
        """Read the worker's hello, ack it, wrap the socket in a channel."""
        sock.settimeout(self._startup_timeout)
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")
        try:
            frame = read_frame_blocking(rfile, error=FrameError)
            if frame is None:
                sock.close()
                return None
            hello = RpcRequest.from_json(frame.decode("utf-8"))
            if hello.method != "hello":
                sock.close()
                return None
            write_frame(
                wfile, RpcReply(hello.request_id, "ack").to_json().encode("utf-8")
            )
        except (FrameError, ProtocolError, OSError, ValueError):
            sock.close()
            return None
        sock.settimeout(None)
        name = str(hello.args.get("name", "worker"))
        cores = int(hello.args.get("cores", 1))
        proxy = RemoteWorkerProxy(
            name,
            _WorkerChannel(sock, name),
            cores,
            process=process,
            request_timeout=self._request_timeout,
        )
        proxy.preserve_cadence = self._preserve_cadence
        return proxy

    def _agree_placement(
        self, proxies: "list[RemoteWorkerProxy]"
    ) -> "list[RemoteWorkerProxy]":
        """Order attached workers by the fleet's agreed slice assignment.

        Workers report their sticky placement; a fresh fleet gets the
        canonical (address-sorted) assignment, a placed fleet is adopted
        verbatim.  Every root attaching to the same daemons therefore
        configures the same worker with the same slice index — the
        byte-for-byte agreement the multi-root service tier needs (the
        ``configure`` calls in ``Cluster.__init__`` then match each
        worker's pinned placement instead of fighting it).

        A *partially* placed fleet is a transient state — another root is
        pinning workers one by one at this very moment — so that case is
        re-queried briefly instead of failing the attach.  A fleet that
        *resized* since the attach list was written reports its current
        membership, which is adopted (new members dialed, departed ones
        detached) before agreement — an operator's stale fleet file still
        attaches to the fleet as it is now.
        """
        assert self._addresses is not None
        deadline = time.monotonic() + min(self._startup_timeout, 10.0)
        proxies, version = self._sync_fleet(proxies, deadline)
        self.placement_version = version  # repro: ignore[C001] — attach-time agreement; the cluster is not yet shared with streams or the resync path
        members = [format_address(p.address) for p in proxies if p.address]
        self._addresses = [p.address for p in proxies if p.address]  # repro: ignore[C001] — attach-time agreement; the cluster is not yet shared
        for index, proxy in enumerate(proxies):
            proxy.placement_version = version
            proxy.fleet_members = members
        return proxies

    def _detach_proxy(self, proxy: "RemoteWorkerProxy") -> None:
        """Drop a proxy from the placement without killing streams that
        are still draining on it; closed after the grace period."""
        self._prune_detached()
        self._detached.append((time.monotonic(), proxy))

    def _prune_detached(self) -> None:
        """Close detached proxies whose drain grace has passed.  Any
        stream admitted under the old placement finishes well inside one
        request timeout, after which the connection is just a leak."""
        grace = max(self._request_timeout, 60.0)
        now = time.monotonic()
        keep: "list[tuple[float, RemoteWorkerProxy]]" = []
        for stamped, proxy in self._detached:
            if now - stamped > grace:
                proxy.close()
            else:
                keep.append((stamped, proxy))
        self._detached = keep

    def _sync_fleet(
        self,
        proxies: "list[RemoteWorkerProxy]",
        deadline: float,
        min_version: int | None = None,
    ) -> "tuple[list[RemoteWorkerProxy], int]":
        """Reconcile ``proxies`` with the fleet's reported placement.

        Adopts membership changes (dialing joined members, detaching
        departed ones), retries transient states (mid-rebalance mixed
        versions, partial placement), and — with ``min_version`` — waits
        until the fleet settles at or above that placement version.
        Returns the proxies in slice order plus the agreed version.

        A fleet stuck at *mixed* versions (a rebalance interrupted after
        committing some members) is **repaired**: the committed members'
        report carries the full target assignment (members ordered by
        slice), so after a short grace period — in case the initiating
        root is still mid-commit — the stragglers are driven to the same
        idempotent commit (or retired, if the target membership excludes
        them).  Their shard stores drop to redo-log replay, which is the
        always-correct fallback.
        """
        mixed_since: float | None = None
        #: The newest membership report seen across the whole loop (not
        #: just this iteration): once a departed worker's farewell
        #: report has been acted on, that worker is detached and its
        #: report disappears — forgetting it would let the survivors'
        #: older membership flip the fleet right back.
        best_membership: dict | None = None
        while True:
            infos: list[dict] = []
            for proxy in proxies:
                try:
                    infos.append(proxy.query_placement_info())
                except (WorkerUnavailableError, EngineError):
                    infos.append({})
            # Membership adoption: the highest version that names
            # members wins (a retired worker's farewell report counts —
            # it names its successors).
            for info in infos:
                if not info.get("members"):
                    continue
                if best_membership is None or int(
                    info.get("version") or 0
                ) > int(best_membership.get("version") or 0):
                    best_membership = {
                        "version": int(info.get("version") or 0),
                        "members": [str(m) for m in info["members"]],
                    }
            if best_membership is not None:
                target = list(best_membership["members"])
                current = {
                    format_address(p.address): p
                    for p in proxies
                    if p.address is not None
                }
                if set(target) != set(current):
                    adopted: "list[RemoteWorkerProxy]" = []
                    for member in target:
                        if member in current:
                            adopted.append(current.pop(member))
                        else:
                            adopted.append(
                                self._dial_worker(*parse_address(member))
                            )
                    for leftover in current.values():
                        self._detach_proxy(leftover)
                    proxies = adopted
                    continue  # re-query the adopted membership
            # Interrupted-rebalance detection: any *placed* worker behind
            # the newest membership report is a straggler.  The newest
            # report may come from a committed survivor (mixed placed
            # versions) or from a retired worker's farewell (a shrink
            # that retired the departing workers but lost its survivor
            # commits) — both carry the full target assignment.
            stragglers = best_membership is not None and any(
                info.get("index") is not None
                and int(info.get("version") or 0)
                < int(best_membership["version"])
                for info in infos
            )
            if stragglers:
                # Agreement is meaningless while part of the fleet is on
                # an older assignment; give the original initiator a
                # grace period to finish its commits, then heal the
                # stragglers ourselves and re-query.
                now = time.monotonic()
                if mixed_since is None:
                    mixed_since = now
                elif now - mixed_since > 2.0:
                    self._repair_mixed_fleet(proxies, infos, best_membership)
                if now >= deadline:
                    raise PlacementError(
                        "the fleet has workers behind placement version "
                        f"{best_membership['version']} that could not be "
                        "healed in time; an interrupted rebalance needs "
                        "the affected daemons reachable"
                    )
                time.sleep(0.1)
                continue
            mixed_since = None
            reported = [ShardPlacement.from_json(info) for info in infos]
            addresses = [
                p.address if p.address is not None else ("?", 0)
                for p in proxies
            ]
            try:
                assignment = agree_placement(addresses, reported)
            except PlacementError as exc:
                if exc.retryable and time.monotonic() < deadline:
                    time.sleep(0.1)
                    continue
                raise
            placed = [p for p in reported if p is not None]
            version = placed[0].version if placed else 0
            if min_version is not None and version < min_version:
                if time.monotonic() < deadline:
                    time.sleep(0.1)
                    continue
                raise StalePlacementError(
                    f"fleet stayed at placement version {version}; "
                    f"expected at least {min_version}"
                )
            ordered: "list[RemoteWorkerProxy | None]" = [None] * len(proxies)
            for position, index in enumerate(assignment):
                ordered[index] = proxies[position]
            return [p for p in ordered if p is not None], version

    def _repair_mixed_fleet(
        self,
        proxies: "list[RemoteWorkerProxy]",
        infos: list[dict],
        target: dict,
    ) -> None:
        """Finish an interrupted rebalance: drive every straggler to the
        ``target`` assignment (the newest membership report seen — a
        committed survivor's, or a retired worker's farewell; members
        are ordered by slice index).  Best-effort and idempotent —
        racing the original initiator, or another repairing root, is
        harmless."""
        version = int(target.get("version") or 0)
        members = [str(m) for m in target["members"]]
        index_of = {member: i for i, member in enumerate(members)}
        for proxy, info in zip(proxies, infos):
            if not info or proxy.address is None:
                continue
            if info.get("rebalancing"):
                # The original initiator is draining/committing this
                # worker right now; finishing its rebalance with empty
                # totals would discard the shards it transferred.  Let
                # it finish — the next sync pass re-evaluates.
                continue
            if int(info.get("version") or 0) >= version and not (
                info.get("index") is None and not info.get("retired")
            ):
                continue  # already there (placed or properly retired)
            member = format_address(proxy.address)
            try:
                if member in index_of:
                    # No shard totals survive the interruption: the
                    # commit evicts the straggler's store and redo-log
                    # replay rebuilds it on first use (§5.7).  During an
                    # *attach* this cluster has no cadence yet (base
                    # __init__ has not run); None keeps the worker's own.
                    proxy.rebalance_commit(
                        version,
                        index_of[member],
                        len(members),
                        members,
                        {},
                        # None keeps the worker's own cadence: during an
                        # attach this cluster has none yet, and a repair
                        # pass is never the right writer of tier tuning.
                        aggregation_interval=None,
                    )
                else:
                    proxy.retire(version, members)
            except (PlacementError, WorkerUnavailableError, EngineError):
                continue  # the next sync pass re-evaluates

    # -- elastic fleet operations (§6 deployment, made elastic) ----------
    def resync_placement(self, observed_version: int | None = None) -> bool:
        """Adopt a placement the fleet moved to without this root.

        Called after a worker rejects one of our requests as stale: the
        fleet re-read, new members dialed, departed proxies detached
        (left open so in-flight old-placement streams can drain), and
        every remaining request retried under the new version.

        ``observed_version`` is the caller's version at the time its
        request failed.  Two queries rejected by the same rebalance both
        resync: the first adopts the new placement; the second must see
        that the root already moved past what it observed and simply
        retry — waiting for a *further* version would stall it against
        a fleet that is already settled.
        """
        if self._addresses is None:
            return False  # spawn-mode fleets cannot be resized externally
        with self._resync_lock:
            if (
                observed_version is not None
                and self.placement_version > observed_version
            ):
                return True  # another thread already adopted a newer one
            before = self.placement_version
            deadline = time.monotonic() + min(self._startup_timeout, 15.0)
            try:
                ordered, version = self._sync_fleet(
                    list(self.workers), deadline, min_version=before + 1
                )
            except (PlacementError, EngineError, OSError):
                return False
            members = [
                format_address(p.address) for p in ordered if p.address
            ]
            for index, proxy in enumerate(ordered):
                proxy.index = index
                proxy.count = len(ordered)
                proxy.placement_version = version
                proxy.fleet_members = members
            self._addresses = [p.address for p in ordered if p.address]
            self.workers = list(ordered)
            self.placement_version = version
            return True

    def grow(self, addresses) -> int:  # type: ignore[override]
        """Add pre-started ``repro worker --listen`` daemons to the fleet,
        streaming only the moved shard slices to them (the rest replay
        from the redo log on first use).  ``addresses`` is a list of
        ``host:port`` strings or ``(host, port)`` tuples."""
        if self._addresses is None:
            raise PlacementError(
                "elastic resize needs an attached daemon fleet "
                "(--worker-address/--join); spawned workers have no "
                "dialable address for their peers to stream shards to"
            )
        parsed = [
            parse_address(a) if isinstance(a, str) else (str(a[0]), int(a[1]))
            for a in addresses
        ]
        if not parsed:
            raise ValueError("grow needs at least one new worker address")
        if len(set(parsed)) != len(parsed):
            raise PlacementError(
                "grow was given the same worker address twice; one daemon "
                "cannot serve two slices"
            )
        known = set(self._addresses)
        for address in parsed:
            if address in known:
                raise PlacementError(
                    f"worker {format_address(address)} is already in the fleet"
                )
        added: "list[RemoteWorkerProxy]" = []
        try:
            for host, port in parsed:
                added.append(self._dial_worker(host, port))
            old = list(self.workers)
            self._rebalance(old, list(range(len(old))), old + added)
        except BaseException:
            for proxy in added:
                if proxy not in self.workers:  # a failed grow leaks nothing
                    proxy.close()
            raise
        # Prewarm after the commit: the joiners' memo keys embed the new
        # slice, so recipes recompute over exactly what they now hold.
        self._prewarm_joiners(old, added)
        return len(self.workers)

    def _find_worker(self, selector) -> int:
        if isinstance(selector, tuple):
            selector = format_address((str(selector[0]), int(selector[1])))
        if isinstance(selector, str) and ":" in selector:
            wanted = parse_address(selector)
            for index, worker in enumerate(self.workers):
                if getattr(worker, "address", None) == wanted:
                    return index
            raise PlacementError(f"no worker at address {selector!r}")
        return super()._find_worker(selector)

    def _rebalance(
        self,
        old: "list[WorkerProtocol]",
        new_indices: "list[int | None]",
        new_workers: "list[WorkerProtocol]",
    ) -> None:
        """The wire rebalance: plan from worker inventories, stream only
        the moved shard slices daemon-to-daemon (``transferShards`` →
        ``adoptShards``), then commit the new versioned placement on
        every member (``rebalanceCommit``) and retire the removed ones.

        Stale roots discover the change through ``stale_placement``
        rejections and resync; transfers are best-effort — a failed or
        cold slice is simply dropped at commit and redo-log replay
        rebuilds it on first use (§5.7)."""
        if self._addresses is None:
            raise PlacementError(
                "elastic resize needs an attached daemon fleet"
            )
        self._begin_rebalance()
        try:
            proxies: "list[RemoteWorkerProxy]" = []
            for worker in new_workers:
                assert isinstance(worker, RemoteWorkerProxy)
                assert worker.address is not None
                proxies.append(worker)
            new_count = len(proxies)
            target_version = self.placement_version + 1
            members = [format_address(p.address) for p in proxies]
            inventories = self._collect_inventories(old)
            totals = self._transferable_datasets(inventories)
            for dataset_id in sorted(totals):
                resident = [
                    global_indices(
                        w.index,
                        w.count,
                        self._inventory_shards(inventories[i], dataset_id),
                    )
                    for i, w in enumerate(old)
                ]
                moves = plan_moves(resident, new_indices, new_count)
                by_source: dict[int, list[dict]] = {}
                for (position, owner), globals_moved in sorted(moves.items()):
                    by_source.setdefault(position, []).append(
                        {
                            "target": members[owner],
                            "globalIndices": globals_moved,
                        }
                    )
                for position, move_list in by_source.items():
                    source = old[position]
                    assert isinstance(source, RemoteWorkerProxy)
                    try:
                        source.transfer_shards(
                            dataset_id, move_list, target_version
                        )
                    except (WorkerUnavailableError, EngineError):
                        # Commit's completeness check drops the partial
                        # slice; redo-log replay rebuilds it on demand.
                        continue
            # Commit every member even if one fails: a straggler left at
            # the old version is healed by any root's _sync_fleet (the
            # committed members' report carries the full assignment), so
            # the mixed-version window must be as small as possible.
            commit_errors: list[tuple[str, Exception]] = []
            commit_cadence = (
                None if self._preserve_cadence else self.aggregation_interval
            )
            for index, proxy in enumerate(proxies):
                proxy.fleet_members = members
                try:
                    proxy.rebalance_commit(
                        target_version,
                        index,
                        new_count,
                        members,
                        totals,
                        aggregation_interval=commit_cadence,
                    )
                except (PlacementError, WorkerUnavailableError, EngineError) as exc:
                    commit_errors.append((proxy.name, exc))
            if len(commit_errors) == len(proxies):
                # Nothing committed: the fleet is still uniformly at the
                # old placement.  Retiring the departing workers now
                # would strand it (retired members at the new version,
                # survivors at the old, nobody placed at the target) —
                # leave everything as it was and let the operator re-run.
                detail = "; ".join(
                    f"{name}: {exc}" for name, exc in commit_errors
                )
                raise PlacementError(
                    f"no member accepted the rebalance commit to version "
                    f"{target_version} ({detail}); the fleet is unchanged "
                    "at the old placement — re-run the grow/shrink"
                )
            for position, new_index in enumerate(new_indices):
                if new_index is not None:
                    continue
                removed = old[position]
                assert isinstance(removed, RemoteWorkerProxy)
                try:
                    removed.retire(target_version, members)
                except (WorkerUnavailableError, EngineError):
                    pass  # a dead worker is as removed as it gets
                removed.close()
            if commit_errors:
                detail = "; ".join(
                    f"{name}: {exc}" for name, exc in commit_errors
                )
                raise PlacementError(
                    f"rebalance to version {target_version} committed on "
                    f"{len(proxies) - len(commit_errors)}/{len(proxies)} "
                    f"workers ({detail}); the stragglers are healed by the "
                    "next attach or resync (commits are idempotent), or "
                    "re-run the same grow/shrink"
                )
            self.workers = list(proxies)  # repro: ignore[C001] — the rebalance stream barrier (_begin_rebalance) excludes streams and resyncs
            self._addresses = [p.address for p in proxies]  # repro: ignore[C001] — under the rebalance stream barrier
            self.placement_version = target_version  # repro: ignore[C001] — under the rebalance stream barrier
            self.rebalances += 1
        finally:
            self._end_rebalance()

    def _dial_worker(self, host: str, port: int) -> RemoteWorkerProxy:
        sock = socket.create_connection(
            (host, port), timeout=self._startup_timeout
        )
        sock.settimeout(None)
        wfile = sock.makefile("wb")
        rfile = sock.makefile("rb")
        write_frame(wfile, RpcRequest(0, "", "hello", {}).to_json().encode("utf-8"))
        frame = read_frame_blocking(rfile, error=FrameError)
        if frame is None:
            raise EngineError(f"worker at {host}:{port} closed during handshake")
        ack = RpcReply.from_json(frame.decode("utf-8"))
        payload = ack.payload if isinstance(ack.payload, dict) else {}
        name = str(payload.get("name", f"{host}:{port}"))
        cores = int(payload.get("cores", 1))
        proxy = RemoteWorkerProxy(
            name,
            _WorkerChannel(sock, name),
            cores,
            address=(host, port),
            request_timeout=self._request_timeout,
        )
        proxy.preserve_cadence = self._preserve_cadence
        return proxy

    # -- fault recovery (§5.8) ------------------------------------------
    def revive_worker(self, index: int) -> bool:
        """Respawn (or re-dial) a dead worker and reconfigure it."""
        if not self._respawn:
            return False
        with self._revive_lock:
            proxy = self.workers[index]
            if not isinstance(proxy, RemoteWorkerProxy):
                return False
            if proxy.alive and proxy.ping():
                return True  # another thread already revived it
            proxy.close()
            try:
                if proxy.address is not None:
                    replacement = self._retry_dial(proxy.address)
                else:
                    replacement = self._spawn_worker(index, proxy.cores)
            except (EngineError, OSError):
                return False
            if replacement is None:
                return False
            replacement.placement_version = proxy.placement_version
            replacement.fleet_members = proxy.fleet_members
            replacement.preserve_cadence = getattr(
                proxy, "preserve_cadence", False
            )
            try:
                replacement.configure(
                    index, len(self.workers), self.aggregation_interval
                )
            except StalePlacementError:
                # The fleet moved on (the worker was retired, or our
                # version is old): close the dial and let the error
                # propagate so the placement-retry machinery resyncs —
                # endlessly re-reviving here would never converge.
                replacement.close()
                raise
            except (WorkerUnavailableError, EngineError):
                # The replacement died during configuration; revive_worker
                # must report failure, never raise (callers retry on True).
                replacement.close()
                return False
            self.workers[index] = replacement
            return True

    def _retry_dial(
        self, address: tuple[str, int], attempts: int = 10, delay: float = 0.3
    ) -> RemoteWorkerProxy | None:
        for _ in range(attempts):
            try:
                return self._dial_worker(*address)
            except (OSError, EngineError):
                time.sleep(delay)
        return None

    def kill_worker_process(self, index: int, sig: int = signal.SIGKILL) -> None:
        """SIGKILL one worker process (chaos testing; §5.8 fault model)."""
        proxy = self.workers[index]
        if not isinstance(proxy, RemoteWorkerProxy):
            raise EngineError("kill_worker_process needs a remote worker")
        proxy.kill_process(sig)

    def worker_pids(self) -> list[int | None]:
        return [
            w.pid if isinstance(w, RemoteWorkerProxy) else None
            for w in self.workers
        ]

    # -- lifecycle -------------------------------------------------------
    def sweep_caches(self) -> int:
        # The service tier's periodic sweep runs through here: piggyback
        # the detached-proxy pruning so a root that rides one resize and
        # then never resizes again still releases the drained sockets.
        self._prune_detached()
        return super().sweep_caches()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        for _, proxy in self._detached:
            proxy.close()
        self._detached = []
        if self._listener is not None:
            self._listener.close()
            self._listener = None


# ---------------------------------------------------------------------------
# Fleet introspection (``repro fleet status``)
# ---------------------------------------------------------------------------
def query_fleet(
    addresses: "list[tuple[str, int]]", timeout: float = 10.0
) -> list[dict]:
    """Dial each worker daemon briefly and return its placement payload
    (plus resident-dataset inventory).  Unreachable daemons yield an
    ``{"error": ...}`` entry instead of failing the whole sweep — status
    must work on a half-down fleet."""
    reports: list[dict] = []
    for host, port in addresses:
        report: dict = {"address": format_address((host, port))}
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(timeout)
            try:
                wfile = sock.makefile("wb")
                rfile = sock.makefile("rb")
                hello = call_once(
                    rfile, wfile, 0, "hello", where=f"worker {host}:{port}"
                )
                if isinstance(hello.payload, dict):
                    report["name"] = hello.payload.get("name")
                    report["pid"] = hello.payload.get("pid")
                info = call_once(
                    rfile, wfile, 1, "inventory",
                    where=f"worker {host}:{port}",
                )
                if info.kind == "error":
                    report["error"] = f"[{info.code}] {info.error}"
                elif isinstance(info.payload, dict):
                    report.update(info.payload)
            finally:
                sock.close()
        except (FrameError, EngineError, OSError, ValueError) as exc:
            report["error"] = str(exc)
        reports.append(report)
    return reports


def query_fleet_metrics(
    addresses: "list[tuple[str, int]]", timeout: float = 10.0
) -> list[dict]:
    """Dial each worker daemon for its ``metricsSnapshot`` payload
    (``repro fleet top``); unreachable daemons degrade to an
    ``{"error": ...}`` entry, like :func:`query_fleet`."""
    reports: list[dict] = []
    for host, port in addresses:
        report: dict = {"address": format_address((host, port))}
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
            sock.settimeout(timeout)
            try:
                wfile = sock.makefile("wb")
                rfile = sock.makefile("rb")
                call_once(
                    rfile, wfile, 0, "hello", where=f"worker {host}:{port}"
                )
                info = call_once(
                    rfile, wfile, 1, "metricsSnapshot",
                    where=f"worker {host}:{port}",
                )
                if info.kind == "error":
                    report["error"] = f"[{info.code}] {info.error}"
                elif isinstance(info.payload, dict):
                    report.update(info.payload)
            finally:
                sock.close()
        except (FrameError, EngineError, OSError, ValueError) as exc:
            report["error"] = str(exc)
        reports.append(report)
    return reports


# ---------------------------------------------------------------------------
# CLI entry (``repro worker``)
# ---------------------------------------------------------------------------
def worker_main(argv: list[str]) -> int:
    """`repro worker`: run one worker daemon."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.cli worker",
        description="Run one Hillview worker process.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="dial a root that spawned this worker",
    )
    mode.add_argument(
        "--listen",
        metavar="HOST:PORT",
        help="bind and wait for a root to dial in (daemon fleet)",
    )
    parser.add_argument("--name", help="worker name (defaults to worker-<pid>)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument(
        "--cache-entries", type=int, default=64,
        help="soft object store capacity (datasets per worker)",
    )
    parser.add_argument(
        "--cache-ttl", type=float, default=2 * 3600.0,
        help="seconds before an unused dataset/memo entry is purged "
             "(the paper's 2-hour soft-state TTL)",
    )
    parser.add_argument(
        "--cache-sweep-interval", type=float, default=300.0,
        help="how often the daemon purges TTL-expired cache entries "
             "(<= 0 disables the periodic sweep)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0,
        help="seconds a SIGTERM'd daemon waits for in-flight partial "
             "streams to finish before exiting",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one-line JSON event records on stderr",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        help="enable the structured event stream at this level",
    )
    args = parser.parse_args(argv)

    if args.log_json or args.log_level:
        configure_logging(
            json_mode=args.log_json or None, level=args.log_level
        )

    server = WorkerServer(
        name=args.name,
        cores=args.cores,
        cache_entries=args.cache_entries,
        cache_ttl_seconds=args.cache_ttl,
        cache_sweep_interval_seconds=args.cache_sweep_interval,
    )
    set_service_name(server.worker.name)
    log_event(
        "worker.start",
        worker=server.worker.name,
        pid=os.getpid(),
        cores=args.cores,
        mode="connect" if args.connect else "listen",
    )

    # Graceful shutdown: SIGTERM (a fleet shrink, an init system stop, a
    # CI teardown) drains instead of killing — in-flight partial streams
    # finish, new state-creating requests are refused, and the process
    # exits once idle (or after the grace period).  The watchdog thread
    # is what actually ends the process: in --connect mode the main
    # thread sits in a blocking read that PEP 475 resumes after the
    # handler, so without it a SIGTERM'd connect-mode worker would serve
    # forever.
    def _graceful_shutdown(signum, frame):  # noqa: ARG001 — signal API
        log_event(
            "worker.drain", worker=server.worker.name, signal=int(signum)
        )
        server.begin_drain()

        def finish() -> None:
            server.wait_drained(timeout=args.drain_grace)
            os._exit(0)

        # repro: ignore[C002] — SIGTERM drain-to-exit helper; process is dying, no query context applies
        threading.Thread(target=finish, name="drain-exit", daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _graceful_shutdown)
    except ValueError:
        pass  # not the main thread (embedded in tests)

    try:
        if args.connect:
            host, _, port = args.connect.rpartition(":")
            server.run_connect(host or "127.0.0.1", int(port))
        else:
            host, _, port = args.listen.rpartition(":")

            def announce(address: tuple[str, int]) -> None:
                # The announcement line is a valid @fleet.txt entry: it
                # must carry a *dialable* host, so a wildcard bind falls
                # back to loopback (multi-host fleets edit the file or
                # announce a real interface address).
                bound = address[0]
                dialable = (
                    "127.0.0.1" if bound in ("0.0.0.0", "::", "") else bound
                )
                print(
                    json.dumps(
                        {
                            "worker": server.worker.name,
                            "host": dialable,
                            "port": address[1],
                        }
                    ),
                    flush=True,
                )

            server.run_listen(host or "127.0.0.1", int(port), on_bound=announce)
    except KeyboardInterrupt:
        # Ctrl-C on a foreground `repro serve --spawn` reaches the whole
        # process group; workers exit quietly, like the root does.
        pass
    if server.draining:
        server.wait_drained(timeout=args.drain_grace)
    return 0
