"""The JSON wire protocol between the browser UI and the web server (§6).

Hillview's browser talks to the web server over a streaming RPC (WebSockets
carrying JSON messages): queries travel down, progressive partial results
travel up.  This module is that protocol, minus the socket: request/reply
envelopes, JSON codecs for the value objects queries are built from
(buckets, predicates, sort orders), a registry that instantiates vizketches
from their JSON descriptions — the analogue of Java's type-safe query
deserialization — and converters that render every summary type as a JSON
payload the UI can draw.

The transport-free design is deliberate: :class:`~repro.engine.web.WebServer`
streams replies as an iterator of envelopes, which tests (and a real socket
layer) can consume one message at a time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable

import numpy as np

from repro.core.buckets import (
    Buckets,
    DoubleBuckets,
    ExplicitStringBuckets,
    StringBuckets,
)
from repro.core.sketch import Sketch
from repro.errors import HillviewError
from repro.sketches.bottomk import BottomKDistinctSketch, BottomKSummary
from repro.sketches.cdf import CdfSketch
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.heatmap import HeatmapSketch, HeatmapSummary
from repro.sketches.heavy_hitters import (
    FrequencySummary,
    MisraGriesSketch,
    SampleHeavyHittersSketch,
)
from repro.sketches.histogram import HistogramSketch, HistogramSummary
from repro.sketches.hll import HllSummary, HyperLogLogSketch
from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.pca import CorrelationSketch, CorrelationSummary
from repro.sketches.quantile import QuantileSummary, SampleQuantileSketch
from repro.sketches.save import SaveStatus, SaveTableSketch
from repro.sketches.stacked import StackedHistogramSketch, StackedHistogramSummary
from repro.sketches.trellis import (
    TrellisHeatmapSketch,
    TrellisHistogramSketch,
    TrellisHistogramSummary,
    TrellisSummary,
)
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    StringMatchPredicate,
)
from repro.table.sort import RecordOrder, RowKey


class ProtocolError(HillviewError):
    """A malformed or unsupported RPC message."""

    code = "protocol"


class UnknownHandleError(ProtocolError):
    """A request referenced a remote object handle nobody knows.

    Distinguished from other protocol errors because a shared service
    loop treats it as a *client* mistake: the error envelope carries the
    ``unknown_handle`` code and the session stays alive (§5.2).
    """

    code = "unknown_handle"


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------
@dataclass
class RpcRequest:
    """One client command: run ``method`` against remote object ``target``."""

    request_id: int
    target: str
    method: str
    args: dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "requestId": self.request_id,
                "target": self.target,
                "method": self.method,
                "args": self.args,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "RpcRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from exc
        for key in ("requestId", "target", "method"):
            if key not in data:
                raise ProtocolError(f"request missing {key!r}")
        return cls(
            request_id=int(data["requestId"]),
            target=str(data["target"]),
            method=str(data["method"]),
            args=dict(data.get("args") or {}),
        )


@dataclass
class RpcReply:
    """One server message: a partial/final payload, an ack, or an error.

    ``kind`` is ``partial`` (progressive update), ``complete`` (the final
    payload; exactly one per successful request), ``ack`` (map operations:
    carries the new remote handle), ``cancelled`` or ``error``.

    ``code`` is a short machine-readable tag qualifying error and
    cancellation envelopes (``protocol``, ``unknown_handle``, ``internal``,
    ``superseded``, ...) so clients dispatch without parsing messages.
    """

    request_id: int
    kind: str
    progress: float = 1.0
    payload: object | None = None
    error: str | None = None
    code: str | None = None

    def to_json(self) -> str:
        data: dict = {
            "requestId": self.request_id,
            "kind": self.kind,
            "progress": round(self.progress, 6),
        }
        if self.payload is not None:
            data["payload"] = self.payload
        if self.error is not None:
            data["error"] = self.error
        if self.code is not None:
            data["code"] = self.code
        return json.dumps(data)

    @classmethod
    def from_json(cls, text: str) -> "RpcReply":
        data = json.loads(text)
        return cls(
            request_id=int(data["requestId"]),
            kind=str(data["kind"]),
            progress=float(data.get("progress", 1.0)),
            payload=data.get("payload"),
            error=data.get("error"),
            code=data.get("code"),
        )


# ---------------------------------------------------------------------------
# Cell values: JSON-safe encoding for dates and numpy scalars
# ---------------------------------------------------------------------------
def cell_to_json(value: object | None) -> object | None:
    """One table cell as a JSON-representable value."""
    if value is None:
        return None
    if isinstance(value, datetime):
        return {"$date": value.isoformat()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def cell_from_json(value: object | None) -> object | None:
    """Inverse of :func:`cell_to_json`."""
    if isinstance(value, dict) and "$date" in value:
        return datetime.fromisoformat(value["$date"])
    return value


# ---------------------------------------------------------------------------
# Value-object codecs: buckets, predicates, sort orders
# ---------------------------------------------------------------------------
def buckets_to_json(buckets: Buckets) -> dict:
    if isinstance(buckets, DoubleBuckets):
        return {
            "type": "double",
            "min": buckets.min_value,
            "max": buckets.max_value,
            "count": buckets.count,
        }
    if isinstance(buckets, StringBuckets):
        return {"type": "string_ranges", "boundaries": list(buckets.boundaries)}
    if isinstance(buckets, ExplicitStringBuckets):
        return {"type": "strings", "values": list(buckets.values)}
    raise ProtocolError(f"cannot encode buckets of type {type(buckets).__name__}")


def buckets_from_json(data: dict) -> Buckets:
    kind = data.get("type")
    if kind == "double":
        return DoubleBuckets(
            float(data["min"]), float(data["max"]), int(data["count"])
        )
    if kind == "string_ranges":
        return StringBuckets([str(b) for b in data["boundaries"]])
    if kind == "strings":
        return ExplicitStringBuckets([str(v) for v in data["values"]])
    raise ProtocolError(f"unknown buckets type {kind!r}")


def predicate_to_json(predicate: Predicate) -> dict:
    if isinstance(predicate, ColumnPredicate):
        value = predicate.value
        if isinstance(value, (list, tuple, set, frozenset)):
            value = [cell_to_json(v) for v in value]
        else:
            value = cell_to_json(value)
        return {
            "type": "column",
            "column": predicate.column,
            "op": predicate.op,
            "value": value,
        }
    if isinstance(predicate, StringMatchPredicate):
        return {
            "type": "match",
            "column": predicate.column,
            "pattern": predicate.pattern,
            "mode": predicate.mode,
            "caseSensitive": predicate.case_sensitive,
        }
    if isinstance(predicate, AndPredicate):
        return {"type": "and", "parts": [predicate_to_json(p) for p in predicate.parts]}
    if isinstance(predicate, OrPredicate):
        return {"type": "or", "parts": [predicate_to_json(p) for p in predicate.parts]}
    if isinstance(predicate, NotPredicate):
        return {"type": "not", "inner": predicate_to_json(predicate.inner)}
    raise ProtocolError(
        f"cannot encode predicate of type {type(predicate).__name__}"
    )


def predicate_from_json(data: dict) -> Predicate:
    kind = data.get("type")
    if kind == "column":
        value = data.get("value")
        if isinstance(value, list):
            value = [cell_from_json(v) for v in value]
        else:
            value = cell_from_json(value)
        return ColumnPredicate(str(data["column"]), str(data["op"]), value)
    if kind == "match":
        return StringMatchPredicate(
            str(data["column"]),
            str(data["pattern"]),
            str(data.get("mode", "substring")),
            bool(data.get("caseSensitive", True)),
        )
    if kind == "and":
        return AndPredicate(predicate_from_json(p) for p in data["parts"])
    if kind == "or":
        return OrPredicate(predicate_from_json(p) for p in data["parts"])
    if kind == "not":
        return NotPredicate(predicate_from_json(data["inner"]))
    raise ProtocolError(f"unknown predicate type {kind!r}")


def order_to_json(order: RecordOrder) -> list[dict]:
    return [
        {"column": o.column, "ascending": o.ascending} for o in order.orientations
    ]


def order_from_json(data: list) -> RecordOrder:
    if not isinstance(data, list) or not data:
        raise ProtocolError("sort order must be a non-empty list")
    columns = [str(item["column"]) for item in data]
    flags = [bool(item.get("ascending", True)) for item in data]
    return RecordOrder.of(*columns, ascending=flags)


def _start_key(data: dict, order: RecordOrder) -> RowKey | None:
    start = data.get("start")
    if start is None:
        return None
    values = tuple(cell_from_json(v) for v in start)
    return order.key_from_values(values)


# ---------------------------------------------------------------------------
# Sketch registry: JSON spec -> vizketch instance
# ---------------------------------------------------------------------------
def _build_histogram(args: dict) -> Sketch:
    return HistogramSketch(
        str(args["column"]),
        buckets_from_json(args["buckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_cdf(args: dict) -> Sketch:
    return CdfSketch(
        str(args["column"]),
        buckets_from_json(args["buckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_heatmap(args: dict) -> Sketch:
    return HeatmapSketch(
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_stacked(args: dict) -> Sketch:
    return StackedHistogramSketch(
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _group2(args: dict) -> dict:
    if "group2Column" not in args:
        return {"group2_column": None, "group2_buckets": None}
    return {
        "group2_column": str(args["group2Column"]),
        "group2_buckets": buckets_from_json(args["group2Buckets"]),
    }


def _build_trellis_heatmap(args: dict) -> Sketch:
    return TrellisHeatmapSketch(
        str(args["groupColumn"]),
        buckets_from_json(args["groupBuckets"]),
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
        **_group2(args),
    )


def _build_trellis_histogram(args: dict) -> Sketch:
    return TrellisHistogramSketch(
        str(args["groupColumn"]),
        buckets_from_json(args["groupBuckets"]),
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
        **_group2(args),
    )


def _build_moments(args: dict) -> Sketch:
    return MomentsSketch(str(args["column"]), moments=int(args.get("moments", 2)))


def _build_distinct(args: dict) -> Sketch:
    return HyperLogLogSketch(
        str(args["column"]),
        precision=int(args.get("precision", 12)),
        seed=int(args.get("seed", 0)),
    )


def _build_heavy_hitters(args: dict) -> Sketch:
    method = str(args.get("method", "streaming"))
    if method == "streaming":
        return MisraGriesSketch(str(args["column"]), int(args["k"]))
    if method == "sampling":
        return SampleHeavyHittersSketch(
            str(args["column"]),
            int(args["k"]),
            rate=float(args.get("rate", 1.0)),
            seed=int(args.get("seed", 0)),
        )
    raise ProtocolError(f"unknown heavy-hitters method {method!r}")


def _build_next_k(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    return NextKSketch(
        order,
        int(args.get("k", 20)),
        start_key=_start_key(args, order),
        inclusive=bool(args.get("inclusive", False)),
    )


def _build_quantile(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    return SampleQuantileSketch(
        order,
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_find(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    predicate = predicate_from_json(args["match"])
    if not isinstance(predicate, StringMatchPredicate):
        raise ProtocolError("find requires a string-match predicate")
    return FindTextSketch(predicate, order, start_key=_start_key(args, order))


def _build_correlation(args: dict) -> Sketch:
    columns = args["columns"]
    if not isinstance(columns, list) or len(columns) < 2:
        raise ProtocolError("correlation needs a list of >= 2 columns")
    return CorrelationSketch(
        [str(c) for c in columns],
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_save(args: dict) -> Sketch:
    return SaveTableSketch(
        str(args["directory"]),
        format=str(args.get("format", "hvc")),
    )


def _build_bottom_k(args: dict) -> Sketch:
    return BottomKDistinctSketch(
        str(args["column"]),
        k=int(args.get("k", 500)),
        seed=int(args.get("seed", 0)),
    )


#: Sketch type tag -> builder; the JSON analogue of Java query deserialization.
SKETCH_BUILDERS: dict[str, Callable[[dict], Sketch]] = {
    "histogram": _build_histogram,
    "cdf": _build_cdf,
    "heatmap": _build_heatmap,
    "stacked": _build_stacked,
    "trellisHeatmap": _build_trellis_heatmap,
    "trellisHistogram": _build_trellis_histogram,
    "moments": _build_moments,
    "distinct": _build_distinct,
    "heavyHitters": _build_heavy_hitters,
    "nextK": _build_next_k,
    "quantile": _build_quantile,
    "find": _build_find,
    "bottomK": _build_bottom_k,
    "correlation": _build_correlation,
    "save": _build_save,
}


def sketch_from_json(spec: dict) -> Sketch:
    """Instantiate the vizketch described by a JSON spec."""
    kind = spec.get("type")
    builder = SKETCH_BUILDERS.get(str(kind))
    if builder is None:
        raise ProtocolError(f"unknown sketch type {kind!r}")
    try:
        return builder(spec)
    except KeyError as exc:
        raise ProtocolError(f"sketch {kind!r} missing argument {exc}") from exc


# ---------------------------------------------------------------------------
# Summary -> JSON payloads
# ---------------------------------------------------------------------------
def _histogram_payload(s: HistogramSummary) -> dict:
    return {
        "type": "histogram",
        "counts": s.counts.tolist(),
        "missing": s.missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _heatmap_payload(s: HeatmapSummary) -> dict:
    return {
        "type": "heatmap",
        "counts": s.counts.tolist(),
        "xMissing": s.x_missing,
        "yMissing": s.y_missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _stacked_payload(s: StackedHistogramSummary) -> dict:
    return {
        "type": "stacked",
        "barCounts": s.bar_counts.tolist(),
        "cellCounts": s.cell_counts.tolist(),
        "yMissing": s.y_missing.tolist(),
        "missing": s.missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _trellis_payload(s: TrellisSummary) -> dict:
    return {
        "type": "trellisHeatmap",
        "panes": [_heatmap_payload(p) for p in s.panes],
        "groupMissing": s.group_missing,
        "groupOutOfRange": s.group_out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _trellis_histogram_payload(s: TrellisHistogramSummary) -> dict:
    return {
        "type": "trellisHistogram",
        "panes": [_histogram_payload(p) for p in s.panes],
        "groupMissing": s.group_missing,
        "groupOutOfRange": s.group_out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _stats_payload(s: ColumnStats) -> dict:
    return {
        "type": "columnStats",
        "presentCount": s.present_count,
        "missingCount": s.missing_count,
        "min": cell_to_json(s.min_value),
        "max": cell_to_json(s.max_value),
        "powerSums": list(s.power_sums),
    }


def _next_k_payload(s: NextKList) -> dict:
    return {
        "type": "nextK",
        "order": order_to_json(s.order),
        "rows": [[cell_to_json(v) for v in values] for values in s.rows],
        "counts": list(s.counts),
        "preceding": s.preceding,
        "scanned": s.scanned,
    }


def _frequency_payload(s: FrequencySummary) -> dict:
    return {
        "type": "frequencies",
        "counts": [
            [cell_to_json(value), count] for value, count in s.counts.items()
        ],
        "errorBound": s.error_bound,
        "scanned": s.scanned,
    }


def _hll_payload(s: HllSummary) -> dict:
    return {"type": "distinct", "estimate": s.estimate()}


def _quantile_payload(s: QuantileSummary) -> dict:
    return {
        "type": "quantile",
        "order": order_to_json(s.order),
        "samples": [[cell_to_json(v) for v in values] for values in s.samples],
        "scanned": s.scanned,
    }


def _find_payload(s: FindResult) -> dict:
    return {
        "type": "find",
        "firstMatch": (
            None
            if s.first_match is None
            else [cell_to_json(v) for v in s.first_match]
        ),
        "matchesBefore": s.matches_before,
        "matchesAfter": s.matches_after,
    }


def _bottom_k_payload(s: BottomKSummary) -> dict:
    return {
        "type": "bottomK",
        "values": s.values_sorted(),
        "saturated": s.saturated,
    }


def _correlation_payload(s: CorrelationSummary) -> dict:
    return {
        "type": "correlation",
        "columns": list(s.columns),
        "count": s.count,
        "sums": s.sums.tolist(),
        "products": s.products.tolist(),
    }


def _save_payload(s: SaveStatus) -> dict:
    return {
        "type": "saveStatus",
        "files": list(s.files),
        "rowsWritten": s.rows_written,
        "errors": list(s.errors),
    }


_PAYLOADS: list[tuple[type, Callable]] = [
    (StackedHistogramSummary, _stacked_payload),
    (TrellisSummary, _trellis_payload),
    (TrellisHistogramSummary, _trellis_histogram_payload),
    (HeatmapSummary, _heatmap_payload),
    (HistogramSummary, _histogram_payload),
    (ColumnStats, _stats_payload),
    (NextKList, _next_k_payload),
    (FrequencySummary, _frequency_payload),
    (HllSummary, _hll_payload),
    (QuantileSummary, _quantile_payload),
    (FindResult, _find_payload),
    (BottomKSummary, _bottom_k_payload),
    (CorrelationSummary, _correlation_payload),
    (SaveStatus, _save_payload),
]


def summary_to_json(summary: object) -> dict:
    """Render any summary as the JSON payload the UI consumes."""
    for cls, converter in _PAYLOADS:
        if isinstance(summary, cls):
            return converter(summary)
    raise ProtocolError(
        f"no JSON payload for summary type {type(summary).__name__}"
    )
