"""The JSON wire protocol between the browser UI and the web server (§6).

Hillview's browser talks to the web server over a streaming RPC (WebSockets
carrying JSON messages): queries travel down, progressive partial results
travel up.  This module is that protocol, minus the socket: request/reply
envelopes, JSON codecs for the value objects queries are built from
(buckets, predicates, sort orders), a registry that instantiates vizketches
from their JSON descriptions — the analogue of Java's type-safe query
deserialization — and converters that render every summary type as a JSON
payload the UI can draw.

The transport-free design is deliberate: :class:`~repro.engine.web.WebServer`
streams replies as an iterator of envelopes, which tests (and a real socket
layer) can consume one message at a time.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from datetime import datetime
from typing import Callable

import numpy as np

from repro.core.buckets import (
    Buckets,
    DoubleBuckets,
    ExplicitStringBuckets,
    StringBuckets,
)
from repro.core.serialization import Decoder, Encoder
from repro.core.sketch import Sketch
from repro.errors import HillviewError
from repro.sketches.bottomk import BottomKDistinctSketch, BottomKSummary
from repro.sketches.cdf import CdfSketch
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.heatmap import HeatmapSketch, HeatmapSummary
from repro.sketches.heavy_hitters import (
    FrequencySummary,
    MisraGriesSketch,
    SampleHeavyHittersSketch,
    canonical_counts,
)
from repro.sketches.histogram import HistogramSketch, HistogramSummary
from repro.sketches.hll import HllSummary, HyperLogLogSketch
from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.pca import CorrelationSketch, CorrelationSummary
from repro.sketches.quantile import QuantileSummary, SampleQuantileSketch
from repro.sketches.save import SaveStatus, SaveTableSketch
from repro.sketches.stacked import StackedHistogramSketch, StackedHistogramSummary
from repro.sketches.trellis import (
    TrellisHeatmapSketch,
    TrellisHistogramSketch,
    TrellisHistogramSummary,
    TrellisSummary,
)
from repro.table.compute import (
    AndPredicate,
    ColumnPredicate,
    NotPredicate,
    OrPredicate,
    Predicate,
    StringMatchPredicate,
)
from repro.table.sort import RecordOrder, RowKey


class ProtocolError(HillviewError):
    """A malformed or unsupported RPC message."""

    code = "protocol"


class UnknownHandleError(ProtocolError):
    """A request referenced a remote object handle nobody knows.

    Distinguished from other protocol errors because a shared service
    loop treats it as a *client* mistake: the error envelope carries the
    ``unknown_handle`` code and the session stays alive (§5.2).
    """

    code = "unknown_handle"


# ---------------------------------------------------------------------------
# Envelopes
# ---------------------------------------------------------------------------
@dataclass
class RpcRequest:
    """One client command: run ``method`` against remote object ``target``.

    ``trace``, when present, is the request's :class:`TraceContext` as
    JSON (``{"traceId", "spanId", "parentId"}``): the same optional
    field on both wires is how one trace covers a whole fan-out.  It is
    only serialized when set, so untraced requests stay byte-identical
    to the pre-tracing wire format.

    ``attachment`` is an optional binary blob riding the same frame
    (see :func:`encode_envelope`); it never appears in the JSON header.
    """

    request_id: int
    target: str
    method: str
    args: dict = field(default_factory=dict)
    trace: dict | None = None
    attachment: bytes | None = None

    def to_json(self) -> str:
        data: dict = {
            "requestId": self.request_id,
            "target": self.target,
            "method": self.method,
            "args": self.args,
        }
        if self.trace is not None:
            data["trace"] = self.trace
        return json.dumps(data)

    @classmethod
    def from_json(cls, text: str) -> "RpcRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ProtocolError(f"request is not valid JSON: {exc}") from exc
        for key in ("requestId", "target", "method"):
            if key not in data:
                raise ProtocolError(f"request missing {key!r}")
        return cls(
            request_id=int(data["requestId"]),
            target=str(data["target"]),
            method=str(data["method"]),
            args=dict(data.get("args") or {}),
            trace=data.get("trace"),
        )

    def to_frame(self) -> bytes:
        """This request as one wire frame (JSON, or binary if attached)."""
        return encode_envelope(self.to_json(), self.attachment)

    @classmethod
    def from_frame(cls, frame: bytes) -> "RpcRequest":
        """Inverse of :meth:`to_frame` for either envelope flavor."""
        text, attachment = split_envelope(frame)
        request = cls.from_json(text)
        request.attachment = attachment
        return request


class _NoPayload:
    """Sentinel distinguishing "no payload key" from an explicit null.

    A ``complete`` envelope whose payload is legitimately ``None`` (a sketch
    that streamed nothing) must not decode identically to an ``ack`` that
    never had a payload; encoding via this sentinel keeps the two apart on
    the wire.  Falsy, singleton, and survives copy/pickle as itself.
    """

    _instance: "_NoPayload | None" = None

    def __new__(cls) -> "_NoPayload":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<no payload>"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        return (_NoPayload, ())


NO_PAYLOAD = _NoPayload()


@dataclass
class RpcReply:
    """One server message: a partial/final payload, an ack, or an error.

    ``kind`` is ``partial`` (progressive update), ``complete`` (the final
    payload; exactly one per successful request), ``ack`` (map operations:
    carries the new remote handle), ``cancelled`` or ``error``.

    ``code`` is a short machine-readable tag qualifying error and
    cancellation envelopes (``protocol``, ``unknown_handle``, ``internal``,
    ``superseded``, ...) so clients dispatch without parsing messages.

    ``payload`` defaults to :data:`NO_PAYLOAD` (the envelope carries no
    payload key at all); pass ``None`` explicitly to send a null payload.

    ``cache``, when present on a terminal sketch reply, is the query's
    cache telemetry: ``{"hit": bool, "workerHits": int}`` — whether the
    result came whole from the root's computation cache, and how many
    workers served their partial from their own memo tier.  It rides the
    envelope, never the payload, so byte-identity of *results* across
    roots is unaffected by which root happened to be warm.

    ``profile``, present only on the terminal reply of a sketch request
    that asked for it (``args: {"profile": true}``), is the query's
    per-stage breakdown: queue wait, fan-out, per-worker stream timings,
    root merge, and the straggler.  Like ``cache``, it rides the
    envelope and is only serialized when set.

    ``attachment`` is an optional binary blob riding the same frame
    (see :func:`encode_envelope`); it never appears in the JSON header.
    """

    request_id: int
    kind: str
    progress: float = 1.0
    payload: object | None = NO_PAYLOAD
    error: str | None = None
    code: str | None = None
    cache: dict | None = None
    profile: dict | None = None
    attachment: bytes | None = None

    def to_json(self) -> str:
        data: dict = {
            "requestId": self.request_id,
            "kind": self.kind,
            "progress": round(self.progress, 6),
        }
        if self.payload is not NO_PAYLOAD:
            data["payload"] = self.payload
        if self.error is not None:
            data["error"] = self.error
        if self.code is not None:
            data["code"] = self.code
        if self.cache is not None:
            data["cache"] = self.cache
        if self.profile is not None:
            data["profile"] = self.profile
        return json.dumps(data)

    @classmethod
    def from_json(cls, text: str) -> "RpcReply":
        data = json.loads(text)
        return cls(
            request_id=int(data["requestId"]),
            kind=str(data["kind"]),
            progress=float(data.get("progress", 1.0)),
            payload=data["payload"] if "payload" in data else NO_PAYLOAD,
            error=data.get("error"),
            code=data.get("code"),
            cache=data.get("cache"),
            profile=data.get("profile"),
        )

    def to_frame(self) -> bytes:
        """This reply as one wire frame (JSON, or binary if attached)."""
        return encode_envelope(self.to_json(), self.attachment)

    @classmethod
    def from_frame(cls, frame: bytes) -> "RpcReply":
        """Inverse of :meth:`to_frame` for either envelope flavor."""
        text, attachment = split_envelope(frame)
        reply = cls.from_json(text)
        reply.attachment = attachment
        return reply


# ---------------------------------------------------------------------------
# Cell values: JSON-safe encoding for dates and numpy scalars
# ---------------------------------------------------------------------------
def cell_to_json(value: object | None) -> object | None:
    """One table cell as a JSON-representable value."""
    if value is None:
        return None
    if isinstance(value, datetime):
        return {"$date": value.isoformat()}
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def cell_from_json(value: object | None) -> object | None:
    """Inverse of :func:`cell_to_json`."""
    if isinstance(value, dict) and "$date" in value:
        return datetime.fromisoformat(value["$date"])
    return value


#: Reply kinds that terminate one request's reply stream; shared by
#: every endpoint of both wires.
TERMINAL_REPLY_KINDS = frozenset({"ack", "complete", "cancelled", "error"})

#: Every machine-readable ``code`` an error or cancellation envelope can
#: carry on the TCP wires (client<->root and root<->worker), with the
#: condition it names.  This registry is the single source of truth the
#: protocol documentation is checked against (``tests/test_docs.py``
#: fails if ``docs/PROTOCOL.md`` documents a code that is not here, or
#: omits one that is).
WIRE_ERROR_CODES: dict[str, str] = {
    "protocol": "the request was malformed or used an unknown method",
    "unknown_handle": (
        "the request referenced a remote object handle nobody knows; "
        "the session stays alive"
    ),
    "engine": "a generic engine failure (the HillviewError default)",
    "internal": "an unexpected exception was shielded by the service loop",
    "cancelled": "the computation was cancelled by the client",
    "superseded": (
        "the sketch was preempted by a newer one from the same session "
        "(newest-query-wins)"
    ),
    "session_closed": (
        "a queued query was finalized because its session closed or expired"
    ),
    "overloaded": "admission control rejected the request (backlog full)",
    "draining": (
        "this root is in maintenance drain and refuses new sessions; "
        "reconnect through the director to another root"
    ),
    "worker_draining": (
        "the worker is draining (SIGTERM) and refuses state-creating RPCs"
    ),
    "stale_placement": (
        "the request carried an outdated placement version; re-read "
        "placements and retry (retryable)"
    ),
    "placement_conflict": (
        "a root tried to re-slice shards of an already-placed fleet"
    ),
    "worker_unavailable": (
        "a worker process died or its connection broke mid-request"
    ),
    "connection": "the connection was lost or delivered an unreadable frame",
    "framing": "a malformed, oversized, or truncated wire frame",
    "session_store": "the shared session store failed",
}


# ---------------------------------------------------------------------------
# Frame envelopes: JSON headers with optional binary attachments
# ---------------------------------------------------------------------------
# A frame is either pure JSON (first byte ``{``, the historical wire) or a
# binary envelope (first byte 0x00, which no JSON text can start with):
#
#     0x00 | uvarint header-length | header JSON (UTF-8) | attachment
#
# The attachment is simply the rest of the frame — bulk payloads (hvc
# table bytes, Encoder-framed summaries) travel as raw bytes instead of
# base64-inside-JSON, while control metadata stays readable JSON.  The
# framing layer (``core/framing.py``) is payload-agnostic and unchanged.

_BINARY_ENVELOPE = 0


def wire_json_forced() -> bool:
    """``REPRO_WIRE_JSON=1`` forces pure-JSON frames on the worker wire.

    The escape hatch exists to *prove* the binary path changes nothing:
    a differential run under this flag must produce byte-identical
    summaries (asserted by a dedicated tier-1 CI leg).  Checked at call
    time so tests can flip it per-case.
    """
    return os.environ.get("REPRO_WIRE_JSON") == "1"


def encode_envelope(header_json: str, attachment: bytes | None = None) -> bytes:
    """One wire frame from a JSON header and an optional attachment."""
    raw = header_json.encode("utf-8")
    if attachment is None:
        return raw
    enc = Encoder()
    enc.write_bytes(raw)
    return bytes([_BINARY_ENVELOPE]) + enc.to_bytes() + bytes(attachment)


def split_envelope(frame: bytes) -> tuple[str, bytes | None]:
    """Inverse of :func:`encode_envelope`: ``(header_json, attachment)``."""
    if not frame or frame[0] != _BINARY_ENVELOPE:
        return frame.decode("utf-8"), None
    dec = Decoder(frame)
    dec.read_uvarint()  # the 0x00 discriminator
    header = dec.read_bytes().decode("utf-8")
    return header, bytes(frame[len(frame) - dec.remaining :])


def call_once(
    rfile,
    wfile,
    request_id: int,
    method: str,
    args: dict | None = None,
    *,
    where: str = "peer",
    attachment: bytes | None = None,
) -> "RpcReply":
    """One framed request over an already-open connection, blocking for
    its terminal reply (non-terminal frames are drained and discarded).

    The shared primitive behind every *one-shot* exchange on either wire
    — health probes, drain commands, worker-to-worker shard pushes,
    fleet status sweeps — so framing and terminal-kind handling live in
    exactly one place.  ``attachment`` rides the request frame as a
    binary envelope (see :func:`encode_envelope`).  Raises
    ``ConnectionError`` if the peer closes mid-call; error *replies* are
    returned, not raised (callers decide).
    """
    from repro.core.framing import FrameError, read_frame_blocking, write_frame

    request = RpcRequest(request_id, "", method, args or {})
    request.attachment = attachment
    write_frame(wfile, request.to_frame())
    while True:
        frame = read_frame_blocking(rfile, error=FrameError)
        if frame is None:
            raise ConnectionError(f"{where} closed during {method!r}")
        reply = RpcReply.from_frame(frame)
        if reply.kind in TERMINAL_REPLY_KINDS:
            return reply


# ---------------------------------------------------------------------------
# Value-object codecs: buckets, predicates, sort orders
# ---------------------------------------------------------------------------
def buckets_to_json(buckets: Buckets) -> dict:
    if isinstance(buckets, DoubleBuckets):
        return {
            "type": "double",
            "min": buckets.min_value,
            "max": buckets.max_value,
            "count": buckets.count,
        }
    if isinstance(buckets, StringBuckets):
        return {"type": "string_ranges", "boundaries": list(buckets.boundaries)}
    if isinstance(buckets, ExplicitStringBuckets):
        return {"type": "strings", "values": list(buckets.values)}
    raise ProtocolError(f"cannot encode buckets of type {type(buckets).__name__}")


def buckets_from_json(data: dict) -> Buckets:
    kind = data.get("type")
    if kind == "double":
        return DoubleBuckets(
            float(data["min"]), float(data["max"]), int(data["count"])
        )
    if kind == "string_ranges":
        return StringBuckets([str(b) for b in data["boundaries"]])
    if kind == "strings":
        return ExplicitStringBuckets([str(v) for v in data["values"]])
    raise ProtocolError(f"unknown buckets type {kind!r}")


def predicate_to_json(predicate: Predicate) -> dict:
    if isinstance(predicate, ColumnPredicate):
        value = predicate.value
        if isinstance(value, (list, tuple, set, frozenset)):
            value = [cell_to_json(v) for v in value]
        else:
            value = cell_to_json(value)
        return {
            "type": "column",
            "column": predicate.column,
            "op": predicate.op,
            "value": value,
        }
    if isinstance(predicate, StringMatchPredicate):
        return {
            "type": "match",
            "column": predicate.column,
            "pattern": predicate.pattern,
            "mode": predicate.mode,
            "caseSensitive": predicate.case_sensitive,
        }
    if isinstance(predicate, AndPredicate):
        return {"type": "and", "parts": [predicate_to_json(p) for p in predicate.parts]}
    if isinstance(predicate, OrPredicate):
        return {"type": "or", "parts": [predicate_to_json(p) for p in predicate.parts]}
    if isinstance(predicate, NotPredicate):
        return {"type": "not", "inner": predicate_to_json(predicate.inner)}
    raise ProtocolError(
        f"cannot encode predicate of type {type(predicate).__name__}"
    )


def predicate_from_json(data: dict) -> Predicate:
    kind = data.get("type")
    if kind == "column":
        value = data.get("value")
        if isinstance(value, list):
            value = [cell_from_json(v) for v in value]
        else:
            value = cell_from_json(value)
        return ColumnPredicate(str(data["column"]), str(data["op"]), value)
    if kind == "match":
        return StringMatchPredicate(
            str(data["column"]),
            str(data["pattern"]),
            str(data.get("mode", "substring")),
            bool(data.get("caseSensitive", True)),
        )
    if kind == "and":
        return AndPredicate(predicate_from_json(p) for p in data["parts"])
    if kind == "or":
        return OrPredicate(predicate_from_json(p) for p in data["parts"])
    if kind == "not":
        return NotPredicate(predicate_from_json(data["inner"]))
    raise ProtocolError(f"unknown predicate type {kind!r}")


def order_to_json(order: RecordOrder) -> list[dict]:
    return [
        {"column": o.column, "ascending": o.ascending} for o in order.orientations
    ]


def order_from_json(data: list) -> RecordOrder:
    if not isinstance(data, list) or not data:
        raise ProtocolError("sort order must be a non-empty list")
    columns = [str(item["column"]) for item in data]
    flags = [bool(item.get("ascending", True)) for item in data]
    return RecordOrder.of(*columns, ascending=flags)


def _start_key(data: dict, order: RecordOrder) -> RowKey | None:
    start = data.get("start")
    if start is None:
        return None
    values = tuple(cell_from_json(v) for v in start)
    return order.key_from_values(values)


# ---------------------------------------------------------------------------
# Sketch registry: JSON spec -> vizketch instance
# ---------------------------------------------------------------------------
def _build_histogram(args: dict) -> Sketch:
    return HistogramSketch(
        str(args["column"]),
        buckets_from_json(args["buckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_cdf(args: dict) -> Sketch:
    return CdfSketch(
        str(args["column"]),
        buckets_from_json(args["buckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_heatmap(args: dict) -> Sketch:
    return HeatmapSketch(
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_stacked(args: dict) -> Sketch:
    return StackedHistogramSketch(
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _group2(args: dict) -> dict:
    if "group2Column" not in args:
        return {"group2_column": None, "group2_buckets": None}
    return {
        "group2_column": str(args["group2Column"]),
        "group2_buckets": buckets_from_json(args["group2Buckets"]),
    }


def _build_trellis_heatmap(args: dict) -> Sketch:
    return TrellisHeatmapSketch(
        str(args["groupColumn"]),
        buckets_from_json(args["groupBuckets"]),
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        str(args["yColumn"]),
        buckets_from_json(args["yBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
        **_group2(args),
    )


def _build_trellis_histogram(args: dict) -> Sketch:
    return TrellisHistogramSketch(
        str(args["groupColumn"]),
        buckets_from_json(args["groupBuckets"]),
        str(args["xColumn"]),
        buckets_from_json(args["xBuckets"]),
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
        **_group2(args),
    )


def _build_moments(args: dict) -> Sketch:
    return MomentsSketch(str(args["column"]), moments=int(args.get("moments", 2)))


def _build_distinct(args: dict) -> Sketch:
    return HyperLogLogSketch(
        str(args["column"]),
        precision=int(args.get("precision", 12)),
        seed=int(args.get("seed", 0)),
    )


def _build_heavy_hitters(args: dict) -> Sketch:
    method = str(args.get("method", "streaming"))
    if method == "streaming":
        return MisraGriesSketch(str(args["column"]), int(args["k"]))
    if method == "sampling":
        return SampleHeavyHittersSketch(
            str(args["column"]),
            int(args["k"]),
            rate=float(args.get("rate", 1.0)),
            seed=int(args.get("seed", 0)),
        )
    raise ProtocolError(f"unknown heavy-hitters method {method!r}")


def _build_next_k(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    return NextKSketch(
        order,
        int(args.get("k", 20)),
        start_key=_start_key(args, order),
        inclusive=bool(args.get("inclusive", False)),
    )


def _build_quantile(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    return SampleQuantileSketch(
        order,
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_find(args: dict) -> Sketch:
    order = order_from_json(args["order"])
    predicate = predicate_from_json(args["match"])
    if not isinstance(predicate, StringMatchPredicate):
        raise ProtocolError("find requires a string-match predicate")
    return FindTextSketch(predicate, order, start_key=_start_key(args, order))


def _build_correlation(args: dict) -> Sketch:
    columns = args["columns"]
    if not isinstance(columns, list) or len(columns) < 2:
        raise ProtocolError("correlation needs a list of >= 2 columns")
    return CorrelationSketch(
        [str(c) for c in columns],
        rate=float(args.get("rate", 1.0)),
        seed=int(args.get("seed", 0)),
    )


def _build_save(args: dict) -> Sketch:
    return SaveTableSketch(
        str(args["directory"]),
        format=str(args.get("format", "hvc")),
    )


def _build_bottom_k(args: dict) -> Sketch:
    return BottomKDistinctSketch(
        str(args["column"]),
        k=int(args.get("k", 500)),
        seed=int(args.get("seed", 0)),
    )


#: Sketch type tag -> builder; the JSON analogue of Java query deserialization.
SKETCH_BUILDERS: dict[str, Callable[[dict], Sketch]] = {
    "histogram": _build_histogram,
    "cdf": _build_cdf,
    "heatmap": _build_heatmap,
    "stacked": _build_stacked,
    "trellisHeatmap": _build_trellis_heatmap,
    "trellisHistogram": _build_trellis_histogram,
    "moments": _build_moments,
    "distinct": _build_distinct,
    "heavyHitters": _build_heavy_hitters,
    "nextK": _build_next_k,
    "quantile": _build_quantile,
    "find": _build_find,
    "bottomK": _build_bottom_k,
    "correlation": _build_correlation,
    "save": _build_save,
}


def sketch_from_json(spec: dict) -> Sketch:
    """Instantiate the vizketch described by a JSON spec."""
    kind = spec.get("type")
    builder = SKETCH_BUILDERS.get(str(kind))
    if builder is None:
        raise ProtocolError(f"unknown sketch type {kind!r}")
    try:
        return builder(spec)
    except KeyError as exc:
        raise ProtocolError(f"sketch {kind!r} missing argument {exc}") from exc


# ---------------------------------------------------------------------------
# Summary -> JSON payloads
# ---------------------------------------------------------------------------
def _histogram_payload(s: HistogramSummary) -> dict:
    return {
        "type": "histogram",
        "counts": s.counts.tolist(),
        "missing": s.missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _heatmap_payload(s: HeatmapSummary) -> dict:
    return {
        "type": "heatmap",
        "counts": s.counts.tolist(),
        "xMissing": s.x_missing,
        "yMissing": s.y_missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _stacked_payload(s: StackedHistogramSummary) -> dict:
    return {
        "type": "stacked",
        "barCounts": s.bar_counts.tolist(),
        "cellCounts": s.cell_counts.tolist(),
        "yMissing": s.y_missing.tolist(),
        "missing": s.missing,
        "outOfRange": s.out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _trellis_payload(s: TrellisSummary) -> dict:
    return {
        "type": "trellisHeatmap",
        "panes": [_heatmap_payload(p) for p in s.panes],
        "groupMissing": s.group_missing,
        "groupOutOfRange": s.group_out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _trellis_histogram_payload(s: TrellisHistogramSummary) -> dict:
    return {
        "type": "trellisHistogram",
        "panes": [_histogram_payload(p) for p in s.panes],
        "groupMissing": s.group_missing,
        "groupOutOfRange": s.group_out_of_range,
        "sampledRows": s.sampled_rows,
    }


def _stats_payload(s: ColumnStats) -> dict:
    return {
        "type": "columnStats",
        "presentCount": s.present_count,
        "missingCount": s.missing_count,
        "min": cell_to_json(s.min_value),
        "max": cell_to_json(s.max_value),
        "powerSums": list(s.power_sums),
    }


def _next_k_payload(s: NextKList) -> dict:
    return {
        "type": "nextK",
        "order": order_to_json(s.order),
        "rows": [[cell_to_json(v) for v in values] for values in s.rows],
        "counts": list(s.counts),
        "preceding": s.preceding,
        "scanned": s.scanned,
    }


def _frequency_payload(s: FrequencySummary) -> dict:
    # canonical_counts, not .items(): the JSON wire must be as merge-
    # order-independent as the binary encode path (same PR 7 bug class).
    return {
        "type": "frequencies",
        "counts": [
            [cell_to_json(value), count]
            for value, count in canonical_counts(s.counts)
        ],
        "errorBound": s.error_bound,
        "scanned": s.scanned,
    }


def _hll_payload(s: HllSummary) -> dict:
    # The UI reads "estimate"; "registers" makes the payload lossless so a
    # root can merge summaries received from worker processes.
    return {
        "type": "distinct",
        "estimate": s.estimate(),
        "registers": s.registers.tolist(),
        "missing": s.missing,
    }


def _quantile_payload(s: QuantileSummary) -> dict:
    return {
        "type": "quantile",
        "order": order_to_json(s.order),
        "samples": [[cell_to_json(v) for v in values] for values in s.samples],
        "scanned": s.scanned,
    }


def _find_payload(s: FindResult) -> dict:
    return {
        "type": "find",
        "order": order_to_json(s.order),
        "firstMatch": (
            None
            if s.first_match is None
            else [cell_to_json(v) for v in s.first_match]
        ),
        "matchesBefore": s.matches_before,
        "matchesAfter": s.matches_after,
    }


def _bottom_k_payload(s: BottomKSummary) -> dict:
    # "values"/"saturated" feed the UI; "k"/"entries"/"missing" make the
    # payload lossless for root-side merging of worker partials.
    return {
        "type": "bottomK",
        "values": s.values_sorted(),
        "saturated": s.saturated,
        "k": s.k,
        "entries": [[hash_value, value] for hash_value, value in s.entries],
        "missing": s.missing,
    }


def _correlation_payload(s: CorrelationSummary) -> dict:
    return {
        "type": "correlation",
        "columns": list(s.columns),
        "count": s.count,
        "sums": s.sums.tolist(),
        "products": s.products.tolist(),
    }


def _save_payload(s: SaveStatus) -> dict:
    return {
        "type": "saveStatus",
        "files": list(s.files),
        "rowsWritten": s.rows_written,
        "errors": list(s.errors),
    }


_PAYLOADS: list[tuple[type, Callable]] = [
    (StackedHistogramSummary, _stacked_payload),
    (TrellisSummary, _trellis_payload),
    (TrellisHistogramSummary, _trellis_histogram_payload),
    (HeatmapSummary, _heatmap_payload),
    (HistogramSummary, _histogram_payload),
    (ColumnStats, _stats_payload),
    (NextKList, _next_k_payload),
    (FrequencySummary, _frequency_payload),
    (HllSummary, _hll_payload),
    (QuantileSummary, _quantile_payload),
    (FindResult, _find_payload),
    (BottomKSummary, _bottom_k_payload),
    (CorrelationSummary, _correlation_payload),
    (SaveStatus, _save_payload),
]


def summary_to_json(summary: object) -> dict:
    """Render any summary as the JSON payload the UI consumes."""
    for cls, converter in _PAYLOADS:
        if isinstance(summary, cls):
            return converter(summary)
    raise ProtocolError(
        f"no JSON payload for summary type {type(summary).__name__}"
    )


# ---------------------------------------------------------------------------
# JSON -> summary: the inverse converters
# ---------------------------------------------------------------------------
# Worker processes ship cumulative partials to the root as the same JSON
# payloads the UI consumes (one codec, two wires); the root must rebuild
# real summary objects to keep merging them.  Every converter here is the
# exact inverse of its _PAYLOADS counterpart: from_json(to_json(s)) encodes
# bit-identically to s (fuzzed in tests/test_rpc_properties.py).


def _counts_array(data: list, dtype=np.int64) -> np.ndarray:
    return np.asarray(data, dtype=dtype)


def _histogram_from_json(d: dict) -> HistogramSummary:
    return HistogramSummary(
        counts=_counts_array(d["counts"]),
        missing=int(d["missing"]),
        out_of_range=int(d["outOfRange"]),
        sampled_rows=int(d["sampledRows"]),
    )


def _heatmap_from_json(d: dict) -> HeatmapSummary:
    return HeatmapSummary(
        counts=_counts_array(d["counts"]),
        x_missing=int(d["xMissing"]),
        y_missing=int(d["yMissing"]),
        out_of_range=int(d["outOfRange"]),
        sampled_rows=int(d["sampledRows"]),
    )


def _stacked_from_json(d: dict) -> StackedHistogramSummary:
    return StackedHistogramSummary(
        bar_counts=_counts_array(d["barCounts"]),
        cell_counts=_counts_array(d["cellCounts"]),
        y_missing=_counts_array(d["yMissing"]),
        missing=int(d["missing"]),
        out_of_range=int(d["outOfRange"]),
        sampled_rows=int(d["sampledRows"]),
    )


def _trellis_from_json(d: dict) -> TrellisSummary:
    return TrellisSummary(
        panes=[_heatmap_from_json(p) for p in d["panes"]],
        group_missing=int(d["groupMissing"]),
        group_out_of_range=int(d["groupOutOfRange"]),
        sampled_rows=int(d["sampledRows"]),
    )


def _trellis_histogram_from_json(d: dict) -> TrellisHistogramSummary:
    return TrellisHistogramSummary(
        panes=[_histogram_from_json(p) for p in d["panes"]],
        group_missing=int(d["groupMissing"]),
        group_out_of_range=int(d["groupOutOfRange"]),
        sampled_rows=int(d["sampledRows"]),
    )


def _stats_from_json(d: dict) -> ColumnStats:
    return ColumnStats(
        present_count=int(d["presentCount"]),
        missing_count=int(d["missingCount"]),
        min_value=cell_from_json(d["min"]),
        max_value=cell_from_json(d["max"]),
        power_sums=[float(s) for s in d["powerSums"]],
    )


def _next_k_from_json(d: dict) -> NextKList:
    return NextKList(
        order=order_from_json(d["order"]),
        rows=[tuple(cell_from_json(v) for v in values) for values in d["rows"]],
        counts=[int(c) for c in d["counts"]],
        preceding=int(d["preceding"]),
        scanned=int(d["scanned"]),
    )


def _frequency_from_json(d: dict) -> FrequencySummary:
    return FrequencySummary(
        counts={
            cell_from_json(value): int(count) for value, count in d["counts"]
        },
        error_bound=int(d["errorBound"]),
        scanned=int(d["scanned"]),
    )


def _hll_from_json(d: dict) -> HllSummary:
    return HllSummary(
        registers=_counts_array(d["registers"], dtype=np.uint8),
        missing=int(d["missing"]),
    )


def _quantile_from_json(d: dict) -> QuantileSummary:
    return QuantileSummary(
        order=order_from_json(d["order"]),
        samples=[
            tuple(cell_from_json(v) for v in values) for values in d["samples"]
        ],
        scanned=int(d["scanned"]),
    )


def _find_from_json(d: dict) -> FindResult:
    first = d["firstMatch"]
    return FindResult(
        order=order_from_json(d["order"]),
        first_match=(
            None if first is None else tuple(cell_from_json(v) for v in first)
        ),
        matches_before=int(d["matchesBefore"]),
        matches_after=int(d["matchesAfter"]),
    )


def _bottom_k_from_json(d: dict) -> BottomKSummary:
    return BottomKSummary(
        k=int(d["k"]),
        entries=[(int(h), str(v)) for h, v in d["entries"]],
        missing=int(d["missing"]),
    )


def _correlation_from_json(d: dict) -> CorrelationSummary:
    return CorrelationSummary(
        columns=[str(c) for c in d["columns"]],
        count=int(d["count"]),
        sums=_counts_array(d["sums"], dtype=np.float64),
        products=_counts_array(d["products"], dtype=np.float64),
    )


def _save_from_json(d: dict) -> SaveStatus:
    return SaveStatus(
        files=[str(f) for f in d["files"]],
        rows_written=int(d["rowsWritten"]),
        errors=[str(e) for e in d["errors"]],
    )


#: Payload "type" tag -> parser; the inverse of :data:`_PAYLOADS`.
SUMMARY_PARSERS: dict[str, Callable[[dict], object]] = {
    "histogram": _histogram_from_json,
    "heatmap": _heatmap_from_json,
    "stacked": _stacked_from_json,
    "trellisHeatmap": _trellis_from_json,
    "trellisHistogram": _trellis_histogram_from_json,
    "columnStats": _stats_from_json,
    "nextK": _next_k_from_json,
    "frequencies": _frequency_from_json,
    "distinct": _hll_from_json,
    "quantile": _quantile_from_json,
    "find": _find_from_json,
    "bottomK": _bottom_k_from_json,
    "correlation": _correlation_from_json,
    "saveStatus": _save_from_json,
}


def summary_from_json(data: dict) -> object:
    """Rebuild a summary object from its JSON payload."""
    kind = data.get("type")
    parser = SUMMARY_PARSERS.get(str(kind))
    if parser is None:
        raise ProtocolError(f"unknown summary payload type {kind!r}")
    try:
        return parser(data)
    except KeyError as exc:
        raise ProtocolError(
            f"summary payload {kind!r} missing field {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Binary summary codec: the hot path of the worker wire
# ---------------------------------------------------------------------------
# Sketch partials travel root<->worker as each summary's own Encoder
# format (the codec every summary already defines for byte accounting),
# prefixed with the payload type tag so the receiver knows which decoder
# to run.  The tags are the same strings the JSON wire uses, so traces
# and logs identify a summary identically in either wire mode.

#: Payload "type" tag -> summary class; the binary twin of
#: :data:`SUMMARY_PARSERS`.
SUMMARY_CODECS: dict[str, type] = {
    "histogram": HistogramSummary,
    "heatmap": HeatmapSummary,
    "stacked": StackedHistogramSummary,
    "trellisHeatmap": TrellisSummary,
    "trellisHistogram": TrellisHistogramSummary,
    "columnStats": ColumnStats,
    "nextK": NextKList,
    "frequencies": FrequencySummary,
    "distinct": HllSummary,
    "quantile": QuantileSummary,
    "find": FindResult,
    "bottomK": BottomKSummary,
    "correlation": CorrelationSummary,
    "saveStatus": SaveStatus,
}

#: Exact-type reverse lookup (no isinstance walk: summary types on the
#: wire are always the concrete classes above).
_SUMMARY_TAG_BY_TYPE: dict[type, str] = {
    cls: tag for tag, cls in SUMMARY_CODECS.items()
}


def summary_tag(summary: object) -> str:
    """The payload type tag of ``summary`` (shared by both wire modes)."""
    tag = _SUMMARY_TAG_BY_TYPE.get(type(summary))
    if tag is None:
        raise ProtocolError(
            f"no binary codec for summary type {type(summary).__name__}"
        )
    return tag


def summary_to_bytes(summary: object) -> bytes:
    """Encode any summary as a tagged binary attachment."""
    enc = Encoder()
    enc.write_str(summary_tag(summary))
    summary.encode(enc)  # type: ignore[attr-defined]
    return enc.to_bytes()


def summary_from_bytes(payload: bytes) -> object:
    """Inverse of :func:`summary_to_bytes`."""
    dec = Decoder(payload)
    tag = dec.read_str()
    cls = SUMMARY_CODECS.get(tag or "")
    if cls is None:
        raise ProtocolError(f"unknown binary summary tag {tag!r}")
    return cls.decode(dec)


# ---------------------------------------------------------------------------
# Sketch -> JSON spec: the inverse of SKETCH_BUILDERS
# ---------------------------------------------------------------------------
def _start_to_json(sketch) -> dict:
    if sketch.start_key is None:
        return {}
    # repro: ignore[D002] — start_key insertion order IS canonical: it mirrors the RecordOrder column order, not merge arrival
    return {"start": [cell_to_json(v) for v in sketch.start_key.values()]}


def _group2_to_json(sketch) -> dict:
    if sketch.group2_column is None:
        return {}
    return {
        "group2Column": sketch.group2_column,
        "group2Buckets": buckets_to_json(sketch.group2_buckets),
    }


def _encode_histogram(s: HistogramSketch) -> dict:
    return {
        "type": "histogram",
        "column": s.column,
        "buckets": buckets_to_json(s.buckets),
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_cdf(s: CdfSketch) -> dict:
    return {**_encode_histogram(s), "type": "cdf"}


def _encode_heatmap(s: HeatmapSketch) -> dict:
    return {
        "type": "heatmap",
        "xColumn": s.x_column,
        "xBuckets": buckets_to_json(s.x_buckets),
        "yColumn": s.y_column,
        "yBuckets": buckets_to_json(s.y_buckets),
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_stacked(s: StackedHistogramSketch) -> dict:
    return {
        "type": "stacked",
        "xColumn": s.x_column,
        "xBuckets": buckets_to_json(s.x_buckets),
        "yColumn": s.y_column,
        "yBuckets": buckets_to_json(s.y_buckets),
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_trellis_heatmap(s: TrellisHeatmapSketch) -> dict:
    return {
        "type": "trellisHeatmap",
        "groupColumn": s.group_column,
        "groupBuckets": buckets_to_json(s.group_buckets),
        "xColumn": s.x_column,
        "xBuckets": buckets_to_json(s.x_buckets),
        "yColumn": s.y_column,
        "yBuckets": buckets_to_json(s.y_buckets),
        "rate": s.rate,
        "seed": s.seed,
        **_group2_to_json(s),
    }


def _encode_trellis_histogram(s: TrellisHistogramSketch) -> dict:
    return {
        "type": "trellisHistogram",
        "groupColumn": s.group_column,
        "groupBuckets": buckets_to_json(s.group_buckets),
        "xColumn": s.x_column,
        "xBuckets": buckets_to_json(s.x_buckets),
        "rate": s.rate,
        "seed": s.seed,
        **_group2_to_json(s),
    }


def _encode_moments(s: MomentsSketch) -> dict:
    return {"type": "moments", "column": s.column, "moments": s.moments}


def _encode_distinct(s: HyperLogLogSketch) -> dict:
    return {
        "type": "distinct",
        "column": s.column,
        "precision": s.precision,
        "seed": s.seed,
    }


def _encode_misra_gries(s: MisraGriesSketch) -> dict:
    return {
        "type": "heavyHitters",
        "method": "streaming",
        "column": s.column,
        "k": s.k,
    }


def _encode_sample_heavy_hitters(s: SampleHeavyHittersSketch) -> dict:
    return {
        "type": "heavyHitters",
        "method": "sampling",
        "column": s.column,
        "k": s.k,
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_next_k(s: NextKSketch) -> dict:
    return {
        "type": "nextK",
        "order": order_to_json(s.order),
        "k": s.k,
        "inclusive": s.inclusive,
        **_start_to_json(s),
    }


def _encode_quantile(s: SampleQuantileSketch) -> dict:
    return {
        "type": "quantile",
        "order": order_to_json(s.order),
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_find(s: FindTextSketch) -> dict:
    return {
        "type": "find",
        "order": order_to_json(s.order),
        "match": predicate_to_json(s.predicate),
        **_start_to_json(s),
    }


def _encode_bottom_k(s: BottomKDistinctSketch) -> dict:
    return {"type": "bottomK", "column": s.column, "k": s.k, "seed": s.seed}


def _encode_correlation(s: CorrelationSketch) -> dict:
    return {
        "type": "correlation",
        "columns": list(s.columns),
        "rate": s.rate,
        "seed": s.seed,
    }


def _encode_save(s: SaveTableSketch) -> dict:
    return {"type": "save", "directory": s.directory, "format": s.format}


#: Sketch class -> JSON spec encoder, checked in order (subclasses first:
#: CdfSketch extends HistogramSketch).  Extensible: service-level sketch
#: types (e.g. "slow") append their own entries at import time, mirroring
#: how they register in SKETCH_BUILDERS.
SKETCH_ENCODERS: list[tuple[type, Callable[[Sketch], dict]]] = [
    (CdfSketch, _encode_cdf),
    (HistogramSketch, _encode_histogram),
    (HeatmapSketch, _encode_heatmap),
    (StackedHistogramSketch, _encode_stacked),
    (TrellisHeatmapSketch, _encode_trellis_heatmap),
    (TrellisHistogramSketch, _encode_trellis_histogram),
    (MomentsSketch, _encode_moments),
    (HyperLogLogSketch, _encode_distinct),
    (MisraGriesSketch, _encode_misra_gries),
    (SampleHeavyHittersSketch, _encode_sample_heavy_hitters),
    (NextKSketch, _encode_next_k),
    (SampleQuantileSketch, _encode_quantile),
    (FindTextSketch, _encode_find),
    (BottomKDistinctSketch, _encode_bottom_k),
    (CorrelationSketch, _encode_correlation),
    (SaveTableSketch, _encode_save),
]


def sketch_to_json(sketch: Sketch) -> dict:
    """Encode a sketch as the JSON spec :func:`sketch_from_json` accepts.

    The root uses this to broadcast queries to worker processes: any sketch
    the engine can run locally travels the wire as the same spec a browser
    would submit.
    """
    for cls, encoder in SKETCH_ENCODERS:
        if type(sketch) is cls:
            return encoder(sketch)
    # Fall back to subclass matching for sketch types registered by other
    # modules (exact-type pass first so e.g. Cdf does not match Histogram).
    for cls, encoder in SKETCH_ENCODERS:
        if isinstance(sketch, cls):
            return encoder(sketch)
    raise ProtocolError(
        f"cannot encode sketch of type {type(sketch).__name__}"
    )


# ---------------------------------------------------------------------------
# Table maps and data sources: the lineage codecs (§5.7 over a real wire)
# ---------------------------------------------------------------------------
def table_map_to_json(table_map) -> dict:
    """Encode a declarative table map for replay on a remote worker."""
    from repro.engine.dataset import ExpressionMap, FilterMap, ProjectMap

    if isinstance(table_map, FilterMap):
        return {"type": "filter", "predicate": predicate_to_json(table_map.predicate)}
    if isinstance(table_map, ProjectMap):
        return {"type": "project", "columns": list(table_map.columns)}
    if isinstance(table_map, ExpressionMap):
        return {
            "type": "expression",
            "name": table_map.name,
            "expression": table_map.expression,
        }
    raise ProtocolError(
        f"table map {type(table_map).__name__} carries a Python callable and "
        "cannot cross a process boundary; use an expression map instead"
    )


def table_map_from_json(data: dict):
    """Inverse of :func:`table_map_to_json`."""
    from repro.engine.dataset import ExpressionMap, FilterMap, ProjectMap

    kind = data.get("type")
    if kind == "filter":
        return FilterMap(predicate_from_json(data["predicate"]))
    if kind == "project":
        return ProjectMap([str(c) for c in data["columns"]])
    if kind == "expression":
        return ExpressionMap(str(data["name"]), str(data["expression"]))
    raise ProtocolError(f"unknown table map type {kind!r}")


def source_to_json(source) -> dict:
    """Encode a data source so a worker process can (re)load it itself.

    Only *reloadable-by-description* sources can cross a process boundary;
    an in-memory :class:`~repro.storage.loader.TableSource` cannot, which is
    exactly the paper's constraint that lineage must bottom out at a load
    from the storage layer (§5.7).
    """
    from repro.data.flights import FlightsSource
    from repro.storage.loader import (
        ColumnarDatasetSource,
        CsvSource,
        JsonlSource,
        SqlSource,
        SyslogSource,
    )

    if isinstance(source, FlightsSource):
        return {
            "kind": "flights",
            "rows": source.total_rows,
            "partitions": source.partitions,
            "seed": source.seed,
            "extraColumns": source.extra_columns,
        }
    if isinstance(source, CsvSource):
        return {"kind": "csv", "pattern": source.pattern}
    if isinstance(source, JsonlSource):
        return {"kind": "jsonl", "pattern": source.pattern}
    if isinstance(source, SyslogSource):
        return {"kind": "syslog", "pattern": source.pattern}
    if isinstance(source, SqlSource):
        return {
            "kind": "sql",
            "path": source.db_path,
            "table": source.table,
            "partitions": source.partitions,
        }
    if isinstance(source, ColumnarDatasetSource):
        return {"kind": "hvc", "directory": source.directory}
    raise ProtocolError(
        f"data source {type(source).__name__} is not reloadable by "
        "description and cannot cross a process boundary (§5.7: lineage "
        "must end at a load from the storage layer)"
    )


def source_from_json(data: dict):
    """Inverse of :func:`source_to_json`."""
    from repro.data.flights import FlightsSource
    from repro.storage.loader import (
        ColumnarDatasetSource,
        CsvSource,
        JsonlSource,
        SqlSource,
        SyslogSource,
    )

    kind = data.get("kind")
    if kind == "flights":
        return FlightsSource(
            int(data["rows"]),
            partitions=int(data.get("partitions", 8)),
            seed=int(data.get("seed", 0)),
            extra_columns=int(data.get("extraColumns", 0)),
        )
    if kind == "csv":
        return CsvSource(str(data["pattern"]))
    if kind == "jsonl":
        return JsonlSource(str(data["pattern"]))
    if kind == "syslog":
        return SyslogSource(str(data["pattern"]))
    if kind == "sql":
        return SqlSource(
            str(data["path"]),
            str(data["table"]),
            partitions=int(data.get("partitions", 1)),
        )
    if kind == "hvc":
        return ColumnarDatasetSource(str(data["directory"]))
    raise ProtocolError(f"unknown source kind {kind!r}")


def lineage_to_json(chain: list) -> list[dict]:
    """Encode a redo-log lineage chain (LoadOp, MapOp...) for a worker."""
    from repro.engine.redo_log import LoadOp, MapOp

    encoded = []
    for op in chain:
        if isinstance(op, LoadOp):
            encoded.append(
                {
                    "op": "load",
                    "dataset": op.dataset_id,
                    "source": source_to_json(op.source),
                }
            )
        elif isinstance(op, MapOp):
            encoded.append(
                {
                    "op": "map",
                    "dataset": op.dataset_id,
                    "parent": op.parent_id,
                    "map": table_map_to_json(op.table_map),
                }
            )
        else:
            raise ProtocolError(f"cannot encode lineage op {op!r}")
    return encoded


def lineage_from_json(data: list) -> list:
    """Inverse of :func:`lineage_to_json`: LoadOp/MapOp values for replay."""
    from repro.engine.redo_log import LoadOp, MapOp

    chain = []
    for item in data:
        op = item.get("op")
        if op == "load":
            chain.append(
                LoadOp(str(item["dataset"]), source_from_json(item["source"]))
            )
        elif op == "map":
            chain.append(
                MapOp(
                    str(item["dataset"]),
                    str(item["parent"]),
                    table_map_from_json(item["map"]),
                )
            )
        else:
            raise ProtocolError(f"unknown lineage op {op!r}")
    return chain
