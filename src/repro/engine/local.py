"""In-process datasets: the simplest engine (one machine, real threads).

``LocalDataSet`` wraps one table (a leaf).  ``ParallelDataSet`` fans a
sketch out over its children on a thread pool and merges results as they
complete, yielding a cumulative partial after each merge — the in-process
equivalent of the execution tree of §5.3.  Children finishing early are
visible immediately; stragglers only delay the *final* result.
"""

from __future__ import annotations

import concurrent.futures
from typing import Iterator, Sequence, TypeVar

from repro.core.sketch import Sketch
from repro.engine.dataset import IDataSet, TableMap
from repro.engine.progress import CancellationToken, PartialResult
from repro.obs.trace import current_context, use_context
from repro.table.table import Table

R = TypeVar("R")


class LocalDataSet(IDataSet):
    """A single in-memory table (one leaf of the execution tree)."""

    def __init__(self, table: Table):
        self.table = table

    @property
    def total_rows(self) -> int:
        return self.table.num_rows

    @property
    def schema(self):
        return self.table.schema

    def map(self, table_map: TableMap) -> "LocalDataSet":
        return LocalDataSet(table_map.apply(self.table))

    def sketch_stream(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None = None,
    ) -> Iterator[PartialResult[R]]:
        if token is not None and token.cancelled:
            return
        yield PartialResult(1.0, sketch.summarize(self.table))


class ParallelDataSet(IDataSet):
    """A dataset partitioned over child datasets, sketched in parallel.

    ``max_workers`` bounds leaf concurrency (the paper's per-server thread
    pool, §5.3).  Results merge in completion order; each merge yields a
    cumulative partial with progress = finished children / children.
    """

    def __init__(self, children: Sequence[IDataSet], max_workers: int | None = None):
        if not children:
            raise ValueError("ParallelDataSet needs at least one child")
        self.children = list(children)
        self.max_workers = max_workers

    @property
    def total_rows(self) -> int:
        return sum(child.total_rows for child in self.children)

    @property
    def schema(self):
        return self.children[0].schema

    def map(self, table_map: TableMap) -> "ParallelDataSet":
        ctx = current_context()

        def map_child(child: IDataSet) -> IDataSet:
            # Pool threads inherit the caller's trace context so mapped
            # children log/span under the query that created them.
            with use_context(ctx):
                return child.map(table_map)

        with concurrent.futures.ThreadPoolExecutor(self._workers()) as pool:
            mapped = list(pool.map(map_child, self.children))
        return ParallelDataSet(mapped, self.max_workers)

    def _workers(self) -> int:
        return self.max_workers or min(32, len(self.children))

    def sketch_stream(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None = None,
    ) -> Iterator[PartialResult[R]]:
        ctx = current_context()

        def leaf(child: IDataSet) -> R | None:
            # Queued work is skipped after cancellation; running leaves
            # complete (paper §5.3 cancellation semantics).
            if token is not None and token.cancelled:
                return None
            with use_context(ctx):
                return child.sketch(sketch)

        accumulated = sketch.zero()
        done = 0
        with concurrent.futures.ThreadPoolExecutor(self._workers()) as pool:
            futures = [pool.submit(leaf, child) for child in self.children]
            # Child order, not completion order: non-commutative merges
            # (Misra-Gries under saturation) must be byte-deterministic.
            for future in futures:
                summary = future.result()
                done += 1
                if summary is None:
                    continue
                accumulated = sketch.merge(accumulated, summary)
                yield PartialResult(done / len(self.children), accumulated)
                if token is not None and token.cancelled:
                    break


def parallel_dataset(
    table: Table, shards: int, max_workers: int | None = None
) -> ParallelDataSet:
    """Split ``table`` into micropartition leaves under one parallel node."""
    return ParallelDataSet(
        [LocalDataSet(shard) for shard in table.split(shards)],
        max_workers=max_workers,
    )
