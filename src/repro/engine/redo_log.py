"""The root node's redo log (paper §5.7–5.8).

The redo log is the **only persistent structure in Hillview**: it records
the operation that created every dataset — the initial *load* from the
storage layer and each *map* derived from a parent — plus the seeds of
randomized operations.  Worker state is soft; when a leaf reports a missing
object, the root replays the lineage recorded here, recursing until it
bottoms out at a load from disk.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import EngineError

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.dataset import TableMap
    from repro.storage.loader import DataSource


@dataclass(frozen=True)
class LoadOp:
    """Dataset created by loading a data source."""

    dataset_id: str
    source: "DataSource"

    def describe(self) -> str:
        return f"load {self.dataset_id} <- {self.source.spec()}"


@dataclass(frozen=True)
class MapOp:
    """Dataset derived from a parent by a table map."""

    dataset_id: str
    parent_id: str
    table_map: "TableMap"

    def describe(self) -> str:
        return f"map {self.dataset_id} <- {self.parent_id} via {self.table_map.spec()}"


@dataclass(frozen=True)
class SketchOp:
    """A sketch execution (recorded with its seed for auditability)."""

    dataset_id: str
    sketch_name: str
    seed: int | None

    def describe(self) -> str:
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return f"sketch {self.sketch_name} on {self.dataset_id}{seed}"


@dataclass
class RedoLog:
    """Append-only operation log with lineage lookup."""

    entries: list = field(default_factory=list)
    _by_dataset: dict = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record_load(self, dataset_id: str, source: "DataSource") -> LoadOp:
        op = LoadOp(dataset_id, source)
        with self._lock:
            existing = self._by_dataset.get(dataset_id)
            if existing is not None:
                # Dataset ids are content-addressed: re-recording the same
                # load (another session, another root over a shared fleet)
                # is a no-op, while the same id naming *different* content
                # is corruption and must never pass silently.
                if existing.describe() != op.describe():
                    raise EngineError(
                        f"dataset {dataset_id!r} already recorded as "
                        f"{existing.describe()!r}"
                    )
                return existing
            self.entries.append(op)
            self._by_dataset[dataset_id] = op
        return op

    def record_map(
        self, dataset_id: str, parent_id: str, table_map: "TableMap"
    ) -> MapOp:
        op = MapOp(dataset_id, parent_id, table_map)
        with self._lock:
            existing = self._by_dataset.get(dataset_id)
            if existing is not None:
                if existing.describe() != op.describe():
                    raise EngineError(
                        f"dataset {dataset_id!r} already recorded as "
                        f"{existing.describe()!r}"
                    )
                return existing
            if parent_id not in self._by_dataset:
                raise EngineError(f"unknown parent dataset {parent_id!r}")
            self.entries.append(op)
            self._by_dataset[dataset_id] = op
        return op

    def record_sketch(
        self, dataset_id: str, sketch_name: str, seed: int | None
    ) -> SketchOp:
        op = SketchOp(dataset_id, sketch_name, seed)
        with self._lock:
            self.entries.append(op)
        return op

    def creation_op(self, dataset_id: str) -> LoadOp | MapOp:
        """The operation that created ``dataset_id``."""
        with self._lock:
            try:
                return self._by_dataset[dataset_id]
            except KeyError:
                raise EngineError(
                    f"dataset {dataset_id!r} is not in the redo log"
                ) from None

    def lineage(self, dataset_id: str) -> list:
        """Creation chain from the root load down to ``dataset_id``.

        The first element is always a :class:`LoadOp`; the rest are
        :class:`MapOp` in application order — exactly the replay recipe of
        §5.7 ("the recursion ends when data is read from disk").
        """
        chain = []
        current = dataset_id
        while True:
            op = self.creation_op(current)
            chain.append(op)
            if isinstance(op, LoadOp):
                break
            current = op.parent_id
        chain.reverse()
        return chain

    def describe(self) -> list[str]:
        with self._lock:
            return [op.describe() for op in self.entries]

    def __len__(self) -> int:
        return len(self.entries)
