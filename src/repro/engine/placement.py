"""Shard-placement agreement for multi-root worker fleets (§5.2–5.3).

Hillview's web server is stateless: many roots can serve one worker
cluster, which is what lets the system scale to many simultaneous users.
For that to be *correct*, every root must agree on the fleet's slicing —
which worker owns shard slice ``index`` of ``count``.  A root that
invented its own assignment (say, by the order its ``--worker-address``
flags happened to be written) would silently reconfigure workers under
another root's feet: datasets already loaded under the old slicing would
replay their lineage against a different slice and produce wrong answers
without any error.

The registry is therefore *worker-resident* and sticky:

* each worker daemon remembers the first placement it was configured
  with and reports it over the ``placement`` RPC;
* an attaching root asks every worker for its placement and calls
  :func:`agree_placement` — adopting the fleet's existing assignment
  when there is one, or minting the canonical assignment (workers sorted
  by address) when the fleet is fresh, so any two roots compute the same
  bytes;
* a worker rejects a conflicting ``configure`` (code
  ``placement_conflict``) instead of silently re-slicing.

:func:`parse_fleet_spec` turns the ``repro serve --join`` argument into
the address list both of those steps consume.

Placements are **versioned** so a placed fleet can change size at
runtime (grow/shrink with shard re-balancing): every rebalance bumps the
fleet's placement version and re-pins each worker's slice, every
dataset-touching RPC carries the version its root believes in, and a
worker rejects a stale-versioned request (:class:`StalePlacementError`,
retryable) so the root re-reads the fleet's placement — including its
*membership*, which each worker reports alongside its slice — and
retries on the new assignment.  In-flight requests admitted under the
old version drain against the old slicing before a commit re-keys any
worker's shard store, so results stay byte-identical throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HillviewError


class PlacementError(HillviewError):
    """The fleet's reported placements cannot be reconciled.

    ``retryable`` marks the transient case — a fleet *being* placed by
    another root right now — which an attaching root should re-query
    rather than treat as fatal.
    """

    code = "placement_conflict"
    retryable = False


class StalePlacementError(PlacementError):
    """The fleet rebalanced since this root last read the placement.

    Always retryable: the root re-queries the fleet (adopting any
    membership change) and re-issues the request under the new version.
    """

    code = "stale_placement"
    retryable = True


def format_address(address: "tuple[str, int]") -> str:
    """The canonical ``host:port`` membership entry for one worker."""
    host, port = address
    return f"{host}:{port}"


def parse_address(entry: str) -> tuple[str, int]:
    """Invert :func:`format_address` (also accepts bare ``:port``)."""
    host, _, port = str(entry).rpartition(":")
    try:
        return (host or "127.0.0.1", int(port))
    except ValueError:
        raise PlacementError(
            f"bad member address {entry!r}; expected host:port"
        ) from None


@dataclass(frozen=True)
class ShardPlacement:
    """One worker's slice assignment: ``index`` of ``count`` (§5.2).

    ``version`` counts fleet rebalances (0 = the initial placement);
    ``members`` — when the fleet is a set of dialable daemons — lists
    every member's ``host:port`` ordered by slice index, so a root
    holding any one live connection can rediscover the whole fleet
    after a grow or shrink.
    """

    index: int
    count: int
    version: int = 0
    members: "tuple[str, ...] | None" = None

    def to_json(self) -> dict:
        data: dict = {
            "index": self.index,
            "count": self.count,
            "version": self.version,
        }
        if self.members is not None:
            data["members"] = list(self.members)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "ShardPlacement | None":
        if not isinstance(data, dict) or data.get("index") is None:
            return None
        members = data.get("members")
        return cls(
            int(data["index"]),
            int(data["count"]),
            int(data.get("version", 0) or 0),
            tuple(str(m) for m in members) if members else None,
        )


def canonical_order(addresses: list[tuple[str, int]]) -> list[int]:
    """The fresh-fleet assignment: positions sorted by (host, port).

    Returns, for each input position, the index that worker should own.
    Sorting by address (not argument order) is what makes two roots that
    list the same fleet in different orders mint identical placements.
    """
    by_address = sorted(range(len(addresses)), key=lambda i: addresses[i])
    assignment = [0] * len(addresses)
    for index, position in enumerate(by_address):
        assignment[position] = index
    return assignment


def agree_placement(
    addresses: list[tuple[str, int]],
    reported: "list[ShardPlacement | None]",
) -> list[int]:
    """Reconcile a fleet's reported placements into one slice assignment.

    ``addresses[i]`` and ``reported[i]`` describe the same worker; the
    result maps each position ``i`` to the shard index that worker must
    serve.  Three cases:

    * **fresh fleet** (no worker placed): mint the canonical assignment;
    * **placed fleet** (every worker placed, indices a permutation of
      ``0..n-1`` with matching count): adopt it verbatim;
    * anything else — a partially-configured fleet, duplicate indices, a
      count that disagrees with the fleet size — raises
      :class:`PlacementError`; guessing here risks silently re-slicing
      datasets another root already loaded.
    """
    if len(addresses) != len(reported):
        raise PlacementError(
            f"{len(addresses)} workers but {len(reported)} placements"
        )
    count = len(addresses)
    placed = [p for p in reported if p is not None]
    if not placed:
        return canonical_order(addresses)
    if len(placed) < count:
        missing = [
            f"{host}:{port}"
            for (host, port), p in zip(addresses, reported)
            if p is None
        ]
        error = PlacementError(
            f"fleet is partially placed: {', '.join(missing)} report no "
            "placement yet; another root may be configuring the fleet "
            "right now (retried automatically on attach)"
        )
        error.retryable = True
        raise error
    versions = {p.version for p in placed}
    if len(versions) > 1:
        # A rebalance is committing worker by worker right now; the
        # fleet will settle on one version momentarily.
        error = PlacementError(
            f"fleet reports mixed placement versions {sorted(versions)}; "
            "a rebalance is in progress (retried automatically on attach)"
        )
        error.retryable = True
        raise error
    counts = {p.count for p in placed}
    if counts != {count}:
        raise PlacementError(
            f"fleet reports slice count(s) {sorted(counts)} but this root "
            f"attached {count} workers; the address list does not match "
            "the fleet that was placed"
        )
    indices = [p.index for p in placed]
    if sorted(indices) != list(range(count)):
        raise PlacementError(
            f"fleet reports slice indices {sorted(indices)}; expected a "
            f"permutation of 0..{count - 1}"
        )
    return indices


# ---------------------------------------------------------------------------
# Rebalancing: which shard slices move when the fleet changes size
# ---------------------------------------------------------------------------
def slice_of(global_index: int, count: int) -> int:
    """The slice owning global shard ``global_index`` in a fleet of
    ``count`` workers — the same round-robin striping as
    ``DataSource.load_slice`` (worker ``i`` holds ``load()[i::count]``)."""
    return global_index % count


def global_indices(index: int, count: int, shards: int) -> list[int]:
    """The global shard indices worker ``index`` of ``count`` holds for a
    dataset with ``shards`` resident local shards, in local order."""
    return [index + p * count for p in range(shards)]


def expected_slice(index: int, count: int, total: int) -> list[int]:
    """Every global shard index slice ``index`` of ``count`` must hold
    for a dataset of ``total`` shards, ascending."""
    return list(range(index, total, count))


def plan_moves(
    resident: "list[list[int]]",
    new_indices: "list[int | None]",
    new_count: int,
) -> "dict[tuple[int, int], list[int]]":
    """The minimal shard movement for one dataset across a rebalance.

    ``resident[i]`` lists the global shard indices old worker position
    ``i`` currently holds; ``new_indices[i]`` is that worker's slice
    index in the *new* assignment (``None`` for a worker being removed).
    Returns ``{(old_position, new_owner_index): [global indices]}`` for
    every shard whose owner changes — shards staying put are omitted, so
    a grow streams only the slices that actually move (§6 deployment,
    made elastic).
    """
    if len(resident) != len(new_indices):
        raise PlacementError(
            f"{len(resident)} inventories but {len(new_indices)} new indices"
        )
    moves: "dict[tuple[int, int], list[int]]" = {}
    for position, globals_held in enumerate(resident):
        keeps = new_indices[position]
        for g in sorted(globals_held):
            owner = slice_of(g, new_count)
            if owner == keeps:
                continue  # stays put
            moves.setdefault((position, owner), []).append(g)
    return moves


def parse_fleet_spec(spec: str) -> list[tuple[str, int]]:
    """Parse a ``--join`` fleet spec into worker addresses.

    Two forms:

    * ``host:port,host:port,...`` — inline, comma-separated;
    * ``@path`` — a file with one ``host:port`` per line (``#`` comments
      and blank lines ignored).  Lines may also be the JSON announcement
      a ``repro worker --listen`` daemon prints (``{"worker": ...,
      "port": N}``), so a fleet file can be built by redirecting daemon
      stdout.
    """
    entries: list[str]
    if spec.startswith("@"):
        try:
            with open(spec[1:], "r", encoding="utf-8") as handle:
                entries = handle.readlines()
        except OSError as exc:
            raise PlacementError(f"cannot read fleet file {spec[1:]!r}: {exc}")
    else:
        entries = spec.split(",")
    addresses: list[tuple[str, int]] = []
    for raw in entries:
        entry = raw.strip()
        if not entry or entry.startswith("#"):
            continue
        if entry.startswith("{"):
            import json

            try:
                announcement = json.loads(entry)
                addresses.append(
                    (
                        str(announcement.get("host", "127.0.0.1")),
                        int(announcement["port"]),
                    )
                )
                continue
            except (ValueError, KeyError) as exc:
                raise PlacementError(
                    f"bad worker announcement {entry!r}: {exc}"
                )
        host, _, port = entry.rpartition(":")
        try:
            addresses.append((host or "127.0.0.1", int(port)))
        except ValueError:
            raise PlacementError(
                f"bad fleet entry {entry!r}; expected host:port"
            ) from None
    if not addresses:
        raise PlacementError(f"fleet spec {spec!r} names no workers")
    return addresses
