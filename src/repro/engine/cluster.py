"""The multi-server cluster engine (paper §5.2–5.8).

A :class:`Cluster` owns a set of workers — each one server of the paper's
deployment — behind the :class:`WorkerProtocol` interface.  Two
implementations exist:

* :class:`Worker` (this module): in-process, a soft object store plus a
  leaf thread pool; the default, used by tests and single-machine serving;
* :class:`~repro.engine.remote.RemoteWorkerProxy`: a worker living in a
  separate OS process (or machine), spoken to over uvarint-framed JSON —
  see :class:`~repro.engine.remote.ProcessCluster`.

Sketch execution follows the paper's tree regardless of substrate:

* the root broadcasts the query with the dataset's redo-log lineage; every
  worker materializes its shards (replaying lineage if its soft state is
  gone, §5.7);
* each worker's thread pool runs ``summarize`` per micropartition and the
  worker (acting as its aggregation node) merges locally, forwarding a
  cumulative partial to the root at the aggregation cadence (0.1 s in the
  paper);
* the root merges the latest partial from every worker and streams
  progressively better results to the client, counting received bytes.

A worker that dies mid-sketch is revived (see ``Cluster.revive_worker``)
and its stream re-run from scratch; because every partial is *cumulative*,
the root simply replaces that worker's contribution and the final merge is
still exact (§5.8).

Deterministic sketch results are served from the multi-tier memoization
subsystem (§5.4): whole results from the root's computation cache, and
per-worker cumulative partials from each worker's memo cache — keyed by
content-addressed dataset id and shard slice, so on a shared fleet a
sketch computed for one root is served from the worker cache to every
other root (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import hashlib
import itertools
import json
import os
import queue
import threading
import time
import uuid
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Sequence, TypeVar

from repro.core.sketch import Sketch
from repro.engine.cache import (
    KEY_SEP,
    ComputationCache,
    DataCache,
    MemoCache,
    caches_disabled,
    summary_size,
)
from repro.engine.dataset import IDataSet, TableMap
from repro.engine.placement import (
    PlacementError,
    StalePlacementError,
    plan_moves,
)
from repro.engine.progress import CancellationToken, PartialResult, SketchRun
from repro.engine.redo_log import LoadOp, MapOp, RedoLog
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceContext, current_context, span, use_context
from repro.errors import (
    DatasetMissingError,
    EngineError,
    HillviewError,
    WorkerUnavailableError,
)
from repro.storage.loader import DataSource
from repro.table.schema import Schema
from repro.table.table import Table

R = TypeVar("R")

#: How many times the root re-runs a worker's stream after revival before
#: giving up on the query (§5.8: repeated failures surface to the client).
MAX_WORKER_RETRIES = 3

#: How many times a root re-syncs and retries after a worker rejects a
#: stale-versioned request before surfacing the failure.  Each retry
#: re-reads the fleet's placement, so this bounds how many back-to-back
#: rebalances a single query can ride out.
MAX_PLACEMENT_RETRIES = 8

#: A straggler must have at least this many unstarted shards before an
#: idle peer bothers claiming any — below this, letting the victim
#: finish beats the claim round-trip.
STEAL_MIN_PENDING = 2

#: Upper bound on shards moved by one claim.  Thieves loop (another
#: claim fires as each one returns), so a small cap keeps claims cheap
#: and lets several idle peers share one straggler's backlog.
STEAL_MAX_BUDGET = 8


def steal_enabled() -> bool:
    """Work stealing is on unless ``REPRO_STEAL=0``.

    Read per fan-out, not at import, so tests (and the byte-identity
    benchmarks) can flip modes inside one process.
    """
    return os.environ.get("REPRO_STEAL", "1") != "0"


def steal_after_seconds(aggregation_interval: float) -> float:
    """How long a fan-out must run before claims are considered.

    The gate separates stragglers from ordinary skew: in a balanced
    sub-second run every worker finishes within a cadence or two, and a
    claim would only add round-trips — worse, the ceded worker can no
    longer memoize its slice partial (it never folded the whole slice),
    which would defeat the §5.4 warm path for every later query.
    ``REPRO_STEAL_AFTER`` (seconds) overrides for tests and benchmarks.
    """
    raw = os.environ.get("REPRO_STEAL_AFTER")
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            pass
    return max(2 * aggregation_interval, 0.25)


#: Default byte budget for prewarming a joining worker's memo cache
#: from its peers' hot entries (summaries are tiny — §5.4 — so a few
#: megabytes covers hundreds of sketches).
PREWARM_BUDGET_BYTES = 4 * 1024 * 1024


def prewarm_budget_bytes() -> int:
    """How many summary bytes of hot memo entries a joiner replicates.

    ``REPRO_PREWARM_BYTES`` overrides (0 disables prewarming); read per
    resize, not at import, so tests can flip it inside one process.
    """
    raw = os.environ.get("REPRO_PREWARM_BYTES")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return PREWARM_BUDGET_BYTES


@dataclass
class WorkerEmission:
    """One cumulative partial emitted by a worker's aggregation node.

    ``cache_hit`` marks a partial served whole from the worker's memo
    cache — no shard was scanned to produce it (§5.4 at the worker tier).
    """

    summary: object
    shards_done: int
    bytes: int
    cache_hit: bool = False


@dataclass
class StolenParcel:
    """One shard slice ceded by a straggler to an idle peer.

    In-process fleets pass the shard as an object reference; over the
    wire it travels as serialized bytes and :meth:`resolve` decodes it
    lazily on whichever side ends up summarizing (the thief daemon, or
    the root as a last-resort fallback).
    """

    global_index: int
    table: Table | None = None
    payload: bytes | None = None
    shard_id: str | None = None

    def resolve(self) -> Table:
        if self.table is None:
            if self.payload is None:
                raise EngineError(
                    f"stolen shard {self.global_index} carries no data"
                )
            from repro.storage.columnar import table_from_bytes

            self.table = table_from_bytes(
                self.payload,
                shard_id=self.shard_id or f"stolen-{self.global_index}",
            )
        return self.table


class StealLedger:
    """A claim handle onto one in-flight :meth:`Worker.sketch_partials`.

    The leaf pool starts micropartitions in submission order, so the
    started set is always a *prefix* of the shard list and the
    cancellable set a contiguous *suffix*.  :meth:`cede` cancels from
    the tail toward the front — a ``Future.cancel()`` that returns True
    guarantees the leaf never ran — so the victim's final cumulative
    partial stays a left fold over an uninterrupted prefix, and the
    stolen suffix can be folded on top of it in global shard order to
    reproduce the uninterrupted run byte for byte.
    """

    def __init__(
        self,
        worker: "Worker",
        futures: "list[concurrent.futures.Future]",
        shards: "list[Table]",
    ):
        self._worker = worker
        self._futures = futures
        self._shards = shards
        # Serializes concurrent claims: cancel() on an already-cancelled
        # future also returns True, so two unlocked thieves could both
        # believe they own one position.
        self._lock = threading.Lock()

    def cede(self, budget: int) -> "list[StolenParcel]":
        """Cancel up to ``budget`` unstarted trailing shards; returns
        their parcels in ascending position order (possibly empty)."""
        taken: list[int] = []
        with self._lock:
            for position in range(len(self._futures) - 1, -1, -1):
                if len(taken) >= budget:
                    break
                future = self._futures[position]
                if future.cancelled():
                    continue  # ceded to an earlier claim
                if not future.cancel():
                    break  # started (or done) — so is everything earlier
                taken.append(position)
        taken.reverse()
        self._worker.slices_donated += len(taken)
        worker = self._worker
        return [
            StolenParcel(
                global_index=worker.index + position * worker.count,
                table=self._shards[position],
            )
            for position in taken
        ]


class WorkerProtocol(ABC):
    """One server of the cluster, local or remote (§5.2).

    ``lineage`` arguments carry the dataset's redo-log chain (LoadOp then
    MapOps, in application order) so the worker can rebuild any soft state
    it lost without calling back into the root (§5.7).
    """

    name: str
    cores: int

    @abstractmethod
    def configure(
        self, index: int, count: int, aggregation_interval: float
    ) -> None:
        """Assign this worker its shard slice (index of count) and cadence."""

    @abstractmethod
    def load_source(self, dataset_id: str, source: DataSource) -> int:
        """Load the source and keep this worker's slice; returns shard count."""

    @abstractmethod
    def ensure(self, dataset_id: str, lineage: list) -> int:
        """Materialize the dataset (replaying lineage); returns shard count."""

    @abstractmethod
    def shard_rows(self, dataset_id: str, lineage: list) -> int:
        """Total rows across this worker's shards of the dataset."""

    @abstractmethod
    def shard_schema(self, dataset_id: str, lineage: list) -> Schema | None:
        """The dataset's schema, or None when this worker holds no shards."""

    @abstractmethod
    def sketch_partials(
        self,
        dataset_id: str,
        sketch: Sketch,
        lineage: list,
        token: CancellationToken | None = None,
        on_ledger=None,
    ) -> Iterator[WorkerEmission]:
        """Run the sketch over this worker's shards, yielding cumulative
        partials at the aggregation cadence; the final emission reflects
        every shard the worker summarized itself.

        ``on_ledger``, when given, receives a :class:`StealLedger`-like
        handle (``cede(budget) -> list[StolenParcel]``) as soon as the
        run's leaf tasks are queued, letting the root reassign unstarted
        trailing shards to an idle peer mid-sketch.  Implementations
        that cannot be stolen from simply never call it.
        """

    @abstractmethod
    def evict(self, dataset_id: str) -> None:
        """Drop this worker's shards of one dataset (soft state)."""

    @abstractmethod
    def crash(self) -> None:
        """Lose all soft state, as after a process restart (§5.8)."""

    def summarize_stolen(
        self, sketch: Sketch, parcels: "list[StolenParcel]"
    ) -> "list[tuple[int, object]] | None":
        """Summarize shard slices stolen from a straggling peer.

        Returns ``[(global_index, summary)]`` in parcel order, or None
        when this worker cannot act as a thief (the root then
        summarizes the parcels itself).
        """
        return None

    def export_hot_entries(self, budget_bytes: int) -> list[dict]:
        """Hot memo *recipes* (dataset + sketch + lineage JSON), most-hit
        first, cut off at roughly ``budget_bytes`` of summary payload.

        Recipes, not entries: memo keys embed the worker's shard slice,
        so a joiner on a resized fleet recomputes each recipe over its
        *own* slice instead of adopting another slice's bytes.
        """
        return []

    def import_entries(self, entries: list[dict]) -> int:
        """Eagerly recompute and memoize exported recipes (prewarming);
        returns how many entries were warmed.  Best-effort."""
        return 0

    def cache_stats(self) -> dict:
        """This worker's cache counters (shard store + sketch memo)."""
        return {"name": self.name}

    def metrics_snapshot(self) -> dict:
        """This worker's live metrics (queue depth, cache hit rates...)."""
        return {"name": self.name}

    def trace_dump(self, trace_id: str | None = None) -> list[dict]:
        """Spans recorded on this worker's side of the wire.

        In-process workers share the root's recorder (their spans are
        already in the root's buffer), so the default is empty; remote
        proxies fetch the daemon's ring buffer over the wire.
        """
        return []

    def inventory(self) -> dict[str, dict]:
        """Resident datasets: ``{id: {"shards": n, "loaded": bool}}``.

        Fleet rebalancing reads this to plan which shard slices move.
        ``loaded`` marks datasets materialized straight from a data
        source (dense tables): only those are safe to stream as bytes —
        derived datasets are views and replay instead.  The marking
        lives at the worker so a rebalance driven by an *administrative*
        root (whose redo log is empty) can still classify another root's
        datasets.  Workers that cannot report return ``{}`` and their
        datasets fall back to redo-log replay on the new slicing.
        """
        return {}

    def sweep_caches(self) -> int:
        """Purge TTL-expired cache entries; returns how many were dropped.

        Remote workers sweep themselves on their own daemon-side timer,
        so the proxy default is a no-op.
        """
        return 0

    def close(self) -> None:
        """Release resources (sockets, subprocesses); local workers no-op."""


class Worker(WorkerProtocol):
    """One in-process server: a soft object store plus a leaf pool (§5.2)."""

    def __init__(
        self,
        name: str,
        cores: int = 4,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
        memo_entries: int = 4096,
        memo_bytes: int = 32 * 1024 * 1024,
        clock=time.monotonic,
    ):
        if cores < 1:
            raise ValueError("a worker needs at least one core")
        self.name = name
        self.cores = cores
        # The data cache: dataset id -> this worker's micropartitions.
        self.store: DataCache[list[Table]] = DataCache(
            max_entries=cache_entries,
            ttl_seconds=cache_ttl_seconds,
            clock=clock,
            name=f"{name}-store",
        )
        #: The worker tier of the computation cache (§5.4): cumulative
        #: *partial* sketch results keyed by (content-addressed dataset id,
        #: sketch cache key, this worker's shard slice).  On a shared
        #: fleet, a deterministic sketch computed for one root is served
        #: from here to every other root — zero shard scans.
        self.memo: MemoCache[tuple[object, int]] = MemoCache(
            max_entries=memo_entries,
            max_bytes=memo_bytes,
            ttl_seconds=cache_ttl_seconds,
            clock=clock,
            sizer=lambda entry: summary_size(entry[0]),
            name=f"{name}-memo",
            disableable=True,
        )
        #: Dataset ids whose resident shards came straight from a data
        #: source (LoadOp materializations — dense tables).  Rebalances
        #: stream only these as bytes; derived datasets are views whose
        #: serialization would flatten membership, so they replay.
        self._loaded: set[str] = set()
        self.crashes = 0
        self.shards_summarized = 0
        #: Work-stealing traffic: slices this worker summarized for a
        #: straggling peer, and slices it ceded to idle peers.
        self.slices_stolen = 0
        self.slices_donated = 0
        #: Memo entries eagerly recomputed from another worker's hot
        #: list when this worker joined or was restriped (prewarming).
        self.entries_warmed = 0
        #: Recipes behind live memo entries: memo key -> {dataset,
        #: sketch, lineage, hits}.  A recipe (not the summary bytes) is
        #: what prewarming exports — the importer's memo key embeds a
        #: different shard slice, so it recomputes rather than copies.
        self._recipes: dict[str, dict] = {}
        self._recipes_lock = threading.Lock()
        self.index = 0
        self.count = 1
        self.aggregation_interval = 0.1

    # -- configuration --------------------------------------------------
    def configure(
        self, index: int, count: int, aggregation_interval: float
    ) -> None:
        self.index = index
        self.count = count
        self.aggregation_interval = aggregation_interval

    # -- soft object store ----------------------------------------------
    def fetch(self, dataset_id: str) -> list[Table]:
        """This worker's shards of ``dataset_id``; raises if evicted."""
        shards = self.store.get(dataset_id)
        if shards is None:
            raise DatasetMissingError(dataset_id, self.name)
        return shards

    def put(
        self, dataset_id: str, shards: list[Table], loaded: bool = False
    ) -> None:
        self.store.put(dataset_id, shards)
        if loaded:
            self._loaded.add(dataset_id)
        else:
            self._loaded.discard(dataset_id)

    def evict(self, dataset_id: str) -> None:
        self.store.evict(dataset_id)
        self._loaded.discard(dataset_id)
        # The invalidation invariant: evicting a dataset drops every
        # dependent memoized partial at this tier too.
        self.memo.invalidate_prefix(dataset_id + KEY_SEP)

    def crash(self) -> None:
        """Lose all soft state, as after a process restart (§5.8)."""
        self.store.clear()
        self.memo.clear()
        self._loaded.clear()
        with self._recipes_lock:
            self._recipes.clear()
        self.crashes += 1

    def cache_stats(self) -> dict:
        return {
            "name": self.name,
            "store": self.store.stats().to_json(),
            "memo": self.memo.stats().to_json(),
            "shardsSummarized": self.shards_summarized,
        }

    def metrics_snapshot(self) -> dict:
        store = self.store.stats()
        memo = self.memo.stats()
        return {
            "name": self.name,
            "cores": self.cores,
            "shardsSummarized": self.shards_summarized,
            "crashes": self.crashes,
            "datasets": store.entries,
            "storeHitRate": round(store.hit_rate, 4),
            "memoHitRate": round(memo.hit_rate, 4),
            "memoBytes": memo.bytes,
            "slicesStolen": self.slices_stolen,
            "slicesDonated": self.slices_donated,
            "entriesWarmed": self.entries_warmed,
        }

    def inventory(self) -> dict[str, dict]:
        # peek, not get: a monitoring loop polling `fleet status` must
        # not refresh recency/TTL or inflate hit counters.
        return {
            dataset_id: {
                "shards": len(shards),
                "loaded": dataset_id in self._loaded,
            }
            for dataset_id in self.store.keys()
            if (shards := self.store.peek(dataset_id)) is not None
        }

    def rebalance_store(
        self,
        new_index: int,
        new_count: int,
        totals: dict[str, int],
        adopted: "dict[str, dict[int, Table]] | None" = None,
    ) -> dict[str, int]:
        """Re-key this worker's shard store for a new slice assignment.

        The caller must :meth:`configure` the new slice afterwards —
        this method reads ``self.index``/``self.count`` as the *old*
        assignment to locate kept shards.  ``totals`` maps each
        *transferred* dataset to its global shard count; ``adopted``
        holds shards streamed in from other workers, keyed by global
        index.  For each transferred dataset the worker
        keeps its still-owned shards (global index ≡ new slice), merges
        the adopted ones, and stores the result in ascending global
        order — byte-identical to what ``load_slice(new_index,
        new_count)`` would have produced.  A dataset that ends up
        incomplete (a transfer failed, a source worker had gone cold) is
        dropped instead: redo-log replay rebuilds it on first use
        (§5.7), which is always correct and merely slower.  Datasets not
        listed in ``totals`` (derived datasets, another root's datasets
        this root cannot classify) are evicted for the same replay
        fallback.  Returns ``{dataset_id: resident shard count}`` after
        the re-key.
        """
        adopted = adopted or {}
        old_index, old_count = self.index, self.count
        kept: dict[str, int] = {}
        for dataset_id in self.store.keys():
            if dataset_id not in totals:
                self.evict(dataset_id)
        for dataset_id, total in totals.items():
            by_global: dict[int, Table] = dict(adopted.get(dataset_id, {}))
            resident = self.store.get(dataset_id)
            if resident is not None:
                for position, shard in enumerate(resident):
                    g = old_index + position * old_count
                    if g % new_count == new_index:
                        by_global.setdefault(g, shard)
            expected = list(range(new_index, total, new_count))
            if sorted(by_global) != expected:
                # Incomplete slice: drop it, lineage replay rebuilds.
                self.evict(dataset_id)
                continue
            # Transferred datasets are loads by construction (only dense
            # LoadOp materializations qualify for transfer), and must
            # stay marked so the *next* rebalance can move them again.
            self.put(
                dataset_id, [by_global[g] for g in expected], loaded=True
            )
            kept[dataset_id] = len(expected)
        return kept

    def sweep_caches(self) -> int:
        """The paper's "unused for 2 hours → purged" behavior, for real:
        drop TTL-expired shards and memoized partials."""
        return self.store.purge_stale() + self.memo.purge_stale()

    # -- materialization (replay, §5.7) ---------------------------------
    def shards(self, dataset_id: str, lineage: list) -> list[Table]:
        """This worker's shards, replaying redo-log lineage when evicted.

        Replay walks the lineage from the load op forward, re-applying maps
        (§5.7: "the recursion ends when data is read from disk").
        """
        try:
            return self.fetch(dataset_id)
        except DatasetMissingError:
            pass
        shards: list[Table] | None = None
        for op in lineage:
            if isinstance(op, LoadOp):
                try:
                    shards = self.fetch(op.dataset_id)
                    continue
                except DatasetMissingError:
                    shards = op.source.load_slice(self.index, self.count)
            elif isinstance(op, MapOp):
                assert shards is not None
                try:
                    shards = self.fetch(op.dataset_id)
                    continue
                except DatasetMissingError:
                    shards = [op.table_map.apply(shard) for shard in shards]
            self.put(op.dataset_id, shards, loaded=isinstance(op, LoadOp))
        if shards is None:
            raise DatasetMissingError(dataset_id, self.name)
        return shards

    def load_source(self, dataset_id: str, source: DataSource) -> int:
        # Content-addressed ids make this idempotent: when another root of
        # a shared fleet (or an earlier session) already loaded the same
        # source, the resident shards are byte-identical by construction.
        resident = self.store.get(dataset_id)
        if resident is not None:
            return len(resident)
        shards = source.load_slice(self.index, self.count)
        self.put(dataset_id, shards, loaded=True)
        return len(shards)

    def ensure(self, dataset_id: str, lineage: list) -> int:
        return len(self.shards(dataset_id, lineage))

    def shard_rows(self, dataset_id: str, lineage: list) -> int:
        return sum(s.num_rows for s in self.shards(dataset_id, lineage))

    def shard_schema(self, dataset_id: str, lineage: list) -> Schema | None:
        shards = self.shards(dataset_id, lineage)
        return shards[0].schema if shards else None

    # -- sketch execution (leaf pool + aggregation cadence) --------------
    def _memo_key(self, dataset_id: str, cache_key: str) -> str:
        """Keyed by (dataset, sketch, shard slice): a reconfigured worker
        must never serve partials computed over a different slice."""
        return (
            f"{dataset_id}{KEY_SEP}{cache_key}{KEY_SEP}"
            f"{self.index}/{self.count}"
        )

    def sketch_partials(
        self,
        dataset_id: str,
        sketch: Sketch,
        lineage: list,
        token: CancellationToken | None = None,
        on_ledger=None,
    ) -> Iterator[WorkerEmission]:
        memo_key = None
        cache_key = sketch.cache_key()
        if cache_key is not None:
            memo_key = self._memo_key(dataset_id, cache_key)
            memoized = self.memo.get(memo_key)
            if memoized is not None:
                with self._recipes_lock:
                    recipe = self._recipes.get(memo_key)
                    if recipe is not None:
                        recipe["hits"] += 1
                summary, shard_count = memoized
                yield WorkerEmission(
                    summary,
                    shard_count,
                    summary.serialized_size()
                    if hasattr(summary, "serialized_size")
                    else 0,
                    cache_hit=True,
                )
                return
        shards = self.shards(dataset_id, lineage)
        interval = self.aggregation_interval
        leaf_ctx = current_context()

        def leaf(shard: Table) -> object | None:
            # Cancellation removes queued micropartitions only (§5.3).
            if token is not None and token.cancelled:
                return None
            self.shards_summarized += 1
            # Pool threads see no thread-local trace context; restore the
            # spawning thread's so leaf-side log records correlate.
            with use_context(leaf_ctx):
                return sketch.summarize(shard)

        accumulated = sketch.zero()
        done = 0
        pending_since_emit = 0
        last_emit = time.monotonic()
        failure: BaseException | None = None
        ceded = False
        with concurrent.futures.ThreadPoolExecutor(self.cores) as pool:
            futures = [pool.submit(leaf, shard) for shard in shards]
            if on_ledger is not None and len(shards) > 1:
                on_ledger(StealLedger(self, futures, shards))
            # Merge in *shard* order, not completion order: Misra-Gries
            # (and any non-commutative merge) must produce the same bytes
            # no matter which leaf thread finishes first — the memo and
            # the cross-root computation cache both rely on it.
            for future in futures:
                try:
                    summary = future.result()
                except concurrent.futures.CancelledError:
                    # This position (and, because cedes take contiguous
                    # suffixes, every later one) went to an idle peer:
                    # the cumulative partial so far covers exactly the
                    # prefix this worker kept.
                    ceded = True
                    break
                except Exception as exc:  # repro: ignore[B001] — not swallowed: re-raised after the pool drains
                    # A leaf failed (bad column, broken expression...):
                    # drop this worker's remaining shards and surface
                    # the failure at the root instead of dying silently.
                    failure = exc
                    for pending in futures:
                        pending.cancel()
                    break
                done += 1
                if summary is not None:
                    accumulated = sketch.merge(accumulated, summary)
                    pending_since_emit += 1
                now = time.monotonic()
                finished = done == len(shards)
                if pending_since_emit and (
                    now - last_emit >= interval or finished
                ):
                    yield WorkerEmission(
                        accumulated,
                        done,
                        accumulated.serialized_size()
                        if hasattr(accumulated, "serialized_size")
                        else 0,
                    )
                    pending_since_emit = 0
                    last_emit = now
        if failure is not None:
            raise failure
        if ceded and pending_since_emit:
            # Shards folded since the last cadence emission must still
            # reach the root — its slice fold resumes from this exact
            # prefix partial before appending the stolen summaries.
            yield WorkerEmission(
                accumulated,
                done,
                accumulated.serialized_size()
                if hasattr(accumulated, "serialized_size")
                else 0,
            )
        if (
            memo_key is not None
            and shards
            and done == len(shards)
            and not (token is not None and token.cancelled)
        ):
            # Every shard was summarized into the cumulative partial:
            # memoize it for the next root (or session) asking for the
            # same deterministic sketch over the same dataset slice.
            self.memo.put(memo_key, (accumulated, len(shards)))
            if memo_key in self.memo:  # dropped when caches are disabled
                with self._recipes_lock:
                    hits = self._recipes.get(memo_key, {}).get("hits", 0)
                    self._recipes[memo_key] = {
                        "dataset": dataset_id,
                        "sketch": sketch,
                        "lineage": lineage,
                        "hits": hits,
                    }

    def summarize_stolen(
        self, sketch: Sketch, parcels: "list[StolenParcel]"
    ) -> "list[tuple[int, object]]":
        """Act as the thief: summarize another worker's ceded slices.

        Per-shard summaries come back individually (never pre-merged) —
        the root appends them to the victim's prefix fold in global
        shard order, which keeps the fold tree identical to an
        uninterrupted run.  Nothing here touches this worker's memo:
        memoized partials are keyed by *its own* slice.
        """
        if not parcels:
            return []
        ctx = current_context()

        def leaf(parcel: StolenParcel) -> object:
            self.shards_summarized += 1
            with use_context(ctx):
                return sketch.summarize(parcel.resolve())

        with concurrent.futures.ThreadPoolExecutor(self.cores) as pool:
            summaries = list(pool.map(leaf, parcels))
        self.slices_stolen += len(parcels)
        return [
            (parcel.global_index, summary)
            for parcel, summary in zip(parcels, summaries)
        ]

    # -- memo prewarming (elastic fleets) --------------------------------
    def export_hot_entries(self, budget_bytes: int) -> list[dict]:
        """The hottest live memo recipes, as wire-ready JSON dicts.

        Ranked by hit count (ties broken by key for determinism) and cut
        off once the *summaries* behind them exceed ``budget_bytes`` —
        the recipes themselves are a few hundred bytes of JSON; the
        budget bounds the recompute a joiner signs up for in terms of
        the result bytes it ends up caching.
        """
        from repro.engine.rpc import lineage_to_json, sketch_to_json

        with self._recipes_lock:
            recipes = dict(self._recipes)
        ranked: "list[tuple[int, str, dict, int]]" = []
        for memo_key, recipe in recipes.items():
            entry = self.memo.peek(memo_key)
            if entry is None:
                with self._recipes_lock:
                    self._recipes.pop(memo_key, None)
                continue
            summary, _ = entry
            ranked.append(
                (recipe["hits"], memo_key, recipe, summary_size(summary))
            )
        ranked.sort(key=lambda item: (-item[0], item[1]))
        exported: list[dict] = []
        spent = 0
        for hits, _, recipe, size in ranked:
            if exported and spent + size > budget_bytes:
                break
            spent += size
            exported.append(
                {
                    "dataset": recipe["dataset"],
                    "sketch": sketch_to_json(recipe["sketch"]),
                    "lineage": lineage_to_json(recipe["lineage"]),
                    "hits": hits,
                    "bytes": size,
                }
            )
        return exported

    def import_entries(self, entries: list[dict]) -> int:
        """Prewarm: recompute each exported recipe over this worker's own
        shard slice, memoizing the partial so the first real query hits.

        Best-effort by design — a recipe whose dataset cannot be
        replayed here (source gone, sketch type unknown) is skipped, not
        fatal: prewarming is an optimization, never a correctness step.
        """
        from repro.engine.rpc import lineage_from_json, sketch_from_json

        warmed = 0
        for entry in entries:
            try:
                sketch = sketch_from_json(entry["sketch"])
                lineage = lineage_from_json(entry["lineage"])
                dataset_id = str(entry["dataset"])
                for _ in self.sketch_partials(dataset_id, sketch, lineage):
                    pass
            except (HillviewError, KeyError, TypeError, ValueError):
                # Prewarm is best-effort; a failed recipe (source gone,
                # unknown sketch, malformed entry) only means a cold
                # first query on this worker.
                continue
            warmed += 1
        self.entries_warmed += warmed
        return warmed

    def __repr__(self) -> str:
        return f"<Worker {self.name} cores={self.cores}>"


@dataclass
class _Emission:
    """One message on the root's single merge queue.

    ``kind`` discriminates: ``partial``/``done`` are the classic worker
    stream (``summary is None`` still marks completion), ``ledger``
    hands the root a steal handle for the attempt that just started,
    ``restart`` announces a revived worker re-running from scratch (its
    stolen results must be discarded — the fresh run recomputes every
    shard), and ``stolen`` delivers a thief's per-shard summaries.
    Routing them all through one queue gives the root a total order per
    worker: a ledger can never be observed before its run's restart
    marker.
    """

    worker_index: int
    summary: object | None  # None marks worker completion
    shards_done: int
    bytes: int
    error: BaseException | None = None  # a leaf failure, reported at the root
    cache_hit: bool = False  # served from the worker's memo cache
    kind: str = "partial"
    ledger: object | None = None  # kind="ledger": the steal handle
    stolen: "list[tuple[int, object]] | None" = None  # kind="stolen"
    epoch: int = 0  # steal epoch the stolen summaries belong to
    thief: int | None = None  # kind="stolen": the slot that did the work


class Cluster:
    """A set of workers, the root's redo log, and the computation cache."""

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 4,
        aggregation_interval: float = 0.1,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
        workers: Sequence[WorkerProtocol] | None = None,
    ):
        if workers is not None:
            self.workers: list[WorkerProtocol] = list(workers)
        else:
            if num_workers < 1:
                raise ValueError("a cluster needs at least one worker")
            self.workers = [
                Worker(
                    f"worker-{i}",
                    cores=cores_per_worker,
                    cache_entries=cache_entries,
                    cache_ttl_seconds=cache_ttl_seconds,
                )
                for i in range(num_workers)
            ]
        if not self.workers:
            raise ValueError("a cluster needs at least one worker")
        self.aggregation_interval = aggregation_interval
        #: Bumped by every grow/shrink; remote proxies stamp it onto each
        #: dataset RPC so workers can reject requests from a root that
        #: has not yet adopted the current assignment.
        if not hasattr(self, "placement_version"):
            self.placement_version = 0
        #: The rebalance barrier: a grow/shrink waits for in-flight
        #: sketch streams to drain on the old placement, and blocks new
        #: streams for the (brief) duration of the re-key, so no stream
        #: ever observes a half-moved fleet.
        self._stream_gate = threading.Condition()
        self._active_streams = 0
        self._rebalancing = False
        self.rebalances = 0
        for index, worker in enumerate(self.workers):
            worker.configure(index, len(self.workers), aggregation_interval)
        self.redo_log = RedoLog()
        self.computation_cache = ComputationCache()
        #: dataset id -> total row count, behind the same cache interface
        #: as every other memo tier (stats-bearing, evictable, honors the
        #: disable switch).  Datasets are immutable once created, so a
        #: counted total stays valid across crash and redo-log replay;
        #: repeated rowCount queries skip the shard walk.  An explicit
        #: dataset eviction still invalidates the entry — the invariant
        #: "evicting a dataset drops its cache entries at every tier" is
        #: worth more than the saved recount.
        self.row_count_cache: MemoCache[int] = MemoCache(
            max_entries=65536,
            sizer=lambda _: 32,
            name="row-counts",
            disableable=True,
        )
        self.total_bytes_to_root = 0
        self._ids = itertools.count()
        #: Distinguishes this root's counter-minted ids from another
        #: root's on a shared worker fleet (content-addressed ids need no
        #: such qualifier: equal id means equal content by construction).
        self._root_nonce = uuid.uuid4().hex[:8]
        self._lock = threading.Lock()
        # Live gauges read the cluster; a later cluster in the same
        # process takes the callbacks over (one serving cluster per
        # daemon), mirroring the scheduler's depth gauges.
        REGISTRY.gauge(
            "cluster.workers",
            "workers in the current placement",
            callback=lambda: len(self.workers),
        )
        REGISTRY.gauge(
            "cluster.placement_version",
            "bumped by every grow/shrink",
            callback=lambda: self.placement_version,
        )
        REGISTRY.gauge(
            "cluster.rebalances",
            "completed grow/shrink operations",
            callback=lambda: self.rebalances,
        )

    def cached_row_count(self, dataset_id: str) -> int | None:
        return self.row_count_cache.get(dataset_id)

    def cache_row_count(self, dataset_id: str, rows: int) -> None:
        self.row_count_cache.put(dataset_id, rows)

    def cache_stats(self) -> dict:
        """Every cache tier's counters, for the ``cache_stats`` RPC."""
        workers = []
        for worker in self.workers:
            try:
                workers.append(worker.cache_stats())
            except (WorkerUnavailableError, EngineError) as exc:
                workers.append({"name": worker.name, "error": str(exc)})
        return {
            "disabled": caches_disabled(),
            "root": {
                "computation": self.computation_cache.stats().to_json(),
                "rowCounts": self.row_count_cache.stats().to_json(),
            },
            "workers": workers,
        }

    def metrics_snapshot(self) -> dict:
        """Fleet metrics for the ``metricsSnapshot`` RPC: root-side
        counters plus every worker's live snapshot (remote workers
        report their daemon's queue depth and registry; unreachable
        ones degrade to an error entry, like :meth:`cache_stats`)."""
        workers = []
        for worker in self.workers:
            try:
                workers.append(worker.metrics_snapshot())
            except (WorkerUnavailableError, EngineError) as exc:
                workers.append({"name": worker.name, "error": str(exc)})
        computation = self.computation_cache.stats()
        return {
            "placementVersion": self.placement_version,
            "rebalances": self.rebalances,
            "bytesToRoot": self.total_bytes_to_root,
            "computationHitRate": round(computation.hit_rate, 4),
            "workers": workers,
        }

    def trace_dump(self, trace_id: str | None = None) -> list[dict]:
        """Collect span records from every worker daemon's ring buffer.

        The root's own recorder is merged in at the service layer —
        in-process workers share it, so pulling it here would
        double-count their spans.
        """
        spans: list[dict] = []
        for worker in self.workers:
            try:
                spans.extend(worker.trace_dump(trace_id))
            except (WorkerUnavailableError, EngineError):
                continue
        return spans

    def sweep_caches(self) -> int:
        """Purge TTL-expired entries at every local tier; remote workers
        run their own daemon-side sweep.  Returns entries dropped."""
        purged = (
            self.computation_cache.purge_stale()
            + self.row_count_cache.purge_stale()
        )
        for worker in self.workers:
            try:
                purged += worker.sweep_caches()
            except (WorkerUnavailableError, EngineError):
                continue
        return purged

    # ------------------------------------------------------------------
    # Fleet elasticity: grow/shrink with shard re-balancing
    # ------------------------------------------------------------------
    def _enter_stream(self) -> None:
        """Register an in-flight sketch stream; blocks during a rebalance."""
        with self._stream_gate:
            while self._rebalancing:
                self._stream_gate.wait()
            self._active_streams += 1

    def _exit_stream(self) -> None:
        with self._stream_gate:
            self._active_streams -= 1
            self._stream_gate.notify_all()

    @contextlib.contextmanager
    def _stream_guard(self):
        """Gate for every whole-fleet operation (load, map, row counts,
        sketch fan-outs): counted so a rebalance can drain them, blocked
        while one is re-keying the fleet.  Must never nest on one thread
        — the rebalance waits for the count to reach zero."""
        self._enter_stream()
        try:
            yield
        finally:
            self._exit_stream()

    def _begin_rebalance(self, drain_timeout: float = 300.0) -> None:
        """Block new sketch streams and wait for in-flight ones to drain
        on the old placement — the barrier that keeps every stream's
        merge consistent with exactly one slice assignment."""
        with self._stream_gate:
            if self._rebalancing:
                raise PlacementError("a rebalance is already in progress")
            self._rebalancing = True
            deadline = time.monotonic() + drain_timeout
            while self._active_streams:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._rebalancing = False
                    self._stream_gate.notify_all()
                    raise PlacementError(
                        f"{self._active_streams} sketch stream(s) did not "
                        f"drain within {drain_timeout:.0f}s; rebalance aborted"
                    )
                self._stream_gate.wait(timeout=min(remaining, 0.5))

    def _end_rebalance(self) -> None:
        with self._stream_gate:
            self._rebalancing = False
            self._stream_gate.notify_all()

    def grow(self, workers: "int | Sequence[WorkerProtocol]") -> int:
        """Add workers to a live cluster, re-balancing resident shards.

        ``workers`` is a count of fresh in-process workers to mint, or
        concrete :class:`WorkerProtocol` instances.  Existing workers
        keep their slice indices (minimizing shard movement); the new
        ones take indices ``n..m-1``.  Returns the new worker count.
        """
        if isinstance(workers, int):
            if workers < 1:
                raise ValueError("grow needs at least one new worker")
            template = self.workers[0]
            # Mint names no current worker holds: after a shrink the
            # low indices may be gone but the high names survive, and a
            # duplicate name would break shrink-by-name later.
            taken = {w.name for w in self.workers}
            added: list[WorkerProtocol] = []
            candidate = len(self.workers)
            while len(added) < workers:
                name = f"worker-{candidate}"
                candidate += 1
                if name in taken:
                    continue
                taken.add(name)
                added.append(
                    Worker(
                        name,
                        cores=template.cores,
                        cache_entries=getattr(
                            getattr(template, "store", None), "max_entries", 64
                        ),
                    )
                )
        else:
            added = list(workers)
            if not added:
                raise ValueError("grow needs at least one new worker")
        old = list(self.workers)
        new_indices: "list[int | None]" = list(range(len(old)))
        self._rebalance(old, new_indices, old + added)
        self._prewarm_joiners(old, added)
        return len(self.workers)

    def _prewarm_joiners(
        self,
        donors: "Sequence[WorkerProtocol]",
        joiners: "Sequence[WorkerProtocol]",
    ) -> None:
        """Replicate hot memo entries onto workers that just joined.

        Donors export their most-hit memo *recipes* (byte-budgeted);
        each joiner recomputes them over its own new shard slice so its
        first real query is served from the memo instead of a cold scan.
        Runs after the placement commit (recipes key on the new slice)
        and entirely best-effort: an unreachable donor or joiner costs
        warmth, never correctness.  ``REPRO_PREWARM_BYTES=0`` disables.
        """
        budget = prewarm_budget_bytes()
        if not budget or not donors or not joiners:
            return
        entries: list[dict] = []
        seen: set[str] = set()
        for donor in donors:
            try:
                exported = donor.export_hot_entries(budget)
            except (WorkerUnavailableError, EngineError):
                continue
            for entry in exported:
                key = json.dumps(
                    {"d": entry.get("dataset"), "s": entry.get("sketch")},
                    sort_keys=True,
                )
                if key in seen:
                    continue
                seen.add(key)
                entries.append(entry)
        if not entries:
            return
        warmed_counter = REGISTRY.counter(
            "cluster.prewarm.entries",
            "memo entries eagerly recomputed on joining workers",
        )
        for joiner in joiners:
            try:
                warmed_counter.inc(joiner.import_entries(entries))
            except (WorkerUnavailableError, EngineError):
                continue

    def shrink(self, selectors: "Sequence[int | str]") -> int:
        """Remove workers, re-balancing their shards onto the survivors.

        ``selectors`` name workers by index or by name.  At least one
        worker must survive.  Returns the new worker count.
        """
        removed = set()
        for selector in selectors:
            removed.add(self._find_worker(selector))
        if not removed:
            raise ValueError("shrink needs at least one worker to remove")
        if len(removed) >= len(self.workers):
            raise PlacementError("cannot shrink a cluster to zero workers")
        old = list(self.workers)
        survivors = [w for i, w in enumerate(old) if i not in removed]
        new_indices: "list[int | None]" = []
        next_index = 0
        for i in range(len(old)):
            if i in removed:
                new_indices.append(None)
            else:
                new_indices.append(next_index)
                next_index += 1
        self._rebalance(old, new_indices, survivors)
        return len(self.workers)

    def _find_worker(self, selector: "int | str") -> int:
        if isinstance(selector, int):
            if not 0 <= selector < len(self.workers):
                raise PlacementError(f"no worker at index {selector}")
            return selector
        for index, worker in enumerate(self.workers):
            if worker.name == selector:
                return index
        raise PlacementError(f"no worker named {selector!r}")

    @staticmethod
    def _inventory_shards(inventory: dict, dataset_id: str) -> int:
        entry = inventory.get(dataset_id) or {}
        return int(entry.get("shards", 0))

    def _transferable_datasets(
        self, inventories: "list[dict[str, dict]]"
    ) -> dict[str, int]:
        """Datasets whose shards move as bytes during a rebalance.

        Only *loaded* datasets (every worker marks them as materialized
        straight from a data source) that are fully resident on every
        worker qualify: their shards are exactly the dense tables
        ``load_slice`` produces, so streaming them is byte-identical to
        reloading.  The marker is worker-resident, so an administrative
        root whose redo log never saw the dataset still transfers it.
        Derived datasets are dropped and replayed from their (moved)
        parents — re-applying a map in memory is cheap next to
        re-reading a source, and replay is the §5.7-correct fallback for
        everything else.  Returns ``{dataset_id: total shard count}``.
        """
        if not inventories:
            return {}
        candidates = set(inventories[0])
        for inventory in inventories[1:]:
            candidates &= set(inventory)
        totals: dict[str, int] = {}
        for dataset_id in candidates:
            if not all(
                (inv.get(dataset_id) or {}).get("loaded")
                for inv in inventories
            ):
                continue  # derived or unclassifiable; replay on demand
            totals[dataset_id] = sum(
                self._inventory_shards(inv, dataset_id) for inv in inventories
            )
        return totals

    def _collect_inventories(
        self, old: "list[WorkerProtocol]"
    ) -> "list[dict[str, dict]]":
        inventories = []
        for worker in old:
            try:
                inventories.append(dict(worker.inventory()))
            except (WorkerUnavailableError, EngineError):
                inventories.append({})
        return inventories

    def _rebalance(
        self,
        old: "list[WorkerProtocol]",
        new_indices: "list[int | None]",
        new_workers: "list[WorkerProtocol]",
    ) -> None:
        """The in-process rebalance: move shard references directly.

        :class:`~repro.engine.remote.ProcessCluster` overrides this with
        the wire protocol (``transferShards``/``adoptShards``/
        ``rebalanceCommit``); the plan computation and the barrier are
        shared.
        """
        self._begin_rebalance()
        try:
            new_count = len(new_workers)
            inventories = self._collect_inventories(old)
            totals = self._transferable_datasets(inventories)
            # Stage every moving shard (references; this is one process)
            # before mutating any store, then commit worker by worker.
            staged: "list[dict[str, dict[int, Table]]]" = [
                {} for _ in range(new_count)
            ]
            for dataset_id, total in totals.items():
                resident: "list[list[int]]" = []
                for position, worker in enumerate(old):
                    count = self._inventory_shards(
                        inventories[position], dataset_id
                    )
                    resident.append(
                        [worker.index + p * worker.count for p in range(count)]
                    )
                moves = plan_moves(resident, new_indices, new_count)
                for (position, owner), globals_moved in moves.items():
                    worker = old[position]
                    assert isinstance(worker, Worker)
                    shards = worker.store.get(dataset_id) or []
                    bucket = staged[owner].setdefault(dataset_id, {})
                    for g in globals_moved:
                        local = (g - worker.index) // worker.count
                        if 0 <= local < len(shards):
                            bucket[g] = shards[local]
            for index, worker in enumerate(new_workers):
                assert isinstance(worker, Worker)
                worker.rebalance_store(
                    index, new_count, totals, staged[index]
                )
                worker.configure(index, new_count, self.aggregation_interval)
            for position, new_index in enumerate(new_indices):
                if new_index is None:
                    old[position].crash()  # drop the removed worker's state
            self.workers = list(new_workers)
            self.placement_version += 1
            self.rebalances += 1
        finally:
            self._end_rebalance()

    def resync_placement(self, observed_version: int | None = None) -> bool:
        """Adopt the fleet's current placement after a stale rejection.

        ``observed_version`` is the placement version the caller was at
        when its request failed: if another thread already adopted a
        newer placement in the meantime, the retry is immediately
        worthwhile — without the witness, the second of two concurrent
        resyncs would wait for a version the fleet never reaches.

        In-process clusters are always in sync (the placement only
        changes through this object), so the base implementation
        reports "nothing to adopt"; :class:`ProcessCluster` re-reads
        the fleet.
        """
        return False

    def _with_placement_retries(self, fn):
        """Run ``fn`` (a whole-fleet operation), re-syncing placement and
        retrying when the fleet rebalanced underneath it."""
        attempts = 0
        while True:
            observed = self.placement_version
            try:
                return fn()
            except StalePlacementError:
                attempts += 1
                if attempts > MAX_PLACEMENT_RETRIES or not self.resync_placement(
                    observed
                ):
                    raise
                time.sleep(min(0.05 * attempts, 0.5))

    # ------------------------------------------------------------------
    # Dataset lifecycle
    # ------------------------------------------------------------------
    def _new_dataset_id(self, prefix: str) -> str:
        return f"{prefix}-{self._root_nonce}-{next(self._ids)}"

    @staticmethod
    def _content_id(description: str) -> str:
        return "ds-" + hashlib.sha1(description.encode("utf-8")).hexdigest()[:12]

    def _load_dataset_id(self, source: DataSource) -> str:
        """A content-addressed id for a loaded source.

        Dataset ids name *content*, not creation events: every root (and
        every session on every root) loading the same source derives the
        same id, so workers of a shared fleet hold one copy of the shards
        and the redo logs of independent roots agree byte-for-byte.  The
        hash covers the source's stable ``spec()`` — the same string the
        redo log and the session dataset pool already key on.
        """
        try:
            spec = source.spec()
        except Exception:  # repro: ignore[B001] — exotic sources fall back safely
            return self._new_dataset_id("ds")
        return self._content_id(f"load|{spec}")

    def _map_dataset_id(self, parent_id: str, table_map: TableMap) -> str:
        """A content-addressed id for a derived dataset.

        Only *declarative* maps (the ones that can cross the worker wire)
        are content-addressed: their JSON encoding is the content.  Maps
        carrying Python callables get a per-root unique id instead — two
        different lambdas can share a ``spec()`` string, and colliding
        their ids would silently serve one map's shards for the other.
        """
        from repro.engine.rpc import ProtocolError, table_map_to_json

        try:
            import json as json_mod

            encoded = json_mod.dumps(table_map_to_json(table_map), sort_keys=True)
        except ProtocolError:
            return self._new_dataset_id("ds")
        return self._content_id(f"map|{parent_id}|{encoded}")

    def lineage(self, dataset_id: str) -> list:
        """The redo-log chain workers replay to rebuild ``dataset_id``."""
        return self.redo_log.lineage(dataset_id)

    def load(self, source: DataSource) -> "ClusterDataSet":
        """Load a data source, distributing partitions over workers."""
        dataset_id = self._load_dataset_id(source)
        self.redo_log.record_load(dataset_id, source)
        with self._stream_guard():
            self._load_shards(dataset_id, source)
        return ClusterDataSet(self, dataset_id)

    def _load_shards(self, dataset_id: str, source: DataSource) -> None:
        if all(isinstance(w, Worker) for w in self.workers):
            # In-process fast path: load once at the root, hand each
            # worker its slice (identical to the slice it would compute).
            # Content-addressed ids make a repeat load of the same source
            # a no-op when every worker still holds its shards.  The
            # TTL-aware get() matters: a stale entry must trigger one
            # shared reload here, not N per-worker replays later.
            if not all(
                w.store.get(dataset_id) is not None for w in self.workers  # type: ignore[union-attr]
            ):
                shards = source.load()
                for index, worker in enumerate(self.workers):
                    worker.put(  # type: ignore[union-attr]
                        dataset_id,
                        self._assigned(shards, index),
                        loaded=True,
                    )
        else:
            # Remote workers load the source themselves, in parallel: a
            # table cannot cross the process boundary, a description can.
            self._with_placement_retries(
                lambda: self._for_all_workers(
                    lambda i, w: w.load_source(dataset_id, source)
                )
            )

    def _assigned(self, shards: list[Table], worker_index: int) -> list[Table]:
        """Round-robin shard placement; deterministic, so replay agrees."""
        return shards[worker_index :: len(self.workers)]

    def _for_all_workers(self, fn) -> list:
        """Run ``fn(index, worker)`` for every worker in parallel, reviving
        and retrying a worker whose process died (§5.8)."""
        ctx = current_context()
        with concurrent.futures.ThreadPoolExecutor(len(self.workers)) as pool:
            return list(
                pool.map(
                    # Carry the caller's trace context onto the pool
                    # threads so worker RPCs parent under it.
                    lambda i: self._with_revival_in_context(ctx, i, fn),
                    range(len(self.workers)),
                )
            )

    def _with_revival_in_context(self, ctx, index: int, fn):
        with use_context(ctx):
            return self._with_revival(index, fn)

    def _with_revival(self, index: int, fn):
        attempts = 0
        while True:
            try:
                return fn(index, self.workers[index])
            except WorkerUnavailableError:
                attempts += 1
                if attempts > MAX_WORKER_RETRIES or not self.revive_worker(index):
                    raise

    def materialize(self, worker_index: int, dataset_id: str) -> list[Table]:
        """The worker's shards, replaying redo-log lineage when evicted.

        Only meaningful for in-process workers — a remote worker's shards
        live in another process and cannot be handed out as objects.
        """
        worker = self.workers[worker_index]
        if not isinstance(worker, Worker):
            raise EngineError(
                f"worker {worker.name} is remote; its shards cannot be "
                "materialized in the root process"
            )
        return worker.shards(dataset_id, self.lineage(dataset_id))

    # ------------------------------------------------------------------
    # Fault injection and recovery
    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Crash-restart one worker: all its soft state is lost."""
        self.workers[index].crash()

    def revive_worker(self, index: int) -> bool:
        """Bring a dead worker back; in-process workers never die."""
        return False

    def evict_dataset(self, dataset_id: str, worker_index: int | None = None) -> None:
        """Evict a dataset's shards (memory pressure / TTL expiry).

        A full eviction also invalidates every dependent cache entry at
        the root tier (computation cache, row count); each worker drops
        its own memoized partials inside :meth:`WorkerProtocol.evict`.
        """
        if worker_index is not None:
            self.workers[worker_index].evict(dataset_id)
            return

        def evict_everywhere() -> None:
            for worker in self.workers:
                worker.evict(dataset_id)

        # Same rebalance discipline as every other whole-fleet op: the
        # stream guard keeps an in-process rebalance from re-planting
        # staged copies of the dataset being evicted, and the placement
        # retries keep an external rebalance from leaving some workers
        # holding shards while the root-tier caches are dropped below.
        with self._stream_guard():
            self._with_placement_retries(evict_everywhere)
        self.computation_cache.invalidate_dataset(dataset_id)
        self.row_count_cache.evict(dataset_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release worker resources (no-op for in-process workers)."""
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} workers={len(self.workers)} "
            f"cores={self.workers[0].cores} log={len(self.redo_log)} ops>"
        )


class ClusterDataSet(IDataSet):
    """A dataset resident (softly) on a cluster's workers."""

    def __init__(self, cluster: Cluster, dataset_id: str):
        self.cluster = cluster
        self.dataset_id = dataset_id

    @property
    def total_rows(self) -> int:
        cached = self.cluster.cached_row_count(self.dataset_id)
        if cached is not None:
            return cached
        lineage = self.cluster.lineage(self.dataset_id)
        with self.cluster._stream_guard():
            total = sum(
                self.cluster._with_placement_retries(
                    lambda: self.cluster._for_all_workers(
                        lambda i, w: w.shard_rows(self.dataset_id, lineage)
                    )
                )
            )
        self.cluster.cache_row_count(self.dataset_id, total)
        return total

    @property
    def schema(self):
        # Lazily walk workers in order: the schema needs only one shard,
        # so materializing every worker (replay included) would be waste.
        with self.cluster._stream_guard():
            return self.cluster._with_placement_retries(self._schema_once)

    def _schema_once(self):
        lineage = self.cluster.lineage(self.dataset_id)
        for index in range(len(self.cluster.workers)):
            schema = self.cluster._with_revival(
                index, lambda i, w: w.shard_schema(self.dataset_id, lineage)
            )
            if schema is not None:
                return schema
        raise EngineError(f"dataset {self.dataset_id!r} has no shards")

    def map(self, table_map: TableMap) -> "ClusterDataSet":
        new_id = self.cluster._map_dataset_id(self.dataset_id, table_map)
        self.cluster.redo_log.record_map(new_id, self.dataset_id, table_map)
        # The new dataset's lineage ends with the map op just recorded, so
        # "ensure" both applies the map and registers the result (§5.7).
        lineage = self.cluster.lineage(new_id)
        with self.cluster._stream_guard():
            self.cluster._with_placement_retries(
                lambda: self.cluster._for_all_workers(
                    lambda i, w: w.ensure(new_id, lineage)
                )
            )
        return ClusterDataSet(self.cluster, new_id)

    # ------------------------------------------------------------------
    # Sketch execution
    # ------------------------------------------------------------------
    def _worker_stream(
        self,
        worker_index: int,
        sketch: Sketch[R],
        lineage: list,
        token: CancellationToken | None,
        emissions: "queue.Queue[_Emission]",
        workers: "list[WorkerProtocol]",
        parent: "TraceContext | None" = None,
        stat: dict | None = None,
    ) -> None:
        """Drive one worker's partial stream, reviving it if it dies.

        Because partials are cumulative, a retry after revival simply
        *replaces* this worker's contribution at the root — no double
        counting (§5.8).  ``workers`` is this attempt's placement
        snapshot: if the cluster's live list diverges from it (the fleet
        rebalanced under a concurrent stream), revival is abandoned and
        the whole fan-out restarts on the new placement.

        ``parent`` is the fan-out's trace context, carried across the
        thread boundary so each attempt records its own span (revival
        retries show up as sibling spans under one fan-out); ``stat`` is
        this worker's slot in the query profile, updated in place.
        """
        cluster = self.cluster
        done = 0
        failure: BaseException | None = None
        attempts = 0
        tries = 0

        def post_ledger(ledger: object) -> None:
            # Rides the same queue as the partials so the root observes
            # it strictly after this attempt's restart marker (if any).
            emissions.put(
                _Emission(
                    worker_index, None, 0, 0, kind="ledger", ledger=ledger
                )
            )

        try:
            with use_context(parent):
                while True:
                    tries += 1
                    worker = workers[worker_index]
                    try:
                        with span(
                            "worker.stream",
                            worker=worker.name,
                            attempt=tries,
                        ):
                            for emission in worker.sketch_partials(
                                self.dataset_id,
                                sketch,
                                lineage,
                                token,
                                on_ledger=post_ledger,
                            ):
                                done = emission.shards_done
                                emissions.put(
                                    _Emission(
                                        worker_index,
                                        emission.summary,
                                        emission.shards_done,
                                        emission.bytes,
                                        cache_hit=emission.cache_hit,
                                    )
                                )
                    except WorkerUnavailableError as exc:
                        attempts += 1
                        cancelled = token is not None and token.cancelled
                        in_sync = (
                            worker_index < len(cluster.workers)
                            and cluster.workers[worker_index]
                            is workers[worker_index]
                        )
                        if (
                            not cancelled
                            and attempts <= MAX_WORKER_RETRIES
                            and in_sync
                            and cluster.revive_worker(worker_index)
                        ):
                            workers[worker_index] = cluster.workers[worker_index]
                            done = 0
                            # The fresh run recomputes *every* shard, so
                            # summaries stolen from the dead run must be
                            # dropped at the root or they double-count.
                            emissions.put(
                                _Emission(
                                    worker_index, None, 0, 0, kind="restart"
                                )
                            )
                            continue  # re-run against the revived worker
                        if not in_sync:
                            failure = StalePlacementError(
                                f"worker {worker.name} left the placement "
                                "while streaming; re-running on the new fleet"
                            )
                        else:
                            failure = exc
                    except Exception as exc:  # repro: ignore[B001] — surfaced at the root
                        failure = exc
                    break
        except BaseException as exc:  # repro: ignore[B001] — sentinel must still post
            failure = failure if failure is not None else exc
        finally:
            if stat is not None:
                stat["attempts"] = tries
            # The done sentinel is unconditional: without it the root's
            # merge loop would wait on this worker forever.
            emissions.put(_Emission(worker_index, None, done, 0, error=failure))

    def _steal_claim(
        self,
        thief_slot: int,
        victim_slot: int,
        ledger,
        epoch: int,
        budget: int,
        sketch: Sketch,
        snapshot: "list[WorkerProtocol]",
        emissions: "queue.Queue[_Emission]",
        parent: "TraceContext | None" = None,
    ) -> None:
        """One claim: cede unstarted slices from the victim, summarize
        them on the thief (root fallback if the thief cannot), post the
        per-shard summaries back onto the merge queue.

        Once :meth:`StealLedger.cede` returns parcels, the victim has
        irrevocably skipped those shards — so every path below must
        either produce their summaries or report an error that fails
        the query; quietly dropping parcels would corrupt the merge.
        """
        stolen: "list[tuple[int, object]] | None" = []
        error: BaseException | None = None
        try:
            with use_context(parent):
                with span(
                    "cluster.steal",
                    victim=snapshot[victim_slot].name,
                    thief=snapshot[thief_slot].name,
                    budget=budget,
                ):
                    parcels = ledger.cede(budget)
                    if parcels:
                        results = None
                        try:
                            results = snapshot[thief_slot].summarize_stolen(
                                sketch, parcels
                            )
                        except (WorkerUnavailableError, EngineError):
                            results = None
                        if results is None:
                            # The thief died (or cannot help) after the
                            # cede: the root summarizes the parcels
                            # itself — it holds the sketch and the
                            # shard bytes, so no slice goes missing.
                            REGISTRY.counter(
                                "cluster.steal.fallbacks",
                                "ceded slices summarized by the root after "
                                "a thief failure",
                            ).inc(len(parcels))
                            results = [
                                (
                                    parcel.global_index,
                                    sketch.summarize(parcel.resolve()),
                                )
                                for parcel in parcels
                            ]
                        stolen = results
        except BaseException as exc:
            stolen = None
            error = exc
            # The finally below posts the error emission *before* this
            # re-raise unwinds; the query fails loudly at the root and
            # the thread's traceback marks the unexpected path.
            raise
        finally:
            emissions.put(
                _Emission(
                    victim_slot,
                    None,
                    0,
                    0,
                    error=error,
                    kind="stolen",
                    stolen=stolen,
                    epoch=epoch,
                    thief=thief_slot,
                )
            )

    @staticmethod
    def _verify_steal_coverage(
        stolen_acc: "dict[int, dict[int, object]]",
        done_counts: "dict[int, int]",
        slot_totals: "list[int]",
        count: int,
        worker_stats: "list[dict]",
    ) -> None:
        """The stolen set must be exactly the victim's unfolded suffix.

        The shards the victim folded plus the stolen global indices
        must tile ``range(slot_totals[v])`` — anything else means a
        slice was double-summarized or silently dropped, and a loud
        failure beats byte-divergent results.
        """
        for victim, extras in stolen_acc.items():
            if not extras or worker_stats[victim].get("error"):
                continue
            positions = {(g - victim) // count for g in extras}
            expected = set(range(done_counts[victim], slot_totals[victim]))
            if positions != expected:
                raise EngineError(
                    f"work stealing left slot {victim} with shard coverage "
                    f"{sorted(positions)} over prefix {done_counts[victim]} "
                    f"of {slot_totals[victim]} shards"
                )

    def sketch_stream(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None = None,
    ) -> Iterator[PartialResult[R]]:
        cluster = self.cluster
        cluster.redo_log.record_sketch(
            self.dataset_id, sketch.name, getattr(sketch, "seed", None)
        )
        cache_key = sketch.cache_key()
        if cache_key is not None:
            cached = cluster.computation_cache.get(self.dataset_id, cache_key)
            if cached is not None:
                yield PartialResult(1.0, cached, received_bytes=0, cache_hit=True)
                return

        # The whole fan-out restarts from scratch when the fleet
        # rebalances underneath it (a worker rejects our stale placement
        # version): partials already streamed remain valid progressive
        # approximations, and the retry's cumulative partials simply
        # replace them — the final merge is computed entirely on one
        # placement, so bytes stay identical across rebalances.
        attempts = 0
        final: R | None = None
        while True:
            observed = cluster.placement_version
            try:
                final = yield from self._sketch_attempt(sketch, token)
                break
            except StalePlacementError:
                attempts += 1
                if attempts > MAX_PLACEMENT_RETRIES or not cluster.resync_placement(
                    observed
                ):
                    raise
                time.sleep(min(0.05 * attempts, 0.5))

        if (
            cache_key is not None
            and final is not None
            and not (token is not None and token.cancelled)
        ):
            cluster.computation_cache.put(self.dataset_id, cache_key, final)

    def _sketch_attempt(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None,
    ):
        """One fan-out over the current placement; returns the final
        merge (via StopIteration value) or raises
        :class:`StalePlacementError` if the fleet moved mid-flight."""
        cluster = self.cluster
        cluster._enter_stream()
        try:
            # The profile is collected unconditionally — a handful of
            # perf_counter reads per emission — so `profile: true`
            # replies work with tracing off; it is attached (and updated
            # in place) on every yielded partial and finalized before
            # the stream's StopIteration, i.e. before any drain loop
            # over this generator returns.
            attempt_started = time.perf_counter()
            profile: dict = {}
            bytes_counter = REGISTRY.counter(
                "cluster.bytes_to_root",
                "serialized summary bytes received by the root",
            )

            # Phase 1 (request broadcast + data materialization): every
            # worker resolves its shards, replaying the redo log if its
            # state was lost.
            lineage = cluster.lineage(self.dataset_id)
            ensure_started = time.perf_counter()
            with span("cluster.ensure", dataset=self.dataset_id) as ensure_ctx:

                def ensure_one(i, w):
                    # Explicit capture: _for_all_workers runs this on
                    # its own threads, which see no thread-local context.
                    with use_context(ensure_ctx):
                        return w.ensure(self.dataset_id, lineage)

                shard_counts = cluster._for_all_workers(ensure_one)
            profile["ensureSeconds"] = round(
                time.perf_counter() - ensure_started, 6
            )
            total_shards = sum(shard_counts) or 1

            # Phase 2: leaves summarize; aggregation nodes emit partials.
            snapshot = list(cluster.workers)
            workers = range(len(snapshot))
            slot_totals = list(shard_counts)
            worker_stats: list[dict] = [
                {
                    "name": w.name,
                    "shards": 0,
                    "bytes": 0,
                    "emissions": 0,
                    "cacheHit": False,
                    "attempts": 0,
                }
                for w in snapshot
            ]
            profile["workers"] = worker_stats
            emissions: "queue.Queue[_Emission]" = queue.Queue()
            merge_seconds = 0.0
            fanout_started = time.perf_counter()
            with span(
                "cluster.fanout",
                dataset=self.dataset_id,
                sketch=sketch.name,
                workers=len(snapshot),
            ) as fan_ctx:
                threads = [
                    threading.Thread(
                        target=self._worker_stream,
                        args=(
                            i,
                            sketch,
                            lineage,
                            token,
                            emissions,
                            snapshot,
                            fan_ctx,
                            worker_stats[i],
                        ),
                        daemon=True,
                    )
                    for i in workers
                ]
                for thread in threads:
                    thread.start()

                latest: dict[int, R] = {}
                done_counts = dict.fromkeys(workers, 0)
                hit_workers: set[int] = set()
                finished = 0
                final: R | None = None
                leaf_error: BaseException | None = None

                # -- work stealing (straggler suppression) -------------
                # A slot whose stream finished is an idle thief; a slot
                # with a live ledger and enough unstarted shards is a
                # victim.  Claims run on their own threads and deliver
                # per-shard summaries through the same queue; the
                # restart marker bumps the victim's epoch so summaries
                # stolen from a dead run are discarded, never merged.
                steal_on = steal_enabled() and len(snapshot) > 1
                steal_after = steal_after_seconds(
                    cluster.aggregation_interval
                )
                ledgers: "dict[int, tuple[object, int]]" = {}
                epochs = dict.fromkeys(workers, 0)
                stolen_acc: "dict[int, dict[int, object]]" = {
                    i: {} for i in workers
                }
                finished_slots: set[int] = set()
                claims_in_flight: set[int] = set()
                idle_thieves: list[int] = []
                steal_threads: list[threading.Thread] = []
                outstanding = 0
                claims_counter = REGISTRY.counter(
                    "cluster.steal.claims",
                    "work-steal claims dispatched by roots",
                )
                slices_counter = REGISTRY.counter(
                    "cluster.steal.slices",
                    "shard slices reassigned to idle workers mid-sketch",
                )

                def pending_of(victim: int) -> int:
                    return (
                        slot_totals[victim]
                        - done_counts[victim]
                        - len(stolen_acc[victim])
                    )

                def maybe_steal() -> None:
                    nonlocal outstanding
                    if not steal_on or (token is not None and token.cancelled):
                        return
                    if time.perf_counter() - fanout_started < steal_after:
                        # Not a straggler yet: claims this early cost
                        # more than they save and break the victim's
                        # slice memoization.  The next emission (cadence
                        # partial or completion) re-evaluates.
                        return
                    while idle_thieves:
                        candidates = [
                            v
                            for v in workers
                            if v not in finished_slots
                            and v not in claims_in_flight
                            and v in ledgers
                            and pending_of(v) >= STEAL_MIN_PENDING
                        ]
                        if not candidates:
                            return
                        victim = max(candidates, key=pending_of)
                        thief = idle_thieves.pop()
                        ledger, epoch = ledgers[victim]
                        budget = max(
                            1,
                            min(STEAL_MAX_BUDGET, pending_of(victim) // 2),
                        )
                        claims_in_flight.add(victim)
                        outstanding += 1
                        claims_counter.inc()
                        thread = threading.Thread(
                            target=self._steal_claim,
                            args=(
                                thief,
                                victim,
                                ledger,
                                epoch,
                                budget,
                                sketch,
                                snapshot,
                                emissions,
                                fan_ctx,
                            ),
                            daemon=True,
                        )
                        steal_threads.append(thread)
                        thread.start()

                def merged_now() -> R:
                    # Worker-index order, not arrival order, and stolen
                    # summaries appended to their victim's prefix fold
                    # in global shard order: the final bytes must not
                    # depend on which worker emitted (or stole) first.
                    slots = set(latest) | {
                        v for v, extras in stolen_acc.items() if extras
                    }
                    values = []
                    for i in sorted(slots):
                        value = latest.get(i, sketch.zero())
                        extras = stolen_acc[i]
                        for g in sorted(extras):
                            value = sketch.merge(value, extras[g])
                        values.append(value)
                    return sketch.merge_all(values)

                def progress() -> float:
                    covered = sum(done_counts.values()) + sum(
                        len(extras) for extras in stolen_acc.values()
                    )
                    return covered / total_shards

                while finished < len(threads) or outstanding:
                    emission = emissions.get()
                    slot = emission.worker_index
                    if emission.kind == "ledger":
                        ledgers[slot] = (emission.ledger, epochs[slot])
                        maybe_steal()
                        continue
                    if emission.kind == "restart":
                        epochs[slot] += 1
                        ledgers.pop(slot, None)
                        stolen_acc[slot].clear()
                        done_counts[slot] = 0
                        continue
                    if emission.kind == "stolen":
                        outstanding -= 1
                        claims_in_flight.discard(slot)
                        if emission.thief is not None:
                            idle_thieves.append(emission.thief)
                        if emission.stolen is None:
                            # Ceded parcels exist but nobody could
                            # summarize them: surface instead of
                            # returning a silently incomplete merge.
                            if emission.error is not None and leaf_error is None:
                                leaf_error = emission.error
                        elif emission.stolen and emission.epoch == epochs[slot]:
                            stolen_acc[slot].update(dict(emission.stolen))
                            slices_counter.inc(len(emission.stolen))
                            worker_stats[slot]["ceded"] = len(stolen_acc[slot])
                            merge_started = time.perf_counter()
                            merged = merged_now()
                            merge_seconds += (
                                time.perf_counter() - merge_started
                            )
                            final = merged
                            yield PartialResult(
                                progress(),
                                merged,
                                received_bytes=0,
                                worker_cache_hits=len(hit_workers),
                                profile=profile,
                            )
                        maybe_steal()
                        continue
                    stat = worker_stats[slot]
                    done_counts[slot] = emission.shards_done
                    stat["shards"] = emission.shards_done
                    if emission.summary is None:
                        finished += 1
                        finished_slots.add(slot)
                        if emission.error is not None:
                            stat["error"] = str(emission.error)
                            if leaf_error is None:
                                leaf_error = emission.error
                        else:
                            idle_thieves.append(slot)
                            maybe_steal()
                        continue
                    offset = time.perf_counter() - fanout_started
                    stat.setdefault("firstEmitSeconds", round(offset, 6))
                    stat["lastEmitSeconds"] = round(offset, 6)
                    stat["bytes"] += emission.bytes
                    stat["emissions"] += 1
                    if emission.cache_hit:
                        stat["cacheHit"] = True
                        hit_workers.add(emission.worker_index)
                    latest[emission.worker_index] = emission.summary  # type: ignore[assignment]
                    with cluster._lock:
                        cluster.total_bytes_to_root += emission.bytes
                    bytes_counter.inc(emission.bytes)
                    merge_started = time.perf_counter()
                    merged = merged_now()
                    merge_seconds += time.perf_counter() - merge_started
                    final = merged
                    yield PartialResult(
                        progress(),
                        merged,
                        received_bytes=emission.bytes,
                        worker_cache_hits=len(hit_workers),
                        profile=profile,
                    )
                    # Cadence partials re-evaluate the straggler gate:
                    # thieves idle since before the gate opened would
                    # otherwise never fire.
                    maybe_steal()
                for thread in threads:
                    thread.join()
                for thread in steal_threads:
                    thread.join()
                if leaf_error is None:
                    self._verify_steal_coverage(
                        stolen_acc,
                        done_counts,
                        slot_totals,
                        len(snapshot),
                        worker_stats,
                    )
            last_emits = [
                s["lastEmitSeconds"]
                for s in worker_stats
                if s.get("lastEmitSeconds") is not None
            ]
            profile["mergeSeconds"] = round(merge_seconds, 6)
            profile["stragglerSeconds"] = (
                round(max(last_emits), 6) if last_emits else 0.0
            )
            profile["fanoutSeconds"] = round(
                time.perf_counter() - fanout_started, 6
            )
            profile["engineSeconds"] = round(
                time.perf_counter() - attempt_started, 6
            )
            profile["totalShards"] = total_shards
            profile["stolenSlices"] = sum(
                len(extras) for extras in stolen_acc.values()
            )
            if leaf_error is not None:
                raise leaf_error
            return final
        finally:
            cluster._exit_stream()

    def run(
        self, sketch: Sketch[R], token: CancellationToken | None = None
    ) -> SketchRun[R]:
        """Execute with statistics; cache hits are flagged by the stream
        itself (``drain`` copies them off the partials), so the cache is
        probed exactly once per execution and stats stay honest."""
        run = super().run(sketch, token)
        run.cancelled = token is not None and token.cancelled
        if run.value is None:
            raise EngineError("sketch execution produced no result")
        return run
