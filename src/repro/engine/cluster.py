"""The multi-server cluster engine (paper §5.2–5.8), in process.

A :class:`Cluster` owns a set of :class:`Worker` nodes (one per simulated
server).  Each worker holds its shard of every dataset in a *soft* object
store — entries can be evicted or lost to a crash at any time and are
reconstructed by replaying the root's redo log (§5.7).  Sketch execution
follows the paper's tree:

* the root broadcasts the query; every worker materializes its shards
  (replaying lineage if its soft state is gone);
* each worker's thread pool runs ``summarize`` per micropartition and the
  worker (acting as its aggregation node) merges locally, forwarding a
  cumulative partial to the root at the aggregation cadence (0.1 s in the
  paper);
* the root merges the latest partial from every worker and streams
  progressively better results to the client, counting received bytes.

Deterministic sketch results are served from the computation cache (§5.4).
"""

from __future__ import annotations

import concurrent.futures
import itertools
import queue
import threading
import time
from dataclasses import dataclass
from typing import Iterator, TypeVar

from repro.core.sketch import Sketch
from repro.engine.cache import ComputationCache, DataCache
from repro.engine.dataset import IDataSet, TableMap
from repro.engine.progress import CancellationToken, PartialResult, SketchRun
from repro.engine.redo_log import LoadOp, MapOp, RedoLog
from repro.errors import DatasetMissingError, EngineError
from repro.storage.loader import DataSource
from repro.table.table import Table

R = TypeVar("R")


class Worker:
    """One server: a soft object store plus a leaf thread pool (§5.2)."""

    def __init__(
        self,
        name: str,
        cores: int = 4,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
    ):
        if cores < 1:
            raise ValueError("a worker needs at least one core")
        self.name = name
        self.cores = cores
        # The data cache: dataset id -> this worker's micropartitions.
        self.store: DataCache[list[Table]] = DataCache(
            max_entries=cache_entries, ttl_seconds=cache_ttl_seconds
        )
        self.crashes = 0
        self.shards_summarized = 0

    def fetch(self, dataset_id: str) -> list[Table]:
        """This worker's shards of ``dataset_id``; raises if evicted."""
        shards = self.store.get(dataset_id)
        if shards is None:
            raise DatasetMissingError(dataset_id, self.name)
        return shards

    def put(self, dataset_id: str, shards: list[Table]) -> None:
        self.store.put(dataset_id, shards)

    def crash(self) -> None:
        """Lose all soft state, as after a process restart (§5.8)."""
        self.store.clear()
        self.crashes += 1

    def __repr__(self) -> str:
        return f"<Worker {self.name} cores={self.cores}>"


@dataclass
class _Emission:
    """One partial result sent from a worker to the root."""

    worker_index: int
    summary: object | None  # None marks worker completion
    shards_done: int
    bytes: int
    error: BaseException | None = None  # a leaf failure, reported at the root


class Cluster:
    """A set of workers, the root's redo log, and the computation cache."""

    def __init__(
        self,
        num_workers: int = 4,
        cores_per_worker: int = 4,
        aggregation_interval: float = 0.1,
        cache_entries: int = 64,
        cache_ttl_seconds: float = 2 * 3600.0,
    ):
        if num_workers < 1:
            raise ValueError("a cluster needs at least one worker")
        self.workers = [
            Worker(
                f"worker-{i}",
                cores=cores_per_worker,
                cache_entries=cache_entries,
                cache_ttl_seconds=cache_ttl_seconds,
            )
            for i in range(num_workers)
        ]
        self.aggregation_interval = aggregation_interval
        self.redo_log = RedoLog()
        self.computation_cache = ComputationCache()
        self.total_bytes_to_root = 0
        self._ids = itertools.count()
        self._lock = threading.Lock()
        #: dataset id -> total row count.  Datasets are immutable once
        #: created, so a counted total stays valid across eviction, crash
        #: and redo-log replay; repeated rowCount queries skip the shard walk.
        self._row_counts: dict[str, int] = {}

    def cached_row_count(self, dataset_id: str) -> int | None:
        with self._lock:
            return self._row_counts.get(dataset_id)

    def cache_row_count(self, dataset_id: str, rows: int) -> None:
        with self._lock:
            self._row_counts[dataset_id] = rows

    # ------------------------------------------------------------------
    # Dataset lifecycle
    # ------------------------------------------------------------------
    def _new_dataset_id(self, prefix: str) -> str:
        return f"{prefix}-{next(self._ids)}"

    def load(self, source: DataSource) -> "ClusterDataSet":
        """Load a data source, distributing partitions over workers."""
        dataset_id = self._new_dataset_id("ds")
        self.redo_log.record_load(dataset_id, source)
        shards = source.load()
        for index, worker in enumerate(self.workers):
            worker.put(dataset_id, self._assigned(shards, index))
        return ClusterDataSet(self, dataset_id)

    def _assigned(self, shards: list[Table], worker_index: int) -> list[Table]:
        """Round-robin shard placement; deterministic, so replay agrees."""
        return shards[worker_index :: len(self.workers)]

    def materialize(self, worker_index: int, dataset_id: str) -> list[Table]:
        """The worker's shards, replaying redo-log lineage when evicted.

        Replay walks the lineage from the load op forward, re-applying maps
        (§5.7: "the recursion ends when data is read from disk").
        """
        worker = self.workers[worker_index]
        try:
            return worker.fetch(dataset_id)
        except DatasetMissingError:
            pass
        chain = self.redo_log.lineage(dataset_id)
        shards: list[Table] | None = None
        for op in chain:
            if isinstance(op, LoadOp):
                try:
                    shards = worker.fetch(op.dataset_id)
                    continue
                except DatasetMissingError:
                    shards = self._assigned(op.source.load(), worker_index)
            elif isinstance(op, MapOp):
                assert shards is not None
                try:
                    shards = worker.fetch(op.dataset_id)
                    continue
                except DatasetMissingError:
                    shards = [op.table_map.apply(shard) for shard in shards]
            worker.put(op.dataset_id, shards)
        assert shards is not None
        return shards

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Crash-restart one worker: all its soft state is lost."""
        self.workers[index].crash()

    def evict_dataset(self, dataset_id: str, worker_index: int | None = None) -> None:
        """Evict a dataset's shards (memory pressure / TTL expiry)."""
        targets = (
            self.workers
            if worker_index is None
            else [self.workers[worker_index]]
        )
        for worker in targets:
            worker.store.evict(dataset_id)

    def __repr__(self) -> str:
        return (
            f"<Cluster workers={len(self.workers)} "
            f"cores={self.workers[0].cores} log={len(self.redo_log)} ops>"
        )


class ClusterDataSet(IDataSet):
    """A dataset resident (softly) on a cluster's workers."""

    def __init__(self, cluster: Cluster, dataset_id: str):
        self.cluster = cluster
        self.dataset_id = dataset_id

    def _materialize_all(self) -> list[list[Table]]:
        """Every worker's shards, materialized in parallel (one thread per
        worker, mirroring the root's broadcast in :meth:`sketch_stream`)."""
        cluster = self.cluster
        workers = range(len(cluster.workers))
        with concurrent.futures.ThreadPoolExecutor(len(cluster.workers)) as pool:
            return list(
                pool.map(lambda i: cluster.materialize(i, self.dataset_id), workers)
            )

    @property
    def total_rows(self) -> int:
        cached = self.cluster.cached_row_count(self.dataset_id)
        if cached is not None:
            return cached
        total = sum(
            shard.num_rows for shards in self._materialize_all() for shard in shards
        )
        self.cluster.cache_row_count(self.dataset_id, total)
        return total

    @property
    def schema(self):
        # Lazily walk workers in order: the schema needs only one shard,
        # so materializing every worker (replay included) would be waste.
        for index in range(len(self.cluster.workers)):
            shards = self.cluster.materialize(index, self.dataset_id)
            if shards:
                return shards[0].schema
        raise EngineError(f"dataset {self.dataset_id!r} has no shards")

    def map(self, table_map: TableMap) -> "ClusterDataSet":
        new_id = self.cluster._new_dataset_id("ds")
        self.cluster.redo_log.record_map(new_id, self.dataset_id, table_map)
        for index, worker in enumerate(self.cluster.workers):
            shards = self.cluster.materialize(index, self.dataset_id)
            worker.put(new_id, [table_map.apply(shard) for shard in shards])
        return ClusterDataSet(self.cluster, new_id)

    # ------------------------------------------------------------------
    # Sketch execution
    # ------------------------------------------------------------------
    def _worker_loop(
        self,
        worker_index: int,
        sketch: Sketch[R],
        token: CancellationToken | None,
        shards: list[Table],
        emissions: "queue.Queue[_Emission]",
    ) -> None:
        """One worker's execution: leaf pool + aggregation cadence."""
        worker = self.cluster.workers[worker_index]
        interval = self.cluster.aggregation_interval

        def leaf(shard: Table) -> object | None:
            # Cancellation removes queued micropartitions only (§5.3).
            if token is not None and token.cancelled:
                return None
            worker.shards_summarized += 1
            return sketch.summarize(shard)

        accumulated = sketch.zero()
        done = 0
        pending_since_emit = 0
        last_emit = time.monotonic()
        failure: BaseException | None = None
        try:
            with concurrent.futures.ThreadPoolExecutor(worker.cores) as pool:
                futures = [pool.submit(leaf, shard) for shard in shards]
                for future in concurrent.futures.as_completed(futures):
                    try:
                        summary = future.result()
                    except Exception as exc:
                        # A leaf failed (bad column, broken expression...):
                        # drop this worker's remaining shards and surface
                        # the failure at the root instead of dying silently.
                        failure = exc
                        for pending in futures:
                            pending.cancel()
                        break
                    done += 1
                    if summary is not None:
                        accumulated = sketch.merge(accumulated, summary)
                        pending_since_emit += 1
                    now = time.monotonic()
                    finished = done == len(shards)
                    if pending_since_emit and (
                        now - last_emit >= interval or finished
                    ):
                        emissions.put(
                            _Emission(
                                worker_index,
                                accumulated,
                                done,
                                accumulated.serialized_size()
                                if hasattr(accumulated, "serialized_size")
                                else 0,
                            )
                        )
                        pending_since_emit = 0
                        last_emit = now
        finally:
            emissions.put(_Emission(worker_index, None, done, 0, error=failure))

    def sketch_stream(
        self,
        sketch: Sketch[R],
        token: CancellationToken | None = None,
    ) -> Iterator[PartialResult[R]]:
        cluster = self.cluster
        cluster.redo_log.record_sketch(
            self.dataset_id, sketch.name, getattr(sketch, "seed", None)
        )
        cache_key = sketch.cache_key()
        if cache_key is not None:
            cached = cluster.computation_cache.get(self.dataset_id, cache_key)
            if cached is not None:
                yield PartialResult(1.0, cached, received_bytes=0)
                return

        # Phase 1 (request broadcast + data materialization): every worker
        # resolves its shards, replaying the redo log if state was lost.
        workers = range(len(cluster.workers))
        with concurrent.futures.ThreadPoolExecutor(len(cluster.workers)) as pool:
            shard_lists = list(
                pool.map(lambda i: cluster.materialize(i, self.dataset_id), workers)
            )
        total_shards = sum(len(s) for s in shard_lists) or 1

        # Phase 2: leaves summarize; aggregation nodes emit partials.
        emissions: "queue.Queue[_Emission]" = queue.Queue()
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(i, sketch, token, shard_lists[i], emissions),
                daemon=True,
            )
            for i in workers
        ]
        for thread in threads:
            thread.start()

        latest: dict[int, R] = {}
        done_counts = dict.fromkeys(workers, 0)
        finished = 0
        final: R | None = None
        leaf_error: BaseException | None = None
        while finished < len(cluster.workers):
            emission = emissions.get()
            done_counts[emission.worker_index] = emission.shards_done
            if emission.summary is None:
                finished += 1
                if emission.error is not None and leaf_error is None:
                    leaf_error = emission.error
                continue
            latest[emission.worker_index] = emission.summary  # type: ignore[assignment]
            with cluster._lock:
                cluster.total_bytes_to_root += emission.bytes
            merged = sketch.merge_all(list(latest.values()))
            final = merged
            yield PartialResult(
                sum(done_counts.values()) / total_shards,
                merged,
                received_bytes=emission.bytes,
            )
        for thread in threads:
            thread.join()
        if leaf_error is not None:
            raise leaf_error

        if (
            cache_key is not None
            and final is not None
            and not (token is not None and token.cancelled)
        ):
            cluster.computation_cache.put(self.dataset_id, cache_key, final)

    def run(
        self, sketch: Sketch[R], token: CancellationToken | None = None
    ) -> SketchRun[R]:
        """Execute with statistics; cache hits are flagged."""
        cache_key = sketch.cache_key()
        cached = (
            self.cluster.computation_cache.get(self.dataset_id, cache_key)
            if cache_key is not None
            else None
        )
        run = super().run(sketch, token)
        run.cache_hit = cached is not None
        run.cancelled = token is not None and token.cancelled
        if run.value is None and cached is None:
            raise EngineError("sketch execution produced no result")
        return run
