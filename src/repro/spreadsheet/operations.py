"""The Figure 4 spreadsheet operations O1-O11.

These are the measured workload of the end-to-end evaluation (Figures 5 and
6).  Each operation corresponds to one user action and exercises a distinct
combination of vizketches; ``+`` means serial phases and ``&`` concurrent
ones, as in the paper's notation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.spreadsheet.actions import ActionRecord
from repro.spreadsheet.spreadsheet import Spreadsheet
from repro.table.compute import ColumnPredicate
from repro.table.sort import RecordOrder

#: Five numeric columns for the multi-column sorts (O2, O4).
NUMERIC_SORT_COLUMNS = ["DepDelay", "ArrDelay", "Distance", "AirTime", "TaxiOut"]


@dataclass(frozen=True)
class Operation:
    """One Figure 4 operation: id, description, and the action to run."""

    op_id: str
    description: str
    run: Callable[[Spreadsheet], object]
    cold_applicable: bool = True  # O4/O6 never run on cold data (Fig 6)


def _o1(sheet: Spreadsheet):
    return sheet.table_view(RecordOrder.of("DepDelay"))


def _o2(sheet: Spreadsheet):
    return sheet.table_view(RecordOrder.of(*NUMERIC_SORT_COLUMNS))


def _o3(sheet: Spreadsheet):
    return sheet.table_view(RecordOrder.of("Origin"))


def _o4(sheet: Spreadsheet):
    return sheet.scroll(0.5, RecordOrder.of(*NUMERIC_SORT_COLUMNS))


def _o5(sheet: Spreadsheet):
    return sheet.histogram("DepDelay")


def _o6(sheet: Spreadsheet):
    filtered = sheet.filter_rows(ColumnPredicate("DepDelay", "between", (0.0, 120.0)))
    return filtered.histogram("DepDelay")


def _o7(sheet: Spreadsheet):
    return sheet.histogram("Origin", with_cdf=False)


def _o8(sheet: Spreadsheet):
    return sheet.heavy_hitters("Origin", k=20, method="sampling")


def _o9(sheet: Spreadsheet):
    return sheet.distinct_count("FlightNum")


def _o10(sheet: Spreadsheet):
    return sheet.stacked_histogram("DepDelay", "Airline")


def _o11(sheet: Spreadsheet):
    return sheet.heatmap("DepDelay", "ArrDelay")


OPERATIONS: list[Operation] = [
    Operation("O1", "Sort, numerical data", _o1),
    Operation("O2", "Sort 5 columns, numerical data", _o2),
    Operation("O3", "Sort, string data", _o3),
    Operation("O4", "Quantile + sort, 5 columns, numerical data", _o4, False),
    Operation("O5", "Range + (histogram & cdf), numerical data", _o5),
    Operation("O6", "Filter + range + (histogram & cdf), numerical data", _o6, False),
    Operation("O7", "Distinct + range + histogram, string data", _o7),
    Operation("O8", "Heavy hitters sampling, string data", _o8),
    Operation("O9", "Distinct count, numerical data", _o9),
    Operation("O10", "Range + (stacked histogram & cdf), numerical data", _o10),
    Operation("O11", "Heatmap, numerical data", _o11),
]

OPERATIONS_BY_ID = {op.op_id: op for op in OPERATIONS}


def run_operation(sheet: Spreadsheet, op_id: str) -> list[ActionRecord]:
    """Execute one operation; returns the action records it produced."""
    mark = sheet.log.count
    OPERATIONS_BY_ID[op_id].run(sheet)
    return sheet.log.since(mark)
