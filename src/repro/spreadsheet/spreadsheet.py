"""The Spreadsheet facade: every UI operation of the paper (§3).

A :class:`Spreadsheet` wraps an :class:`~repro.engine.dataset.IDataSet` and
exposes the spreadsheet's functionality — tabular views, sorting, paging,
scrolling, find, filters, derived columns, charts, heavy hitters, distinct
counts, column summaries, PCA, and saving — each implemented exclusively
through vizketches, exactly as in Hillview ("vizketches are the sole way to
access data in the system", §7.3).

Chart operations follow the paper's two-phase structure (§5.3): a
*preparation* execution computes data-wide parameters (ranges, distinct
values) — typically served from the computation cache after the first chart
on a column — and a *rendering* execution runs the vizketch with the
display-derived accuracy.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core import sampling
from repro.core.buckets import (
    Buckets,
    DoubleBuckets,
    ExplicitStringBuckets,
    StringBuckets,
)
from repro.core.rand import stable_hash64
from repro.core.resolution import (
    DEFAULT_RESOLUTION,
    DISTINCT_COLORS,
    MAX_STACK_COLORS,
    MAX_STRING_BUCKETS,
    Resolution,
)
from repro.core.sketch import Sketch
from repro.engine.dataset import DeriveMap, ExpressionMap, FilterMap, IDataSet
from repro.engine.progress import CancellationToken, SketchRun
from repro.errors import SchemaError
from repro.sketches.bottomk import BottomKDistinctSketch
from repro.sketches.cdf import CdfSketch
from repro.sketches.find_text import FindResult, FindTextSketch
from repro.sketches.heatmap import HeatmapSketch
from repro.sketches.heavy_hitters import MisraGriesSketch, SampleHeavyHittersSketch
from repro.sketches.histogram import HistogramSketch
from repro.sketches.hll import HyperLogLogSketch
from repro.sketches.moments import ColumnStats, MomentsSketch
from repro.sketches.next_items import NextKList, NextKSketch
from repro.sketches.pca import CorrelationSketch
from repro.sketches.quantile import SampleQuantileSketch
from repro.sketches.save import SaveStatus, SaveTableSketch
from repro.sketches.stacked import StackedHistogramSketch
from repro.sketches.trellis import TrellisHeatmapSketch, TrellisHistogramSketch
from repro.spreadsheet.actions import ActionLog
from repro.spreadsheet.charts import (
    HeatmapChart,
    HeavyHittersResult,
    HistogramChart,
    PcaResult,
    StackedChart,
    TrellisChart,
    TrellisHistogramChart,
)
from repro.spreadsheet.view import TableView
from repro.table.compute import ColumnPredicate, Predicate, StringMatchPredicate
from repro.table.schema import ContentsKind
from repro.table.sort import RecordOrder, RowKey

#: When a computed sampling rate exceeds this, scanning is cheaper than
#: sampling, so the sketch runs in streaming mode.
SCAN_RATE_THRESHOLD = 0.8


class Spreadsheet:
    """A big-data spreadsheet over a (distributed) dataset."""

    def __init__(
        self,
        dataset: IDataSet,
        resolution: Resolution = DEFAULT_RESOLUTION,
        approximate: bool = True,
        delta: float = sampling.DEFAULT_DELTA,
        seed: int = 0,
        log: ActionLog | None = None,
    ):
        self.dataset = dataset
        self.resolution = resolution
        self.approximate = approximate
        self.delta = delta
        self.seed = seed
        self.log = log if log is not None else ActionLog()
        self._stats_cache: dict[str, ColumnStats] = {}
        self._queries = 0

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def schema(self):
        return self.dataset.schema

    def _next_seed(self) -> int:
        self._queries += 1
        return stable_hash64(self.seed, "query", self._queries) & ((1 << 31) - 1)

    def _run(self, sketch: Sketch, record=None, token: CancellationToken | None = None):
        run: SketchRun = self.dataset.run(sketch, token)
        if record is not None:
            record.runs.append(run)
        return run.value

    def column_stats(self, column: str, record=None) -> ColumnStats:
        """Range/moments of a column (the preparation phase, cached)."""
        cached = self._stats_cache.get(column)
        if cached is not None:
            return cached
        stats = self._run(MomentsSketch(column), record)
        self._stats_cache[column] = stats
        return stats

    @property
    def total_rows(self) -> int:
        first = self.schema.names[0]
        return self.column_stats(first).row_count

    def _rate(self, target_samples: int, record=None) -> float:
        """The global sampling rate for a target sample size."""
        if not self.approximate:
            return 1.0
        rows = self.total_rows
        rate = sampling.sample_rate(target_samples, rows)
        return 1.0 if rate > SCAN_RATE_THRESHOLD else rate

    def _numeric_buckets(
        self, column: str, requested: int | None, record=None
    ) -> DoubleBuckets:
        import datetime as _dt

        from repro.table.column import datetime_to_millis

        stats = self.column_stats(column, record)
        if stats.min_value is None:
            raise SchemaError(f"column {column!r} has no present values")
        count = self.resolution.histogram_buckets(requested)
        lo, hi = stats.min_value, stats.max_value
        if isinstance(lo, _dt.datetime):
            lo, hi = datetime_to_millis(lo), datetime_to_millis(hi)  # type: ignore[arg-type]
        return DoubleBuckets(float(lo), float(hi), count)

    def _string_buckets(self, column: str, requested: int | None, record=None) -> Buckets:
        """Buckets for a string column (Appendix B.1).

        Few distinct values (<= 50): one bucket per value.  Otherwise,
        contiguous alphabetical ranges with boundaries from the bottom-k
        distinct-quantile sketch.
        """
        limit = min(requested or MAX_STRING_BUCKETS, MAX_STRING_BUCKETS)
        sketch = BottomKDistinctSketch(column, k=500, seed=self._next_seed())
        summary = self._run(sketch, record)
        if not summary.saturated and summary.distinct_estimate() <= limit:
            return ExplicitStringBuckets(summary.values_sorted())
        stats = self.column_stats(column, record)
        boundaries = summary.quantile_boundaries(limit, min_value=stats.min_value)
        return StringBuckets(boundaries)

    def _buckets_for(self, column: str, requested: int | None = None, record=None) -> Buckets:
        kind = self.schema.kind(column)
        if kind.is_numeric:
            return self._numeric_buckets(column, requested, record)
        return self._string_buckets(column, requested, record)

    # ------------------------------------------------------------------
    # Tabular views (§3.3)
    # ------------------------------------------------------------------
    def table_view(
        self,
        order: RecordOrder | Sequence[str],
        k: int = 20,
        start_key: RowKey | None = None,
        inclusive: bool = False,
    ) -> TableView:
        """The first K distinct rows from ``start_key`` in sort order."""
        order = order if isinstance(order, RecordOrder) else RecordOrder.of(*order)
        with self.log.record("table_view", order.spec()) as record:
            summary = self._run(
                NextKSketch(order, k, start_key, inclusive), record
            )
        return TableView(order=order, next_k=summary, k=k)

    def next_page(self, view: TableView) -> TableView:
        """Page forward: the K rows after the view's last row."""
        last = view.last_key()
        if last is None:
            return view
        return self.table_view(view.order, view.k, start_key=last)

    def prev_page(self, view: TableView) -> TableView:
        """Page backward: the K rows before the view's first row (§3.3).

        Runs the next-items vizketch over the *reversed* sort order — the
        rows preceding a key forward are the rows following it backward —
        then flips the result back into display order.  At the top of the
        data this clamps to the first page.
        """
        first = view.first_values()
        if first is None:
            return view
        reverse = view.order.reversed()
        rev_start = reverse.key_from_values(first)
        with self.log.record("prev_page", view.order.spec()) as record:
            rev = self._run(
                NextKSketch(reverse, view.k, rev_start, inclusive=False),
                record,
            )
        if len(rev.rows) < view.k:
            # Fewer than K rows precede the view: clamp to the first page.
            return self.table_view(view.order, view.k)
        shown = sum(rev.counts)
        forward = NextKList(
            order=view.order,
            rows=list(reversed(rev.rows)),
            counts=list(reversed(rev.counts)),
            preceding=rev.scanned - rev.preceding - shown,
            scanned=rev.scanned,
        )
        return TableView(order=view.order, next_k=forward, k=view.k)

    def scroll(self, fraction: float, order: RecordOrder | Sequence[str], k: int = 20) -> TableView:
        """Jump to a relative position: quantile + next items (Fig 14).

        The scroll bar is ~100 pixels of rank resolution; a rank error of a
        pixel or two is imperceptible when dragging (Appendix C.1).
        """
        order = order if isinstance(order, RecordOrder) else RecordOrder.of(*order)
        scrollbar_pixels = min(self.resolution.height, 100)
        target = sampling.quantile_sample_size(scrollbar_pixels, self.delta)
        with self.log.record("scroll", f"{order.spec()}@{fraction:.3f}") as record:
            rate = self._rate(target, record)
            quantile = self._run(
                SampleQuantileSketch(order, max(rate, 1e-9), seed=self._next_seed()),
                record,
            )
            values = quantile.quantile(fraction)
            start = None if values is None else order.key_from_values(values)
            summary = self._run(
                NextKSketch(order, k, start, inclusive=True), record
            )
        return TableView(order=order, next_k=summary, k=k)

    def find(
        self,
        column: str,
        pattern: str,
        order: RecordOrder | Sequence[str] | None = None,
        mode: str = "substring",
        case_sensitive: bool = True,
        start_key: RowKey | None = None,
        k: int = 20,
    ) -> tuple[FindResult, TableView | None]:
        """Free-form text search; returns the match info and a view at it."""
        order = (
            order
            if isinstance(order, RecordOrder)
            else RecordOrder.of(*(order or [column]))
        )
        predicate = StringMatchPredicate(column, pattern, mode, case_sensitive)
        with self.log.record("find", f"{pattern!r} in {column}") as record:
            result = self._run(FindTextSketch(predicate, order, start_key), record)
            view = None
            if result.first_match is not None:
                summary = self._run(
                    NextKSketch(
                        order, k, result.first_key(), inclusive=True
                    ),
                    record,
                )
                view = TableView(order=order, next_k=summary, k=k)
        return result, view

    # ------------------------------------------------------------------
    # Charts (§3.4, §4.3)
    # ------------------------------------------------------------------
    def histogram(
        self,
        column: str,
        buckets: int | Buckets | None = None,
        with_cdf: bool = True,
        approximate: bool | None = None,
    ) -> HistogramChart:
        """Histogram (and CDF) of one column: range + render phases."""
        with self.log.record("histogram", column) as record:
            bucket_desc = (
                buckets
                if isinstance(buckets, Buckets)
                else self._buckets_for(column, buckets, record)
            )
            use_sampling = self.approximate if approximate is None else approximate
            target = sampling.practical_histogram_sample_size(
                self.resolution.height, self.delta
            )
            rate = self._rate(target, record) if use_sampling else 1.0
            summary = self._run(
                HistogramSketch(column, bucket_desc, rate, self._next_seed()),
                record,
            )
            cdf_summary = None
            if with_cdf:
                if self.schema.kind(column).is_numeric:
                    # Numeric CDFs bucket at pixel granularity.
                    cdf_buckets: Buckets = DoubleBuckets(
                        bucket_desc.min_value,  # type: ignore[union-attr]
                        bucket_desc.max_value,  # type: ignore[union-attr]
                        self.resolution.width,
                    )
                else:
                    # String CDFs combine the equi-width string buckets with
                    # the counting CDF (B.1, "CDFs for string data"): the
                    # alphabetical bucket layout is the horizontal axis.
                    cdf_buckets = bucket_desc
                cdf_rate = (
                    self._rate(
                        sampling.cdf_sample_size(
                            self.resolution.height,
                            self.delta,
                            width=self.resolution.width,
                        ),
                        record,
                    )
                    if use_sampling
                    else 1.0
                )
                cdf_summary = self._run(
                    CdfSketch(column, cdf_buckets, cdf_rate, self._next_seed()),
                    record,
                )
            stats = self._stats_cache.get(column)
        return HistogramChart(
            column=column,
            buckets=bucket_desc,
            summary=summary,
            resolution=self.resolution,
            rate=rate,
            cdf_summary=cdf_summary,
            stats=stats,
        )

    def stacked_histogram(
        self,
        x_column: str,
        y_column: str,
        normalized: bool = False,
        x_buckets: int | None = None,
        with_cdf: bool = True,
    ) -> StackedChart:
        """Stacked histogram of X colored by Y; normalized scans exactly."""
        with self.log.record("stacked_histogram", f"{x_column},{y_column}") as record:
            xb = self._buckets_for(x_column, x_buckets, record)
            yb = self._buckets_for(y_column, MAX_STACK_COLORS, record)
            target = sampling.practical_histogram_sample_size(
                self.resolution.height, self.delta
            )
            # Normalized bars amplify small counts: exact scan required (B.1).
            rate = 1.0 if normalized else self._rate(target, record)
            summary = self._run(
                StackedHistogramSketch(
                    x_column, xb, y_column, yb, rate, self._next_seed()
                ),
                record,
            )
            cdf_summary = None
            if with_cdf and self.schema.kind(x_column).is_numeric:
                cdf_buckets = DoubleBuckets(
                    xb.min_value, xb.max_value, self.resolution.width  # type: ignore[union-attr]
                )
                cdf_summary = self._run(
                    CdfSketch(
                        x_column,
                        cdf_buckets,
                        self._rate(
                            sampling.cdf_sample_size(
                                self.resolution.height,
                                self.delta,
                                width=self.resolution.width,
                            ),
                            record,
                        ),
                        self._next_seed(),
                    ),
                    record,
                )
        return StackedChart(
            x_column=x_column,
            y_column=y_column,
            x_buckets=xb,
            y_buckets=yb,
            summary=summary,
            resolution=self.resolution,
            rate=rate,
            normalized=normalized,
            cdf_summary=cdf_summary,
        )

    def heatmap(
        self,
        x_column: str,
        y_column: str,
        log_scale: bool = False,
    ) -> HeatmapChart:
        """Heat map of two columns; log color scales force an exact scan."""
        with self.log.record("heatmap", f"{x_column},{y_column}") as record:
            bx, by = self.resolution.heatmap_bins()
            xb = self._buckets_for(x_column, bx, record)
            yb = self._buckets_for(y_column, by, record)
            target = sampling.heatmap_sample_size(
                xb.count, yb.count, DISTINCT_COLORS, self.delta
            )
            rate = 1.0 if log_scale else self._rate(target, record)
            summary = self._run(
                HeatmapSketch(x_column, xb, y_column, yb, rate, self._next_seed()),
                record,
            )
        return HeatmapChart(
            x_column=x_column,
            y_column=y_column,
            x_buckets=xb,
            y_buckets=yb,
            summary=summary,
            resolution=self.resolution,
            rate=rate,
            log_scale=log_scale,
        )

    def trellis_heatmap(
        self,
        group_column: str,
        x_column: str,
        y_column: str,
        panes: int = 4,
        group2_column: str | None = None,
        group2_panes: int = 2,
    ) -> TrellisChart:
        """An array of heat maps grouped by one or two columns (§3.4).

        With ``group2_column``, panes form a 2-D grid: the major axis buckets
        ``group_column`` and the minor axis buckets ``group2_column`` (Fig 2:
        "arrays of the other plots grouped by one or two variables").
        """
        groups = f"{group_column};{x_column},{y_column}"
        if group2_column is not None:
            groups = f"{group_column}x{group2_column};{x_column},{y_column}"
        with self.log.record("trellis", groups) as record:
            gb = self._buckets_for(group_column, panes, record)
            g2b = (
                self._buckets_for(group2_column, group2_panes, record)
                if group2_column is not None
                else None
            )
            pane_total = gb.count * (g2b.count if g2b is not None else 1)
            pane_resolution, _, _ = self.resolution.split_trellis(pane_total)
            bx, by = pane_resolution.heatmap_bins()
            xb = self._buckets_for(x_column, bx, record)
            yb = self._buckets_for(y_column, by, record)
            target = sampling.heatmap_sample_size(
                xb.count, yb.count, DISTINCT_COLORS, self.delta
            )
            rate = self._rate(target, record)
            summary = self._run(
                TrellisHeatmapSketch(
                    group_column, gb, x_column, xb, y_column, yb, rate,
                    self._next_seed(),
                    group2_column=group2_column,
                    group2_buckets=g2b,
                ),
                record,
            )
        return TrellisChart(
            group_column=group_column,
            x_column=x_column,
            y_column=y_column,
            group_buckets=gb,
            summary=summary,
            resolution=pane_resolution,
            rate=rate,
            group2_column=group2_column,
            group2_buckets=g2b,
        )

    def trellis_histogram(
        self,
        group_column: str,
        x_column: str,
        panes: int = 4,
        x_buckets: int | None = None,
        group2_column: str | None = None,
        group2_panes: int = 2,
    ) -> TrellisHistogramChart:
        """An array of histograms grouped by one or two columns (Fig 2)."""
        groups = f"{group_column};{x_column}"
        if group2_column is not None:
            groups = f"{group_column}x{group2_column};{x_column}"
        with self.log.record("trellis_histogram", groups) as record:
            gb = self._buckets_for(group_column, panes, record)
            g2b = (
                self._buckets_for(group2_column, group2_panes, record)
                if group2_column is not None
                else None
            )
            pane_total = gb.count * (g2b.count if g2b is not None else 1)
            pane_resolution, _, _ = self.resolution.split_trellis(pane_total)
            xb = self._buckets_for(
                x_column,
                pane_resolution.histogram_buckets(x_buckets),
                record,
            )
            target = sampling.practical_histogram_sample_size(
                pane_resolution.height, self.delta
            )
            rate = self._rate(target, record)
            summary = self._run(
                TrellisHistogramSketch(
                    group_column, gb, x_column, xb, rate, self._next_seed(),
                    group2_column=group2_column,
                    group2_buckets=g2b,
                ),
                record,
            )
        return TrellisHistogramChart(
            group_column=group_column,
            x_column=x_column,
            group_buckets=gb,
            x_buckets=xb,
            summary=summary,
            resolution=pane_resolution,
            rate=rate,
            group2_column=group2_column,
            group2_buckets=g2b,
        )

    # ------------------------------------------------------------------
    # Analyses (§3.3)
    # ------------------------------------------------------------------
    def heavy_hitters(
        self, column: str, k: int = 20, method: str = "sampling"
    ) -> HeavyHittersResult:
        """Most frequent values: sampling (Theorem 4) or Misra-Gries."""
        if method not in ("sampling", "streaming"):
            raise ValueError(f"unknown heavy-hitters method {method!r}")
        with self.log.record("heavy_hitters", f"{column},k={k},{method}") as record:
            total = self.total_rows
            if method == "sampling":
                target = sampling.heavy_hitters_sample_size(k, self.delta)
                rate = self._rate(target, record)
                sketch = SampleHeavyHittersSketch(column, k, max(rate, 1e-9), self._next_seed())
                summary = self._run(sketch, record)
                hitters = sketch.hitters(summary)
                sample_size = summary.scanned
            else:
                # 4k counters bound the undercount below 1/(4k) of the rows,
                # matching the sampling method's reporting floor (Thm 4).
                summary = self._run(MisraGriesSketch(column, 4 * k), record)
                hitters = summary.hitters(1.0 / (4 * k))[:k]
                sample_size = 0
        return HeavyHittersResult(
            column=column,
            method=method,
            hitters=hitters,
            total_rows=total,
            sample_size=sample_size,
        )

    def distinct_count(self, column: str) -> float:
        """Approximate distinct count via HyperLogLog (§B.3)."""
        with self.log.record("distinct_count", column) as record:
            summary = self._run(
                HyperLogLogSketch(column, seed=self.seed), record
            )
        return summary.estimate()

    def column_summary(self, column: str) -> ColumnStats:
        """Range, counts, mean/variance of a column (§B.3 Moments)."""
        with self.log.record("column_summary", column) as record:
            return self.column_stats(column, record)

    def pca(self, columns: Sequence[str], components: int = 2) -> PcaResult:
        """Principal component analysis of numeric columns (§B.3)."""
        for name in columns:
            self.schema.require_numeric(name)
        with self.log.record("pca", ",".join(columns)) as record:
            rate = self._rate(200_000, record)
            summary = self._run(
                CorrelationSketch(list(columns), rate, self._next_seed()), record
            )
            values, vectors = summary.principal_components(components)
        return PcaResult(
            columns=list(columns),
            eigenvalues=values,
            components=vectors,
            explained_variance=summary.explained_variance(components),
            rows_used=summary.count,
        )

    # ------------------------------------------------------------------
    # Data transformations (§5.6)
    # ------------------------------------------------------------------
    def _derived(self, dataset: IDataSet) -> "Spreadsheet":
        sheet = Spreadsheet(
            dataset,
            resolution=self.resolution,
            approximate=self.approximate,
            delta=self.delta,
            seed=self.seed + 1,
            log=self.log,  # one exploration, one action log
        )
        return sheet

    def filter_rows(self, predicate: Predicate) -> "Spreadsheet":
        """A new sheet with only the rows satisfying ``predicate``."""
        with self.log.record("filter", predicate.spec()):
            dataset = self.dataset.map(FilterMap(predicate))
        return self._derived(dataset)

    def filter_equals(self, column: str, value: object) -> "Spreadsheet":
        return self.filter_rows(ColumnPredicate(column, "==", value))

    def zoom_in(self, column: str, low: float, high: float) -> "Spreadsheet":
        """Zoom into a chart region: filter to the selected range (§3.4)."""
        return self.filter_rows(ColumnPredicate(column, "between", (low, high)))

    def derive(
        self,
        name: str,
        kind: ContentsKind,
        fn: Callable,
        vectorized: bool = False,
    ) -> "Spreadsheet":
        """Add a user-defined map column (§3.5)."""
        with self.log.record("derive", name):
            dataset = self.dataset.map(DeriveMap(name, kind, fn, vectorized))
        return self._derived(dataset)

    def derive_expression(self, name: str, expression: str) -> "Spreadsheet":
        """A new sheet with a column computed from an expression (§5.6).

        The expression string is the unit of serialization — redo log and
        RPC both carry it — e.g. ``sheet.derive_expression("AirGain",
        "DepDelay - ArrDelay")``.
        """
        with self.log.record("derive", f"{name}={expression}"):
            derived = self.dataset.map(ExpressionMap(name, expression))
        return self._derived(derived)

    def save(self, directory: str, format: str = "hvc") -> SaveStatus:
        """Write the sheet to a repository via the save vizketch (§5.4).

        Leaves write one partition per shard; once their statuses merge
        cleanly, the root finalizes ``hvc`` datasets with the snapshot
        manifest that re-loading verifies (§2).
        """
        with self.log.record("save", directory) as record:
            status = self._run(SaveTableSketch(directory, format), record)
        if format == "hvc" and status.ok and status.files:
            from repro.storage.columnar import write_manifest

            write_manifest(directory, status.files)
        return status
