"""UI action accounting (Figure 11).

The case study measures, per question, how many *spreadsheet actions* the
operator performed (choosing a menu operation, clicking, selecting) and how
long they took.  Every public spreadsheet method records one action; the
sketch executions it triggers are attached with their timing and byte
statistics, so the benchmarks can report both the human-facing action count
and the machine-side costs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.progress import SketchRun


@dataclass
class ActionRecord:
    """One user-visible spreadsheet action and its machine work."""

    name: str
    params: str
    runs: list[SketchRun] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def bytes_received(self) -> int:
        return sum(run.bytes_received for run in self.runs)

    @property
    def sketches_executed(self) -> int:
        return len(self.runs)

    @property
    def cache_hits(self) -> int:
        return sum(1 for run in self.runs if run.cache_hit)

    def describe(self) -> str:
        return (
            f"{self.name}({self.params}) — {self.seconds * 1000:.1f} ms, "
            f"{self.sketches_executed} sketches, {self.bytes_received} B"
        )


class ActionLog:
    """Chronological record of spreadsheet actions.

    One log is shared across a spreadsheet and every sheet derived from it
    (filtering creates new sheets but the user is doing one exploration).
    """

    def __init__(self) -> None:
        self.actions: list[ActionRecord] = []

    def record(self, name: str, params: str) -> "_ActionScope":
        return _ActionScope(self, ActionRecord(name=name, params=params))

    @property
    def count(self) -> int:
        return len(self.actions)

    @property
    def total_seconds(self) -> float:
        return sum(a.seconds for a in self.actions)

    @property
    def total_bytes(self) -> int:
        return sum(a.bytes_received for a in self.actions)

    def since(self, mark: int) -> list[ActionRecord]:
        """Actions recorded after position ``mark`` (for per-question spans)."""
        return self.actions[mark:]

    def describe(self) -> list[str]:
        return [a.describe() for a in self.actions]


class _ActionScope:
    """Context manager timing one action and collecting its sketch runs."""

    def __init__(self, log: ActionLog, record: ActionRecord):
        self._log = log
        self.record = record
        self._start = 0.0

    def __enter__(self) -> ActionRecord:
        self._start = time.perf_counter()
        return self.record

    def __exit__(self, exc_type, exc, tb) -> None:
        self.record.seconds = time.perf_counter() - self._start
        if exc_type is None:
            self._log.actions.append(self.record)
