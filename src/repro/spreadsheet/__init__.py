"""The spreadsheet layer: Hillview's user-facing functionality (§3).

:class:`~repro.spreadsheet.spreadsheet.Spreadsheet` is the facade; charts,
tabular views and analyses are returned as value objects; every action is
recorded for the Figure 11 case-study accounting; and
:mod:`repro.spreadsheet.operations` defines the Figure 4 workload O1-O11.
"""

from repro.spreadsheet.spreadsheet import Spreadsheet, SCAN_RATE_THRESHOLD
from repro.spreadsheet.view import TableView
from repro.spreadsheet.actions import ActionLog, ActionRecord
from repro.spreadsheet.charts import (
    HistogramChart,
    StackedChart,
    HeatmapChart,
    TrellisChart,
    TrellisHistogramChart,
    HeavyHittersResult,
    PcaResult,
)
from repro.spreadsheet.operations import (
    Operation,
    OPERATIONS,
    OPERATIONS_BY_ID,
    run_operation,
)

__all__ = [
    "Spreadsheet",
    "SCAN_RATE_THRESHOLD",
    "TableView",
    "ActionLog",
    "ActionRecord",
    "HistogramChart",
    "StackedChart",
    "HeatmapChart",
    "TrellisChart",
    "TrellisHistogramChart",
    "HeavyHittersResult",
    "PcaResult",
    "Operation",
    "OPERATIONS",
    "OPERATIONS_BY_ID",
    "run_operation",
]
