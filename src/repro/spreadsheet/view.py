"""Tabular views: what the spreadsheet grid shows (§3.3).

A :class:`TableView` wraps the next-items summary for one screen of rows:
the sort-column values of K distinct rows with repetition counts, plus the
scroll position.  Paging keeps the last visible row as the next start key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render import ascii_art
from repro.sketches.next_items import NextKList
from repro.table.sort import RecordOrder, RowKey


@dataclass
class TableView:
    """One screen of the tabular view."""

    order: RecordOrder
    next_k: NextKList
    k: int

    @property
    def rows(self) -> list[tuple]:
        return self.next_k.rows

    @property
    def counts(self) -> list[int]:
        return self.next_k.counts

    @property
    def row_count(self) -> int:
        """Distinct rows shown (<= k at the end of the data)."""
        return len(self.next_k.rows)

    @property
    def at_end(self) -> bool:
        return self.row_count < self.k

    @property
    def scroll_position(self) -> float:
        """Approximate position of the view's first row in [0, 1]."""
        return self.next_k.position_fraction

    def last_key(self) -> RowKey | None:
        """Start key for the following page (None when the view is empty)."""
        if not self.next_k.rows:
            return None
        return self.order.key_from_values(self.next_k.rows[-1])

    def first_values(self) -> tuple | None:
        return self.next_k.rows[0] if self.next_k.rows else None

    def column_values(self, column: str) -> list[object | None]:
        """The displayed values of one sort column, top to bottom."""
        try:
            position = self.order.columns.index(column)
        except ValueError:
            raise KeyError(f"column {column!r} is not part of this view's order")
        return [values[position] for values in self.next_k.rows]

    def ascii(self) -> str:
        return ascii_art.table_ascii(self.next_k)

    def __repr__(self) -> str:
        return (
            f"<TableView order={self.order.spec()} rows={self.row_count} "
            f"pos={self.scroll_position:.3f}>"
        )
