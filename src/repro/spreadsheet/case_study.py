"""The Figure 10 case study: twenty questions answered through the UI.

Each question is scripted as the sequence of spreadsheet actions an operator
would take (§7.5).  The functions return a human-readable answer string; the
action log records how many actions each answer took (Figure 11 counts 1-6
actions per question, median 3).

Q4, Q6 and Q10 had "only a partially satisfactory answer" in the paper
(date separation / dedup limitations) — the scripts reproduce the same
workflow and annotate the caveat.  Q20 cannot be answered: the dataset has
no downed-flights information; the script performs the investigation that
*determines* that, as the paper's operator did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.spreadsheet.spreadsheet import Spreadsheet
from repro.table.compute import ColumnPredicate
from repro.table.sort import RecordOrder


@dataclass(frozen=True)
class Question:
    """One case-study question with its scripted answer procedure."""

    q_id: str
    text: str
    answer: Callable[[Spreadsheet], str]
    fully_answerable: bool = True


def _mean_delay_by(sheet: Spreadsheet, column: str) -> dict:
    """Mean departure delay per value of a categorical column.

    UI equivalent: a stacked histogram of DepDelay by ``column``, hovering
    bars; computed here from the stacked summary exactly as the chart shows.
    """
    chart = sheet.stacked_histogram("DepDelay", column, with_cdf=False)
    # Bucket midpoints weighted by per-color cell counts.
    buckets = chart.x_buckets
    mids = np.array(
        [sum(buckets.bucket_range(i)) / 2 for i in range(buckets.count)]
    )
    cells = chart.cell_counts  # [x, y]
    means = {}
    for j in range(chart.y_buckets.count):
        weights = cells[:, j]
        total = weights.sum()
        if total > 0:
            means[chart.y_buckets.label(j)] = float((mids * weights).sum() / total)
    return means


def q1(sheet: Spreadsheet) -> str:
    """Who has more late flights, UA or AA?"""
    ua = sheet.filter_equals("Airline", "UA")
    ua_chart = ua.histogram("DepDelay", with_cdf=True)
    aa = sheet.filter_equals("Airline", "AA")
    aa_chart = aa.histogram("DepDelay", with_cdf=True)
    ua_late = 1.0 - ua_chart.percentile(15.0)
    aa_late = 1.0 - aa_chart.percentile(15.0)
    worse = "UA" if ua_late > aa_late else "AA"
    return f"{worse} ({ua_late:.1%} vs {aa_late:.1%} flights >15min late)"


def q2(sheet: Spreadsheet) -> str:
    """Which airline has the least departure time delay?"""
    means = _mean_delay_by(sheet, "Airline")
    best = min(means, key=means.get)
    return f"{best} (mean {means[best]:.1f} min)"


def q3(sheet: Spreadsheet) -> str:
    """What is the typical delay of AA flight 11?"""
    aa = sheet.filter_equals("Airline", "AA")
    flight = aa.filter_rows(ColumnPredicate("FlightNum", "==", 11))
    stats = flight.column_summary("DepDelay")
    number = 11
    if stats.present_count == 0:
        # Flight 11 may not exist in synthetic data: take AA's most common
        # flight number instead (one extra action, as an operator would).
        hitters = aa.heavy_hitters("FlightNum", k=5, method="streaming")
        if not hitters.hitters:
            return "no AA flights in the data"
        number = int(hitters.hitters[0][0])
        flight = aa.filter_rows(ColumnPredicate("FlightNum", "==", number))
        stats = flight.column_summary("DepDelay")
    return (
        f"AA {number}: mean {stats.mean:.1f} min over "
        f"{stats.present_count} flights"
    )


def q4(sheet: Spreadsheet) -> str:
    """How many flights leave NY each day? (partially answerable)"""
    ny = sheet.filter_rows(ColumnPredicate("OriginState", "==", "NY"))
    stats = ny.column_summary("FlightDate")
    days = (
        (stats.max_value - stats.min_value).days + 1
        if stats.present_count
        else 1
    )
    rate = stats.row_count / max(days, 1)
    return f"~{rate:.0f}/day (spreadsheet cannot cleanly separate dates)"


def q5(sheet: Spreadsheet) -> str:
    """Is it better to fly from SFO to JFK or EWR?"""
    answers = {}
    for dest in ("JFK", "EWR"):
        route = sheet.filter_rows(
            ColumnPredicate("Origin", "==", "SFO")
            & ColumnPredicate("Dest", "==", dest)
        )
        stats = route.column_summary("ArrDelay")
        answers[dest] = stats.mean if stats.present_count else float("inf")
    best = min(answers, key=answers.get)
    return f"SFO->{best} (mean arrival delay {answers[best]:.1f} min)"


def q6(sheet: Spreadsheet) -> str:
    """How many destinations have direct flights from both SFO and SJC?
    (partially answerable: the spreadsheet does not deduplicate for you)"""
    dests = {}
    for origin in ("SFO", "SJC"):
        from_origin = sheet.filter_equals("Origin", origin)
        hh = from_origin.heavy_hitters("Dest", k=50, method="streaming")
        dests[origin] = set(hh.values())
    both = dests["SFO"] & dests["SJC"]
    return f"~{len(both)} (top destinations only; manual dedup needed)"


def q7(sheet: Spreadsheet) -> str:
    """What is the best hour of the day to fly?"""
    chart = sheet.heatmap("CRSDepTime", "DepDelay")
    counts = chart.counts
    # Mean delay per x-bucket from the heat-map rows, as the eye reads it.
    y_mids = np.array(
        [
            sum(chart.y_buckets.bucket_range(j)) / 2
            for j in range(chart.y_buckets.count)
        ]
    )
    totals = counts.sum(axis=1)
    with np.errstate(invalid="ignore"):
        means = (counts * y_mids).sum(axis=1) / np.maximum(totals, 1)
    means[totals < totals.max() * 0.01] = np.inf  # ignore empty hours
    best = int(np.argmin(means))
    label = chart.x_buckets.label(best)
    return f"departure block {label} (lowest mean delay)"


def q8(sheet: Spreadsheet) -> str:
    """Which state has the worst departure delay?"""
    means = _mean_delay_by(sheet, "OriginState")
    worst = max(means, key=means.get)
    return f"{worst} (mean {means[worst]:.1f} min)"


def q9(sheet: Spreadsheet) -> str:
    """Which airline has the most flight cancellations (by rate)?"""
    overall = sheet.heavy_hitters("Airline", k=30, method="streaming")
    cancelled = sheet.filter_equals("Cancelled", 1)
    among_cancelled = cancelled.heavy_hitters("Airline", k=30, method="streaming")
    flights_by = dict(overall.hitters)
    rates = {
        airline: count / flights_by[airline]
        for airline, count in among_cancelled.hitters
        if flights_by.get(airline)
    }
    worst = max(rates, key=rates.get)
    return f"{worst} ({rates[worst]:.1%} of its flights cancelled)"


def q10(sheet: Spreadsheet) -> str:
    """Which date had the most flights? (partially answerable)"""
    from repro.table.column import millis_to_datetime

    hh = sheet.heavy_hitters("FlightDate", k=20, method="streaming")
    if not hh.hitters:
        return "no single date dominates (dates separate poorly)"
    top, count = hh.hitters[0]
    date = millis_to_datetime(int(top))
    return f"{date:%Y-%m-%d} (~{count} flights; date granularity is coarse)"


def q11(sheet: Spreadsheet) -> str:
    """What is the longest flight in distance?"""
    view = sheet.table_view(
        RecordOrder.of("Distance", ascending=False), k=1
    )
    distance = view.rows[0][0]
    return f"{distance:.0f} miles"


def q12(sheet: Spreadsheet) -> str:
    """Is there a significant difference between taxi times of UA and AA
    on the same airport?  (The paper's 5-action flow, at ORD.)"""
    at_ord = sheet.filter_equals("Origin", "ORD")
    means = {}
    for airline in ("UA", "AA"):
        flights = at_ord.filter_equals("Airline", airline)
        stats = flights.column_summary("TaxiOut")
        if stats.present_count:
            means[airline] = stats.mean
    delta = means.get("UA", 0.0) - means.get("AA", 0.0)
    verdict = "yes" if abs(delta) > 0.5 else "no"
    return f"{verdict} (UA-AA taxi-out difference at ORD {delta:+.1f} min)"


def q13(sheet: Spreadsheet) -> str:
    """Which city has the best and worst weather delays?"""
    chart = sheet.stacked_histogram("WeatherDelay", "OriginCityName", with_cdf=False)
    means = _mean_delay_by_from_chart(chart)
    best = min(means, key=means.get)
    worst = max(means, key=means.get)
    return f"best {best}, worst {worst}"


def _mean_delay_by_from_chart(chart) -> dict:
    buckets = chart.x_buckets
    mids = np.array(
        [sum(buckets.bucket_range(i)) / 2 for i in range(buckets.count)]
    )
    means = {}
    for j in range(chart.y_buckets.count):
        weights = chart.cell_counts[:, j]
        total = weights.sum()
        if total > 100:  # cities with enough flights to judge
            means[chart.y_buckets.label(j)] = float(
                (mids * weights).sum() / total
            )
    return means


def q14(sheet: Spreadsheet) -> str:
    """Which airlines fly to Hawaii?"""
    hawaii = sheet.filter_rows(ColumnPredicate("DestState", "==", "HI"))
    hh = hawaii.heavy_hitters("Airline", k=20, method="streaming")
    return ", ".join(sorted(str(v) for v in hh.values()))


def q15(sheet: Spreadsheet) -> str:
    """Which Hawaii airport has the best departure delays?"""
    hawaii = sheet.filter_rows(ColumnPredicate("OriginState", "==", "HI"))
    means = _mean_delay_by(hawaii, "Origin")
    best = min(means, key=means.get)
    return f"{best} (mean {means[best]:.1f} min)"


def q16(sheet: Spreadsheet) -> str:
    """How many flights per day are there between LAX and SFO?"""
    route = sheet.filter_rows(
        ColumnPredicate("Origin", "in", ("LAX", "SFO"))
        & ColumnPredicate("Dest", "in", ("LAX", "SFO"))
    )
    stats = route.column_summary("FlightDate")
    days = (
        (stats.max_value - stats.min_value).days + 1
        if stats.present_count
        else 1
    )
    return f"~{stats.row_count / max(days, 1):.1f}/day"


def q17(sheet: Spreadsheet) -> str:
    """Which weekday has the least delay flying from ORD to EWR?"""
    route = sheet.filter_rows(
        ColumnPredicate("Origin", "==", "ORD")
        & ColumnPredicate("Dest", "==", "EWR")
    )
    chart = route.heatmap("DayOfWeek", "DepDelay")
    y_mids = np.array(
        [
            sum(chart.y_buckets.bucket_range(j)) / 2
            for j in range(chart.y_buckets.count)
        ]
    )
    totals = chart.counts.sum(axis=1)
    with np.errstate(invalid="ignore"):
        means = (chart.counts * y_mids).sum(axis=1) / np.maximum(totals, 1)
    means[totals == 0] = np.inf
    best = int(np.argmin(means))
    weekdays = "Mon Tue Wed Thu Fri Sat Sun".split()
    lo, _ = chart.x_buckets.bucket_range(best)
    return weekdays[min(int(round(lo + 0.5)) - 1, 6)]


def q18(sheet: Spreadsheet) -> str:
    """Which day in December has the most and least flights?"""
    december = sheet.filter_rows(ColumnPredicate("Month", "==", 12))
    chart = december.histogram("DayofMonth", buckets=31, with_cdf=False)
    counts = chart.counts
    most = int(np.argmax(counts))
    least = int(np.argmin(counts[counts > 0])) if (counts > 0).any() else 0
    lo_most, _ = chart.buckets.bucket_range(most)
    ranked = np.argsort(counts)
    present = [i for i in ranked if counts[i] > 0]
    lo_least, _ = chart.buckets.bucket_range(int(present[0]))
    return (
        f"most: Dec {int(lo_most) + 1}, least: Dec {int(lo_least) + 1}"
    )


def q19(sheet: Spreadsheet) -> str:
    """How many airlines stopped flying within the dataset period?"""
    recent = sheet.filter_rows(ColumnPredicate("Year", ">=", 2017))
    all_time = sheet.heavy_hitters("Airline", k=30, method="streaming")
    recent_hh = recent.heavy_hitters("Airline", k=30, method="streaming")
    stopped = set(all_time.values()) - set(recent_hh.values())
    return f"{len(stopped)} ({', '.join(sorted(map(str, stopped)))})"


def q20(sheet: Spreadsheet) -> str:
    """How many flights took off but never landed? (unanswerable)"""
    flown = sheet.filter_rows(
        ColumnPredicate("Cancelled", "==", 0)
        & ColumnPredicate("ArrDelay", "is_missing")
        & ColumnPredicate("Diverted", "==", 0)
    )
    stats = flown.column_summary("DepDelay")
    return (
        f"cannot be answered: the dataset lacks downed-flight records "
        f"({stats.row_count} rows with no arrival are diversions/data gaps)"
    )


QUESTIONS: list[Question] = [
    Question("Q1", "Who has more late flights, UA or AA?", q1),
    Question("Q2", "Which airline has the least departure time delay?", q2),
    Question("Q3", "What is the typical delay of AA flight 11?", q3),
    Question("Q4", "How many flights leave NY each day?", q4, False),
    Question("Q5", "Is it better to fly from SFO to JFK or EWR?", q5),
    Question("Q6", "How many destinations have direct flights from both SFO and SJC?", q6, False),
    Question("Q7", "What is the best hour of the day to fly?", q7),
    Question("Q8", "Which state has the worst departure delay?", q8),
    Question("Q9", "Which airline has the most flight cancellations?", q9),
    Question("Q10", "Which date had the most flights?", q10, False),
    Question("Q11", "What is the longest flight in distance?", q11),
    Question("Q12", "Is there a significant difference between taxi times of UA or AA on the same airport?", q12),
    Question("Q13", "Which city has the best and worst weather delays?", q13),
    Question("Q14", "Which airlines fly to Hawaii?", q14),
    Question("Q15", "Which Hawaii airport has the best departure delays?", q15),
    Question("Q16", "How many flights per day are there between LAX and SFO?", q16),
    Question("Q17", "Which weekday has the least delay flying from ORD to EWR?", q17),
    Question("Q18", "Which day in December has the most and least flights?", q18),
    Question("Q19", "How many airlines stopped flying within the dataset period?", q19),
    Question("Q20", "How many flights took off but never landed?", q20, False),
]


@dataclass
class CaseStudyResult:
    q_id: str
    text: str
    answer: str
    actions: int
    seconds: float
    fully_answerable: bool


def run_case_study(
    sheet: Spreadsheet, questions: list[Question] | None = None
) -> list[CaseStudyResult]:
    """Answer every question, measuring actions and machine time (Fig 11)."""
    import time

    results = []
    for question in questions or QUESTIONS:
        mark = sheet.log.count
        start = time.perf_counter()
        answer = question.answer(sheet)
        elapsed = time.perf_counter() - start
        actions = sheet.log.count - mark
        results.append(
            CaseStudyResult(
                q_id=question.q_id,
                text=question.text,
                answer=answer,
                actions=actions,
                seconds=elapsed,
                fully_answerable=question.fully_answerable,
            )
        )
    return results
