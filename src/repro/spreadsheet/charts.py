"""Chart result objects returned by the spreadsheet facade.

Each chart couples the merged summary with everything needed to render it
(buckets, resolution, sampling rate) plus accessors for renderings and
ASCII output.  Charts are values: they can be kept, compared, re-rendered
at other resolutions, and inspected point-by-point (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.buckets import Buckets
from repro.core.resolution import Resolution
from repro.render import ascii_art
from repro.render.cdf_render import CdfRendering, render_cdf
from repro.render.heatmap_render import HeatmapRendering, render_heatmap
from repro.render.histogram_render import (
    HistogramRendering,
    StackedRendering,
    render_histogram,
    render_stacked_histogram,
)
from repro.sketches.heatmap import HeatmapSummary
from repro.sketches.histogram import HistogramSummary
from repro.sketches.moments import ColumnStats
from repro.sketches.stacked import StackedHistogramSummary
from repro.sketches.trellis import TrellisHistogramSummary, TrellisSummary


@dataclass
class HistogramChart:
    """A histogram (and optional CDF) over one column (§4.3)."""

    column: str
    buckets: Buckets
    summary: HistogramSummary
    resolution: Resolution
    rate: float = 1.0
    cdf_summary: HistogramSummary | None = None
    stats: ColumnStats | None = None

    @property
    def counts(self) -> np.ndarray:
        """Estimated population counts per bucket."""
        return self.summary.scaled_counts(self.rate)

    def bucket_value(self, index: int) -> tuple[str, float]:
        """(label, estimated count) of one bar — "inspect individual points"."""
        return self.buckets.label(index), float(self.counts[index])

    def rendering(self) -> HistogramRendering:
        return render_histogram(self.summary, self.buckets, self.resolution, self.rate)

    def cdf_rendering(self) -> CdfRendering | None:
        if self.cdf_summary is None:
            return None
        return render_cdf(self.cdf_summary, self.resolution)

    def percentile(self, value: float) -> float:
        """Fraction of in-range rows at or below ``value`` (from the CDF)."""
        source = self.cdf_summary or self.summary
        from repro.sketches.cdf import CdfSketch

        fractions = CdfSketch.cumulative(source)
        if not isinstance(self.buckets, Buckets) or not len(fractions):
            return float("nan")
        idx = self.buckets.index_numeric(np.array([value]))[0]
        if idx < 0:
            return 0.0 if np.isnan(value) else float(value > getattr(self.buckets, "max_value", np.inf))
        # CDF summaries bucket at their own width; rescale the index.
        position = int(idx * len(fractions) / self.buckets.count)
        return float(fractions[min(position, len(fractions) - 1)])

    def ascii(self, height: int = 12) -> str:
        return ascii_art.histogram_ascii(self.summary, self.buckets, height, self.rate)


@dataclass
class StackedChart:
    """Stacked (or normalized stacked) histogram over X colored by Y."""

    x_column: str
    y_column: str
    x_buckets: Buckets
    y_buckets: Buckets
    summary: StackedHistogramSummary
    resolution: Resolution
    rate: float = 1.0
    normalized: bool = False
    cdf_summary: HistogramSummary | None = None

    @property
    def bar_counts(self) -> np.ndarray:
        bars = self.summary.bar_counts.astype(np.float64)
        return bars / self.rate if self.rate < 1.0 else bars

    @property
    def cell_counts(self) -> np.ndarray:
        cells = self.summary.cell_counts.astype(np.float64)
        return cells / self.rate if self.rate < 1.0 else cells

    def y_share(self, x_index: int) -> np.ndarray:
        """The Y-color composition of one bar, as fractions."""
        cells = self.cell_counts[x_index]
        total = cells.sum()
        return cells / total if total > 0 else cells

    def rendering(self) -> StackedRendering:
        return render_stacked_histogram(
            self.summary, self.resolution, self.rate, self.normalized
        )


@dataclass
class HeatmapChart:
    """Two-dimensional density chart (§4.3)."""

    x_column: str
    y_column: str
    x_buckets: Buckets
    y_buckets: Buckets
    summary: HeatmapSummary
    resolution: Resolution
    rate: float = 1.0
    log_scale: bool = False

    @property
    def counts(self) -> np.ndarray:
        counts = self.summary.counts.astype(np.float64)
        return counts / self.rate if self.rate < 1.0 else counts

    def cell_value(self, x_index: int, y_index: int) -> float:
        return float(self.counts[x_index, y_index])

    def rendering(self) -> HeatmapRendering:
        return render_heatmap(
            self.summary,
            self.resolution,
            self.rate,
            log_scale=self.log_scale,
        )

    def swapped(self) -> "HeatmapChart":
        """The same chart with the axes exchanged (§3.4: "swap axes").

        Served instantly from the summary in hand — no query runs.
        """
        return HeatmapChart(
            x_column=self.y_column,
            y_column=self.x_column,
            x_buckets=self.y_buckets,
            y_buckets=self.x_buckets,
            summary=self.summary.transposed(),
            resolution=self.resolution,
            rate=self.rate,
            log_scale=self.log_scale,
        )

    def ascii(self) -> str:
        return ascii_art.heatmap_ascii(self.summary, self.rate)


@dataclass
class TrellisChart:
    """An array of heat maps grouped by one or two columns (§3.4, Fig 2)."""

    group_column: str
    x_column: str
    y_column: str
    group_buckets: Buckets
    summary: TrellisSummary
    resolution: Resolution
    rate: float = 1.0
    group2_column: str | None = None
    group2_buckets: Buckets | None = None

    def pane(self, index: int) -> HeatmapSummary:
        return self.summary.panes[index]

    def pane_label(self, index: int) -> str:
        if self.group2_buckets is None:
            return self.group_buckets.label(index)
        major, minor = divmod(index, self.group2_buckets.count)
        return (
            f"{self.group_buckets.label(major)} / "
            f"{self.group2_buckets.label(minor)}"
        )

    @property
    def pane_count(self) -> int:
        return len(self.summary.panes)

    def pane_rendering(self, index: int) -> HeatmapRendering:
        return render_heatmap(self.summary.panes[index], self.resolution, self.rate)

    def rendering(self):
        """All panes composed onto one canvas (Fig 2)."""
        from repro.render.trellis_render import render_trellis_heatmaps

        full = Resolution(
            self.resolution.width * max(1, int(self.pane_count ** 0.5)),
            self.resolution.height * max(1, int(self.pane_count ** 0.5)),
        )
        return render_trellis_heatmaps(self.summary, full, self.rate)

    def ascii(self, panes: int | None = None) -> str:
        blocks = []
        for i in range(min(self.pane_count, panes or self.pane_count)):
            blocks.append(f"-- {self.pane_label(i)} --")
            blocks.append(ascii_art.heatmap_ascii(self.summary.panes[i], self.rate))
        return "\n".join(blocks)


@dataclass
class TrellisHistogramChart:
    """An array of histograms grouped by one or two columns (Fig 2)."""

    group_column: str
    x_column: str
    group_buckets: Buckets
    x_buckets: Buckets
    summary: TrellisHistogramSummary
    resolution: Resolution
    rate: float = 1.0
    group2_column: str | None = None
    group2_buckets: Buckets | None = None

    def pane(self, index: int) -> HistogramSummary:
        return self.summary.panes[index]

    def pane_label(self, index: int) -> str:
        if self.group2_buckets is None:
            return self.group_buckets.label(index)
        major, minor = divmod(index, self.group2_buckets.count)
        return (
            f"{self.group_buckets.label(major)} / "
            f"{self.group2_buckets.label(minor)}"
        )

    @property
    def pane_count(self) -> int:
        return len(self.summary.panes)

    def pane_counts(self, index: int) -> np.ndarray:
        """Estimated population counts per bucket for one pane."""
        return self.summary.panes[index].scaled_counts(self.rate)

    def pane_rendering(self, index: int) -> HistogramRendering:
        return render_histogram(
            self.summary.panes[index], self.x_buckets, self.resolution, self.rate
        )

    def rendering(self):
        """All panes composed onto one canvas (Fig 2)."""
        from repro.render.trellis_render import render_trellis_histograms

        full = Resolution(
            self.resolution.width * max(1, int(self.pane_count ** 0.5)),
            self.resolution.height * max(1, int(self.pane_count ** 0.5)),
        )
        return render_trellis_histograms(
            self.summary, self.x_buckets, full, self.rate
        )

    def ascii(self, panes: int | None = None, height: int = 8) -> str:
        blocks = []
        for i in range(min(self.pane_count, panes or self.pane_count)):
            blocks.append(f"-- {self.pane_label(i)} --")
            blocks.append(
                ascii_art.histogram_ascii(
                    self.summary.panes[i], self.x_buckets, height, self.rate
                )
            )
        return "\n".join(blocks)


@dataclass
class HeavyHittersResult:
    """Most frequent values of a column with estimated counts (§3.3)."""

    column: str
    method: str  # "sampling" | "streaming"
    hitters: list[tuple[object, int]]
    total_rows: int
    sample_size: int = 0

    def frequencies(self) -> list[tuple[object, float]]:
        basis = self.sample_size if self.method == "sampling" else self.total_rows
        if basis == 0:
            return []
        return [(value, count / basis) for value, count in self.hitters]

    def values(self) -> list[object]:
        return [value for value, _ in self.hitters]


@dataclass
class PcaResult:
    """Principal components of a set of numeric columns (§3.3)."""

    columns: list[str]
    eigenvalues: np.ndarray
    components: np.ndarray  # rows are components
    explained_variance: float
    rows_used: int

    def projection_fn(self, component: int):
        """A map function projecting a row onto one component.

        Suitable for :meth:`Spreadsheet.derive`: creates the projected
        column at the leaves, as Hillview materializes PCA outputs.
        """
        weights = self.components[component]
        columns = list(self.columns)

        def project(row: dict) -> float | None:
            total = 0.0
            for name, w in zip(columns, weights):
                value = row[name]
                if value is None:
                    return None
                total += w * float(value)
            return total

        return project
