"""Sample-size bounds for vizketches (paper §4.3 and Appendix C).

Every sampled vizketch must draw enough rows that the *rendered* chart is
within half a pixel (one pixel after rounding) or one color shade of the
exact rendering, with probability ``1 - delta``.  The bounds here follow the
paper's Appendix C:

* Hoeffding/Chernoff bound for a single estimated proportion;
* union bound across buckets / pixels (the VC-dimension argument for
  intervals reduces to this for our families of ranges);
* the practical observation (Appendix C.2) that ``C * V**2`` samples work
  well for histograms when ``p_max`` is not tiny.

All functions return integer sample sizes, never rates; the caller converts
to a rate using the dataset row count from the preparation phase (§5.3).
"""

from __future__ import annotations

import math

#: Default error probability used throughout the paper's analysis.
DEFAULT_DELTA = 0.01

#: Default pixel slack mu: a mu-approximate histogram keeps every bar within
#: one pixel of the ideal rendering as long as mu < 0.5 (Appendix C.2).
DEFAULT_MU = 0.4

#: Practical multiplier for the "C * V**2 samples work well" rule.
PRACTICAL_C = 5.0


def hoeffding_sample_size(epsilon: float, delta: float = DEFAULT_DELTA) -> int:
    """Samples so one estimated proportion has additive error <= epsilon.

    Standard two-sided Hoeffding bound: ``n >= ln(2/delta) / (2 epsilon^2)``.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def uniform_error_sample_size(
    epsilon: float, classes: int, delta: float = DEFAULT_DELTA
) -> int:
    """Samples so ``classes`` simultaneous proportions all have error <= epsilon.

    Union bound over the classes: replace delta by delta/classes.  For the
    families the paper uses (intervals, axis-aligned rectangles) this matches
    the VC-dimension bound of Theorem 1 up to constants.
    """
    if classes < 1:
        raise ValueError("classes must be >= 1")
    return hoeffding_sample_size(epsilon, delta / classes)


def histogram_sample_size(
    height: int,
    buckets: int,
    delta: float = DEFAULT_DELTA,
    mu: float = DEFAULT_MU,
    p_max_hint: float | None = None,
) -> int:
    """Samples for a mu-approximate histogram (Appendix C.2, Theorem 3).

    A bar of pixel height j must represent a probability within
    ``mu * p_max / V`` of the truth, so ``epsilon = mu * p_max / V`` with a
    union bound across the ``buckets`` bars (plus the estimate of p_max).

    ``p_max_hint`` is the caller's estimate of the largest bucket
    probability; when unknown the worst useful case ``1/buckets`` is assumed,
    recovering the paper's ``O(V^2 B^2 log(1/delta))`` form from §4.3.
    """
    if height < 1 or buckets < 1:
        raise ValueError("height and buckets must be >= 1")
    p_max = p_max_hint if p_max_hint is not None else 1.0 / buckets
    p_max = min(max(p_max, 1e-9), 1.0)
    epsilon = mu * p_max / height
    return uniform_error_sample_size(min(epsilon, 0.5), buckets + 1, delta)


def practical_histogram_sample_size(
    height: int, delta: float = DEFAULT_DELTA, c: float = PRACTICAL_C
) -> int:
    """The paper's practical rule: ``C * V**2`` samples (Appendix C.2).

    This corresponds to assuming p_max is a constant fraction of the data —
    true for the dominant bars the eye actually compares.  It is the default
    used by the sampled histogram vizketch, as in Hillview itself.
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    return math.ceil(c * height * height * math.log(2.0 / delta))


def cdf_sample_size(
    height: int, delta: float = DEFAULT_DELTA, slack: float = 0.1, width: int | None = None
) -> int:
    """Samples for a CDF rendering (Appendix B.1).

    The paper targets per-pixel error ``0.1/V`` so that after rounding the
    drawn pixel is within ``0.6/V`` of the truth; ``slack`` is that 0.1
    numerator (anything below 0.5 keeps the rendering within one pixel).
    The cumulative sums live in [0, 1], so ``epsilon = slack/V`` with a
    union bound over the ``width`` horizontal pixels (default: V).
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    if not 0 < slack < 0.5:
        raise ValueError("slack must be in (0, 0.5)")
    epsilon = slack / height
    return uniform_error_sample_size(
        min(max(epsilon, 1e-6), 0.5), width or height, delta
    )


def heatmap_sample_size(
    x_bins: int,
    y_bins: int,
    colors: int,
    delta: float = DEFAULT_DELTA,
    p_max_hint: float | None = None,
) -> int:
    """Samples so every heat-map bin is within one color shade (App. C.2).

    With ``colors`` discernible shades spanning ``[0, p_max]``, a shade is an
    interval of width ``p_max / colors`` and we need additive accuracy
    ``p_max / (4 colors)`` per bin, union-bounded across all bins.
    """
    if x_bins < 1 or y_bins < 1 or colors < 1:
        raise ValueError("bins and colors must be >= 1")
    bins = x_bins * y_bins
    p_max = p_max_hint if p_max_hint is not None else 4.0 / bins
    p_max = min(max(p_max, 1e-9), 1.0)
    epsilon = p_max / (4.0 * colors)
    return uniform_error_sample_size(min(epsilon, 0.5), bins + 1, delta)


def quantile_sample_size(height: int, delta: float = DEFAULT_DELTA) -> int:
    """Samples for the scroll-bar quantile estimate (Appendix C.1, Thm 2).

    Pixel j of a V-pixel scroll bar represents ranks in an interval of width
    ``2 epsilon`` with ``epsilon = 1/(2V)``.  The paper notes this "requires
    sample complexity O(V^2) for constant probability of success"; we use
    ``V^2`` scaled mildly by ``log(1/delta)``, the practical choice (a
    scroll-bar rank error of a couple of pixels is imperceptible).
    """
    if height < 1:
        raise ValueError("height must be >= 1")
    return math.ceil(height * height * max(1.0, math.log(1.0 / delta) / math.log(100.0)))


def heavy_hitters_sample_size(k: int, delta: float = DEFAULT_DELTA) -> int:
    """Samples for the sampling heavy-hitters vizketch (§4.3, Theorem 4).

    ``n = K^2 log(K/delta)`` finds every element with frequency >= 1/K and
    reports none below 1/(4K), with probability 1 - delta.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    return math.ceil(k * k * math.log(max(k, 2) / delta))


def sample_rate(target_size: int, total_rows: int) -> float:
    """Bernoulli sampling rate drawing ~``target_size`` of ``total_rows``.

    Vizketches sample each shard at a single global rate computed from the
    preparation phase's row count (§5.3); the rate is clamped to 1.0 when
    the dataset is small enough to scan outright.
    """
    if target_size < 0:
        raise ValueError("target_size must be >= 0")
    if total_rows <= 0:
        return 1.0
    return min(1.0, target_size / total_rows)
