"""Uvarint-framed message framing, shared by every socket in the system.

One frame is a uvarint length prefix (the :mod:`repro.core.serialization`
idiom) followed by that many payload bytes.  The same format runs on two
wires: browser/client <-> web server (:mod:`repro.service.transport`) and
root <-> worker processes (:mod:`repro.engine.remote`), so a captured byte
stream from either can be decoded with one tool.

Both an asyncio reader and a blocking file-object reader are provided; the
caller chooses the exception type raised on a malformed or truncated frame
so each layer reports errors in its own vocabulary.
"""

from __future__ import annotations

import asyncio
from typing import BinaryIO

from repro.core.serialization import Encoder
from repro.errors import HillviewError

#: Frames larger than this are a protocol violation (a reply payload is
#: resolution-bounded, §4.2; requests are tiny).
MAX_FRAME_BYTES = 32 * 1024 * 1024


class FrameError(HillviewError):
    """A malformed, oversized, or truncated wire frame."""

    code = "framing"


def encode_frame(payload: bytes) -> bytes:
    """One wire frame: uvarint length prefix + payload bytes."""
    enc = Encoder()
    enc.write_bytes(payload)
    return enc.to_bytes()


async def read_frame(
    reader: asyncio.StreamReader, error: type[Exception] = FrameError
) -> bytes | None:
    """Read one frame; None on clean EOF at a frame boundary."""
    length = 0
    shift = 0
    while True:
        try:
            byte = (await reader.readexactly(1))[0]
        except asyncio.IncompleteReadError:
            if shift == 0:
                return None  # clean close between frames
            raise error("connection closed inside a frame header")
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
        if shift > 70:
            raise error("frame header uvarint too long")
    if length > MAX_FRAME_BYTES:
        raise error(f"frame of {length} bytes exceeds the maximum")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise error("connection closed inside a frame body")


def read_frame_blocking(
    stream: BinaryIO, error: type[Exception] = FrameError
) -> bytes | None:
    """Blocking twin of :func:`read_frame` for synchronous endpoints."""
    length = 0
    shift = 0
    while True:
        chunk = stream.read(1)
        if not chunk:
            if shift == 0:
                return None
            raise error("connection closed inside a frame header")
        byte = chunk[0]
        length |= (byte & 0x7F) << shift
        if not byte & 0x80:
            break
        shift += 7
        if shift > 70:
            raise error("frame header uvarint too long")
    if length > MAX_FRAME_BYTES:
        raise error(f"frame of {length} bytes exceeds the maximum")
    payload = stream.read(length)
    if len(payload) != length:
        raise error("connection closed inside a frame body")
    return payload


def write_frame(stream: BinaryIO, payload: bytes) -> None:
    """Write one frame and flush (blocking endpoints)."""
    stream.write(encode_frame(payload))
    stream.flush()
