"""The mergeable-summary (vizketch) abstraction (paper §4.1–§4.2).

A vizketch method consists of two pure, single-threaded functions::

    summarize(shard)  -> summary
    merge(s1, s2)     -> summary

subject to the mergeability law

    summarize(D1 ⊎ D2) == merge(summarize(D1), summarize(D2))

(exactly for deterministic sketches; in distribution for sampled ones).
Everything else — distribution over servers, threading, partial-result
streaming, caching, fault tolerance — is provided uniformly by the engine
(paper §5.5), so a sketch author never deals with concurrency.

Summaries must be serializable so the engine can account network bytes and
ship them between tree nodes.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Generic, TypeVar

import numpy as np

from repro.core.rand import rng_for
from repro.core.serialization import Encoder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.table.table import Table

R = TypeVar("R", bound="Summary")


class Summary(ABC):
    """Base class for vizketch summaries.

    A summary is small — its size depends on the display resolution, never
    on the dataset size (paper §4.2).  Subclasses are plain value objects
    with an :meth:`encode` method; the engine uses the encoded size for
    bandwidth accounting (Figure 5, bottom).
    """

    @abstractmethod
    def encode(self, enc: Encoder) -> None:
        """Append the wire representation of this summary to ``enc``."""

    def serialized_size(self) -> int:
        """Size of this summary on the wire, in bytes."""
        enc = Encoder()
        self.encode(enc)
        return enc.size

    def to_bytes(self) -> bytes:
        enc = Encoder()
        self.encode(enc)
        return enc.to_bytes()


class Sketch(ABC, Generic[R]):
    """A mergeable summarization method (vizketch without the rendering).

    Subclasses implement :meth:`summarize`, :meth:`zero` and :meth:`merge`.
    ``merge`` must be associative with ``zero()`` as its identity (paper
    §5.3).  The engine always folds partials in a fixed order — shard
    order at the worker, worker-index order at the root — so merges that
    are only *approximately* commutative (Misra-Gries at capacity) still
    produce byte-identical results run over run.
    """

    #: Whether repeated execution yields identical results.  Deterministic
    #: sketch results may be stored in the computation cache (paper §5.4).
    deterministic: bool = True

    @property
    def name(self) -> str:
        """Human-readable sketch name (used in logs and progress bars)."""
        return type(self).__name__

    @abstractmethod
    def summarize(self, table: "Table") -> R:
        """Compute the summary of one data shard.

        Implementations are single-threaded and purely local: they may scan
        or sample ``table`` but must not touch global state (paper §5.5).
        """

    @abstractmethod
    def zero(self) -> R:
        """The identity summary: ``merge(zero(), s) == s``."""

    @abstractmethod
    def merge(self, left: R, right: R) -> R:
        """Combine two summaries of disjoint data into one.

        Must not mutate its arguments: the engine may merge the same partial
        result into several accumulation paths during progressive updates.
        """

    def cache_key(self) -> str | None:
        """Key identifying this computation in the computation cache.

        Only deterministic sketches are cacheable; randomized sketches
        return None and are always re-executed (paper §5.4).
        """
        return None

    def with_seed(self, seed: int) -> "Sketch[R]":
        """A copy of this sketch re-keyed to ``seed``.

        The engine's redo log stores seeds so a replayed (post-failure)
        execution reproduces identical summaries (paper §5.8).  Deterministic
        sketches ignore the seed and may return ``self``.
        """
        return self

    def merge_all(self, summaries: "list[R]") -> R:
        """Fold ``summaries`` left-to-right starting from :meth:`zero`."""
        result = self.zero()
        for summary in summaries:
            result = self.merge(result, summary)
        return result

    def __repr__(self) -> str:
        key = self.cache_key()
        return key if key is not None else f"<{self.name}>"


class SampledSketch(Sketch[R]):
    """Base class for sketches whose ``summarize`` samples rows.

    The sampling rate is global — computed once from the preparation phase's
    row count — and each shard draws its own deterministic stream keyed by
    ``(seed, shard_id)``, so results are reproducible under redo-log replay
    while remaining independent across shards (paper §5.6, §5.8).
    """

    deterministic = False

    def __init__(self, rate: float, seed: int):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"sampling rate must be in (0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)

    def with_seed(self, seed: int) -> "SampledSketch[R]":
        clone = copy.copy(self)
        clone.seed = int(seed)
        return clone

    def sampled_rows(self, table: "Table") -> np.ndarray:
        """Row indices of this shard's Bernoulli sample at ``self.rate``.

        A rate of 1.0 short-circuits to a full scan (no RNG consumed), so a
        sketch configured to scan is bit-identical to its streaming variant.
        """
        if self.rate >= 1.0:
            return table.members.indices()
        rng = rng_for(self.seed, "shard-sample", table.shard_id)
        return table.members.sample_rate(self.rate, rng)
