"""Compact binary codec for vizketch summaries.

Hillview requires every summary to be serializable for network transmission
(paper §5.5 step 1) and its evaluation reports the bytes received by the
root node (Figure 5, bottom).  This codec provides a deterministic, compact
wire format so the reproduction can account bytes faithfully:

* unsigned/signed varints (LEB128 with zigzag for signed values);
* IEEE-754 float64;
* length-prefixed UTF-8 strings;
* homogeneous numpy arrays (dtype tag + raw little-endian bytes).

The format is intentionally simple — it is a measurement instrument, not an
interchange standard.
"""

from __future__ import annotations

import struct
from typing import Iterable

import numpy as np

from repro.errors import SerializationError

_FLOAT64 = struct.Struct("<d")

# dtype tags for array encoding; stable across platforms.
_DTYPE_TAGS: dict[str, int] = {
    "float64": 0,
    "int64": 1,
    "int32": 2,
    "uint8": 3,
    "bool": 4,
    "float32": 5,
}
_TAG_DTYPES = {tag: np.dtype(name) for name, tag in _DTYPE_TAGS.items()}


class Encoder:
    """Append-only binary encoder."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []
        self._size = 0

    def _append(self, chunk: bytes) -> None:
        self._parts.append(chunk)
        self._size += len(chunk)

    @property
    def size(self) -> int:
        """Number of bytes written so far."""
        return self._size

    def to_bytes(self) -> bytes:
        return b"".join(self._parts)

    def write_uvarint(self, value: int) -> None:
        if value < 0:
            raise SerializationError(f"uvarint cannot encode negative {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._append(bytes(out))

    def write_int(self, value: int) -> None:
        """Signed integer via zigzag + uvarint."""
        self.write_uvarint(value * 2 if value >= 0 else -value * 2 - 1)

    def write_bool(self, value: bool) -> None:
        self._append(b"\x01" if value else b"\x00")

    def write_float(self, value: float) -> None:
        self._append(_FLOAT64.pack(float(value)))

    def write_str(self, value: str | None) -> None:
        """A string, or None encoded as a distinguished length marker."""
        if value is None:
            self.write_uvarint(0)
            return
        raw = value.encode("utf-8")
        self.write_uvarint(len(raw) + 1)
        self._append(raw)

    def write_bytes(self, value: bytes) -> None:
        self.write_uvarint(len(value))
        self._append(value)

    def write_array(self, array: np.ndarray) -> None:
        """A homogeneous numpy array (any shape; shape is preserved)."""
        arr = np.ascontiguousarray(array)
        name = arr.dtype.name
        if name not in _DTYPE_TAGS:
            raise SerializationError(f"unsupported array dtype {name!r}")
        self.write_uvarint(_DTYPE_TAGS[name])
        self.write_uvarint(arr.ndim)
        for dim in arr.shape:
            self.write_uvarint(dim)
        self._append(arr.astype(arr.dtype.newbyteorder("<"), copy=False).tobytes())

    def write_str_list(self, values: Iterable[str | None]) -> None:
        items = list(values)
        self.write_uvarint(len(items))
        for item in items:
            self.write_str(item)


class Decoder:
    """Sequential binary decoder matching :class:`Encoder`.

    ``data`` may be ``bytes`` or any buffer (``memoryview``, ``mmap``).
    With ``zero_copy=True``, :meth:`read_array` returns read-only views
    into the underlying buffer instead of heap copies; the views keep the
    buffer (and any backing mmap) alive through their ``.base`` chain.
    """

    def __init__(self, data, zero_copy: bool = False) -> None:
        self._data = data if isinstance(data, bytes) else memoryview(data)
        self._pos = 0
        self._zero_copy = zero_copy

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int):
        if self._pos + count > len(self._data):
            raise SerializationError("unexpected end of encoded data")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise SerializationError("uvarint too long")

    def read_int(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def read_bool(self) -> bool:
        return self._take(1)[0] == 1

    def read_float(self) -> float:
        return _FLOAT64.unpack(self._take(8))[0]

    def read_str(self) -> str | None:
        length = self.read_uvarint()
        if length == 0:
            return None
        return bytes(self._take(length - 1)).decode("utf-8")

    def read_bytes(self) -> bytes:
        return bytes(self._take(self.read_uvarint()))

    def read_array(self) -> np.ndarray:
        tag = self.read_uvarint()
        if tag not in _TAG_DTYPES:
            raise SerializationError(f"unknown array dtype tag {tag}")
        dtype = _TAG_DTYPES[tag]
        ndim = self.read_uvarint()
        shape = tuple(self.read_uvarint() for _ in range(ndim))
        count = int(np.prod(shape)) if shape else 1
        raw = self._take(count * dtype.itemsize)
        view = np.frombuffer(raw, dtype=dtype.newbyteorder("<")).reshape(shape)
        # Zero-copy arrays stay views into the source buffer (read-only;
        # columns never mutate storage), pinning an mmap's pages instead
        # of duplicating them on the heap.
        return view if self._zero_copy else view.copy()

    def read_str_list(self) -> list[str | None]:
        return [self.read_str() for _ in range(self.read_uvarint())]


_VAL_NONE = 0
_VAL_INT = 1
_VAL_FLOAT = 2
_VAL_STR = 3
_VAL_DATE = 4


def write_tagged_value(enc: Encoder, value: object | None) -> None:
    """Encode a cell value with a type tag (None/int/float/str/datetime).

    Used by summaries that carry raw row contents (next-items, find-text,
    heavy hitters), whose cell types vary by column.
    """
    import datetime as _dt

    if value is None:
        enc.write_uvarint(_VAL_NONE)
    elif isinstance(value, bool):
        enc.write_uvarint(_VAL_INT)
        enc.write_int(int(value))
    elif isinstance(value, (int, np.integer)):
        enc.write_uvarint(_VAL_INT)
        enc.write_int(int(value))
    elif isinstance(value, (float, np.floating)):
        enc.write_uvarint(_VAL_FLOAT)
        enc.write_float(float(value))
    elif isinstance(value, str):
        enc.write_uvarint(_VAL_STR)
        enc.write_str(value)
    elif isinstance(value, _dt.datetime):
        from repro.table.column import datetime_to_millis

        enc.write_uvarint(_VAL_DATE)
        enc.write_int(datetime_to_millis(value))
    else:
        raise SerializationError(f"cannot encode value of type {type(value).__name__}")


def read_tagged_value(dec: Decoder) -> object | None:
    """Inverse of :func:`write_tagged_value`."""
    tag = dec.read_uvarint()
    if tag == _VAL_NONE:
        return None
    if tag == _VAL_INT:
        return dec.read_int()
    if tag == _VAL_FLOAT:
        return dec.read_float()
    if tag == _VAL_STR:
        return dec.read_str()
    if tag == _VAL_DATE:
        from repro.table.column import millis_to_datetime

        return millis_to_datetime(dec.read_int())
    raise SerializationError(f"unknown value tag {tag}")


def encoded_size(write) -> int:
    """Size in bytes of the encoding produced by ``write(encoder)``."""
    enc = Encoder()
    write(enc)
    return enc.size
