"""Deterministic randomness for replayable vizketches.

Fault tolerance in Hillview requires vizketches to be deterministic: the redo
log records the seed used for randomization, so a restarted node reproduces
exactly the same summaries (paper §5.8).  All sampling in this library draws
from generators derived here, keyed by (seed, stream labels), so that:

* the same (seed, shard) always produces the same sample;
* different shards produce independent streams;
* replay after a failure is bit-identical.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def stable_hash64(*parts: object) -> int:
    """A 64-bit hash of the given parts, stable across processes and runs.

    Python's builtin ``hash`` is salted per process, which would break the
    redo-log replay guarantee; this uses blake2b instead.
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        h.update(repr(part).encode("utf-8"))
        h.update(b"\x00")
    return int.from_bytes(h.digest(), "little") & _MASK64


def rng_for(seed: int, *stream: object) -> np.random.Generator:
    """A numpy Generator for the stream identified by ``(seed, *stream)``."""
    return np.random.default_rng(stable_hash64(seed, *stream))


def hash_indices(indices: np.ndarray, seed: int) -> np.ndarray:
    """Vectorized 64-bit mixing of row indices, keyed by ``seed``.

    Used by bottom-k / hash-order sampling over sparse membership sets
    (paper §5.6): rows are sampled in increasing order of their hash values,
    which yields a uniform sample without materializing the full row set.

    This is the splitmix64 finalizer, a well-distributed invertible mixer.
    """
    x = indices.astype(np.uint64, copy=True)
    x += np.uint64(stable_hash64("row-hash", seed) | 1)
    x ^= x >> np.uint64(30)
    x *= np.uint64(0xBF58476D1CE4E5B9)
    x ^= x >> np.uint64(27)
    x *= np.uint64(0x94D049BB133111EB)
    x ^= x >> np.uint64(31)
    return x
