"""Core primitives shared by every subsystem.

This package contains the vocabulary of the paper's computational model
(Appendix A): display resolutions, bucket descriptions, sample-size bounds,
the :class:`~repro.core.sketch.Sketch` abstraction for mergeable summaries,
and a compact binary codec used to account network bytes.
"""

from repro.core.resolution import Resolution, DEFAULT_RESOLUTION
from repro.core.sketch import Sketch, Summary
from repro.core.buckets import (
    Buckets,
    DoubleBuckets,
    StringBuckets,
    ExplicitStringBuckets,
)
from repro.core.serialization import Encoder, Decoder
from repro.core import sampling

__all__ = [
    "Resolution",
    "DEFAULT_RESOLUTION",
    "Sketch",
    "Summary",
    "Buckets",
    "DoubleBuckets",
    "StringBuckets",
    "ExplicitStringBuckets",
    "Encoder",
    "Decoder",
    "sampling",
]
