"""Bucket (bin) descriptions for charts.

A vizketch that draws a chart needs a finite set of buckets covering the data
range (paper §4.3):

* numeric and date columns use equi-width buckets over ``[x0, x1)``;
* string columns with at most 50 distinct values get one bucket per value;
* other string columns use contiguous alphabetical ranges whose boundaries
  come from the bottom-k distinct-quantile sketch (Appendix B.1).

Bucket objects are immutable, serializable (charts carry them), and provide
vectorized bucket-index computation.  Out-of-range values map to index -1 and
are counted separately by the sketches.
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod

import numpy as np

from repro.core.serialization import Decoder, Encoder
from repro.errors import SerializationError


class Buckets(ABC):
    """A finite, ordered set of buckets over a column's value domain."""

    @property
    @abstractmethod
    def count(self) -> int:
        """Number of buckets."""

    @abstractmethod
    def label(self, index: int) -> str:
        """Human-readable label for bucket ``index`` (used by renderers)."""

    @abstractmethod
    def encode(self, enc: Encoder) -> None:
        """Append this description to ``enc`` (type tag included)."""

    @abstractmethod
    def spec(self) -> str:
        """Deterministic string identifying these buckets (for cache keys)."""

    def index_numeric(self, values: np.ndarray) -> np.ndarray:
        """Bucket index for each numeric value; -1 when out of range/NaN."""
        raise TypeError(f"{type(self).__name__} does not bucket numeric values")

    def index_strings(self, values: list[str | None]) -> np.ndarray:
        """Bucket index for each string; -1 when out of range or None."""
        raise TypeError(f"{type(self).__name__} does not bucket strings")


class DoubleBuckets(Buckets):
    """Equi-width numeric buckets over ``[min_value, max_value]``.

    The right edge is closed (a value equal to ``max_value`` falls in the
    last bucket) so that a range produced by the preparation phase covers
    every row it counted.
    """

    def __init__(self, min_value: float, max_value: float, count: int):
        if count < 1:
            raise ValueError("bucket count must be >= 1")
        if not np.isfinite(min_value) or not np.isfinite(max_value):
            raise ValueError("bucket range must be finite")
        if max_value < min_value:
            raise ValueError(
                f"max_value {max_value} must be >= min_value {min_value}"
            )
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self._count = int(count)
        span = self.max_value - self.min_value
        # A degenerate range (all values equal) still gets one usable bucket.
        self._width = span / self._count if span > 0 else 1.0

    @property
    def count(self) -> int:
        return self._count

    @property
    def width(self) -> float:
        """Width of one bucket in value units."""
        return self._width

    def bucket_range(self, index: int) -> tuple[float, float]:
        """Value range ``[lo, hi)`` covered by bucket ``index``."""
        if not 0 <= index < self._count:
            raise IndexError(f"bucket index {index} out of range")
        lo = self.min_value + index * self._width
        return lo, lo + self._width

    def label(self, index: int) -> str:
        lo, hi = self.bucket_range(index)
        return f"[{lo:g}, {hi:g})"

    def index_numeric(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        raw = np.floor((values - self.min_value) / self._width)
        with np.errstate(invalid="ignore"):
            inside = (values >= self.min_value) & (values <= self.max_value)
        idx = np.where(inside, raw, -1.0)
        # Values exactly at max_value land past the last bucket; pull back.
        idx = np.minimum(idx, self._count - 1)
        out = idx.astype(np.int64)
        out[~inside] = -1
        return out

    def index_of(self, value: float) -> int:
        """Scalar twin of :meth:`index_numeric` — same IEEE arithmetic,
        one value.  NaN and out-of-range values map to -1."""
        value = float(value)
        if not (self.min_value <= value <= self.max_value):
            return -1
        raw = int(np.floor((value - self.min_value) / self._width))
        return min(raw, self._count - 1)

    def spec(self) -> str:
        return f"DoubleBuckets({self.min_value!r},{self.max_value!r},{self._count})"

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(_TAG_DOUBLE)
        enc.write_float(self.min_value)
        enc.write_float(self.max_value)
        enc.write_uvarint(self._count)

    def __repr__(self) -> str:
        return self.spec()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DoubleBuckets) and self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())


class StringBuckets(Buckets):
    """Contiguous alphabetical string ranges (paper Appendix B.1).

    ``boundaries`` are the left endpoints of the buckets, sorted ascending;
    bucket ``i`` covers ``[boundaries[i], boundaries[i+1])`` and the last
    bucket is unbounded above, as in Hillview.  Strings below the first
    boundary are out of range (-1).
    """

    def __init__(self, boundaries: list[str]):
        if not boundaries:
            raise ValueError("at least one boundary is required")
        ordered = list(boundaries)
        if ordered != sorted(set(ordered)):
            raise ValueError("boundaries must be strictly increasing")
        self.boundaries = ordered

    @property
    def count(self) -> int:
        return len(self.boundaries)

    def label(self, index: int) -> str:
        if not 0 <= index < self.count:
            raise IndexError(f"bucket index {index} out of range")
        lo = self.boundaries[index]
        if index + 1 < self.count:
            return f"[{lo}, {self.boundaries[index + 1]})"
        return f"[{lo}, ...)"

    def index_of(self, value: str) -> int:
        """Bucket index of one string, or -1 when below the first boundary."""
        return bisect.bisect_right(self.boundaries, value) - 1

    def index_strings(self, values: list[str | None]) -> np.ndarray:
        # Object-dtype searchsorted keeps Python string ordering (numpy's
        # fixed-width unicode dtype would mis-order strings with embedded
        # NULs) while replacing the per-value bisect loop with one call.
        out = np.full(len(values), -1, dtype=np.int64)
        present = [i for i, value in enumerate(values) if value is not None]
        if not present:
            return out
        arr = np.array([values[i] for i in present], dtype=object)
        bounds = np.array(self.boundaries, dtype=object)
        out[present] = np.searchsorted(bounds, arr, side="right") - 1
        return out

    def index_strings_reference(self, values: list[str | None]) -> np.ndarray:
        """Per-value oracle for :meth:`index_strings` (differential tests)."""
        out = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            out[i] = -1 if value is None else self.index_of(value)
        return out

    def spec(self) -> str:
        return f"StringBuckets({self.boundaries!r})"

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(_TAG_STRING)
        enc.write_str_list(self.boundaries)

    def __repr__(self) -> str:
        return f"StringBuckets({len(self.boundaries)} ranges)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringBuckets) and self.boundaries == other.boundaries

    def __hash__(self) -> int:
        return hash(tuple(self.boundaries))


class ExplicitStringBuckets(Buckets):
    """One bucket per distinct string value (<= 50 distinct values, B.1)."""

    def __init__(self, values: list[str]):
        if not values:
            raise ValueError("at least one value is required")
        if len(values) != len(set(values)):
            raise ValueError("bucket values must be distinct")
        self.values = list(values)
        self._index = {value: i for i, value in enumerate(self.values)}

    @property
    def count(self) -> int:
        return len(self.values)

    def label(self, index: int) -> str:
        return self.values[index]

    def index_of(self, value: str) -> int:
        return self._index.get(value, -1)

    def index_strings(self, values: list[str | None]) -> np.ndarray:
        index = self._index
        return np.fromiter(
            (-1 if v is None else index.get(v, -1) for v in values),
            dtype=np.int64,
            count=len(values),
        )

    def index_strings_reference(self, values: list[str | None]) -> np.ndarray:
        """Per-value oracle for :meth:`index_strings` (differential tests)."""
        out = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            out[i] = -1 if value is None else self._index.get(value, -1)
        return out

    def spec(self) -> str:
        return f"ExplicitStringBuckets({self.values!r})"

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(_TAG_EXPLICIT)
        enc.write_str_list(self.values)

    def __repr__(self) -> str:
        return f"ExplicitStringBuckets({len(self.values)} values)"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ExplicitStringBuckets) and self.values == other.values

    def __hash__(self) -> int:
        return hash(tuple(self.values))


_TAG_DOUBLE = 0
_TAG_STRING = 1
_TAG_EXPLICIT = 2


def decode_buckets(dec: Decoder) -> Buckets:
    """Inverse of ``Buckets.encode``."""
    tag = dec.read_uvarint()
    if tag == _TAG_DOUBLE:
        lo = dec.read_float()
        hi = dec.read_float()
        count = dec.read_uvarint()
        return DoubleBuckets(lo, hi, count)
    if tag == _TAG_STRING:
        return StringBuckets([s for s in dec.read_str_list() if s is not None])
    if tag == _TAG_EXPLICIT:
        return ExplicitStringBuckets([s for s in dec.read_str_list() if s is not None])
    raise SerializationError(f"unknown buckets tag {tag}")
