"""Display resolutions and the pixel math that drives vizketch accuracy.

A vizketch is parameterized by the target display resolution and computes
"only what you can display" (paper §4.2).  This module centralizes the
constants the paper uses:

* a histogram is limited to ~100 bars (or 50 for string data);
* a heat map bin consumes ``b x b`` pixels with ``b`` = 2 or 3;
* a color scale has ~20 discernible shades;
* chart renderings must be within 1/2 pixel (one pixel after rounding) or
  one color shade of the exact values, with high probability.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Maximum number of histogram bars a human can usefully read (paper §1, §4.3).
MAX_HISTOGRAM_BUCKETS = 100

#: Maximum number of buckets for string-valued charts (paper Appendix B.1).
MAX_STRING_BUCKETS = 50

#: Number of discernibly distinct colors in a heat-map color scale (paper §4.3).
DISTINCT_COLORS = 20

#: Side, in pixels, of one heat-map bin (paper §4.3: "b is 2 or 3").
HEATMAP_BIN_PIXELS = 3

#: Maximum stacked-histogram color subdivisions (paper Appendix B.1: "~20").
MAX_STACK_COLORS = 20


@dataclass(frozen=True)
class Resolution:
    """A target display surface measured in pixels.

    Attributes:
        width: Horizontal pixels available to the chart (``H`` in the paper).
        height: Vertical pixels available to the chart (``V`` in the paper).
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError(
                f"resolution must be positive, got {self.width}x{self.height}"
            )

    def histogram_buckets(self, requested: int | None = None) -> int:
        """Number of histogram bars that fit this resolution.

        The paper limits histograms to ~100 bars and at least one; a bar needs
        a few horizontal pixels to be discernible.  An explicit ``requested``
        count is clamped to the displayable range.
        """
        fit = max(1, min(MAX_HISTOGRAM_BUCKETS, self.width // 4))
        if requested is None:
            return fit
        return max(1, min(requested, fit))

    def string_buckets(self, distinct: int) -> int:
        """Number of buckets for a string column with ``distinct`` values.

        Fewer than :data:`MAX_STRING_BUCKETS` distinct values get one bucket
        each; otherwise contiguous alphabetical ranges are used (paper B.1).
        """
        return min(distinct, MAX_STRING_BUCKETS, self.histogram_buckets())

    def heatmap_bins(self, bin_pixels: int = HEATMAP_BIN_PIXELS) -> tuple[int, int]:
        """``(Bx, By)`` heat-map bin counts: each bin is ``b x b`` pixels."""
        if bin_pixels <= 0:
            raise ValueError("bin_pixels must be positive")
        return max(1, self.width // bin_pixels), max(1, self.height // bin_pixels)

    def split_trellis(self, count: int) -> "tuple[Resolution, int, int]":
        """Split this surface into a grid for a trellis plot of ``count`` panes.

        Returns ``(pane_resolution, columns, rows)``.  The paper notes that a
        trellis of k heat maps needs a *smaller* sample than one large heat
        map because each pane has fewer bins (Appendix B.1).
        """
        if count <= 0:
            raise ValueError("trellis pane count must be positive")
        cols = max(1, int(round(count ** 0.5)))
        rows = (count + cols - 1) // cols
        pane = Resolution(max(1, self.width // cols), max(1, self.height // rows))
        return pane, cols, rows


#: The default chart surface used by the spreadsheet; comparable to the
#: chart area of the Hillview browser UI.
DEFAULT_RESOLUTION = Resolution(width=600, height=200)
