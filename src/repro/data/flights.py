"""Synthetic US airline on-time performance data (the paper's dataset).

The generator reproduces the structure the paper's evaluation depends on:

* the BTS schema: dates, carrier, origin/destination with city and state,
  scheduled/actual departure times, delays, cancellations, taxi times,
  distance, air time, and per-cause delay attributions;
* realistic conditional effects so the Figure 10 case-study questions have
  answers: per-carrier delay and cancellation profiles, hour-of-day and
  day-of-week effects, December volume spikes, city weather profiles,
  great-circle route distances, Hawaii route structure, and carriers that
  stop flying mid-period;
* missing values where BTS has them (no departure data for cancelled
  flights, no arrival data for diverted ones).

Everything is vectorized and seeded: ``generate_flights(n, seed)`` is
deterministic, and partitions generated independently with derived seeds
are reproducible shard-by-shard — which the engine's replay requires.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.rand import rng_for, stable_hash64
from repro.storage.loader import DataSource
from repro.table.column import (
    DateColumn,
    DoubleColumn,
    IntColumn,
    StringColumn,
)
from repro.table.dictionary import StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind
from repro.table.table import Table


@dataclass(frozen=True)
class Airline:
    """A carrier with its operational profile."""

    code: str
    name: str
    weight: float  # share of flights
    delay_offset: float  # minutes added to mean departure delay
    cancel_rate: float  # base cancellation probability
    taxi_offset: float  # minutes added to taxi-out
    first_year: int = 1999
    last_year: int = 2018  # carriers with last_year < 2018 stop mid-period
    flies_hawaii: bool = False


#: Carrier profiles.  HA has the least delay (Q2), NK the most late flights,
#: EV the most cancellations (Q9); EV and MQ stop flying mid-period (Q19).
AIRLINES: list[Airline] = [
    Airline("WN", "Southwest", 0.18, 2.0, 0.010, 1.0, flies_hawaii=True),
    Airline("AA", "American", 0.14, 4.0, 0.018, 3.0, flies_hawaii=True),
    Airline("DL", "Delta", 0.14, 1.0, 0.008, 2.0, flies_hawaii=True),
    Airline("UA", "United", 0.12, 6.0, 0.016, 4.5, flies_hawaii=True),
    Airline("OO", "SkyWest", 0.08, 3.5, 0.020, 1.5),
    Airline("AS", "Alaska", 0.06, 0.5, 0.007, 1.2, flies_hawaii=True),
    Airline("B6", "JetBlue", 0.06, 7.0, 0.015, 2.5),
    Airline("EV", "ExpressJet", 0.05, 5.0, 0.046, 2.0, last_year=2012),
    Airline("MQ", "Envoy", 0.05, 4.5, 0.024, 1.8, last_year=2014),
    Airline("NK", "Spirit", 0.04, 9.0, 0.022, 2.2),
    Airline("F9", "Frontier", 0.03, 8.0, 0.020, 1.6),
    Airline("YX", "Republic", 0.03, 3.0, 0.014, 1.4),
    Airline("HA", "Hawaiian", 0.01, -2.0, 0.004, 0.5, flies_hawaii=True),
    Airline("G4", "Allegiant", 0.01, 6.5, 0.018, 1.0),
]


@dataclass(frozen=True)
class Airport:
    code: str
    city: str
    state: str
    lat: float
    lon: float
    weight: float  # traffic share
    weather_factor: float  # multiplier on weather delays (1.0 = typical)
    taxi_offset: float  # minutes added to taxi-out at this airport


#: Airports.  ORD has the worst weather delays and HNL/PHX the best (Q13);
#: big hubs have long taxi times; Hawaii has four airports (Q14, Q15).
AIRPORTS: list[Airport] = [
    Airport("ATL", "Atlanta", "GA", 33.64, -84.43, 0.085, 1.1, 5.0),
    Airport("ORD", "Chicago", "IL", 41.98, -87.90, 0.075, 2.2, 6.0),
    Airport("DFW", "Dallas-Fort Worth", "TX", 32.90, -97.04, 0.065, 1.3, 4.5),
    Airport("DEN", "Denver", "CO", 39.86, -104.67, 0.060, 1.8, 3.5),
    Airport("LAX", "Los Angeles", "CA", 33.94, -118.41, 0.058, 0.6, 4.0),
    Airport("SFO", "San Francisco", "CA", 37.62, -122.38, 0.045, 1.7, 4.2),
    Airport("PHX", "Phoenix", "AZ", 33.43, -112.01, 0.042, 0.3, 3.0),
    Airport("IAH", "Houston", "TX", 29.98, -95.34, 0.040, 1.2, 4.0),
    Airport("LAS", "Las Vegas", "NV", 36.08, -115.15, 0.038, 0.3, 3.0),
    Airport("SEA", "Seattle", "WA", 47.45, -122.31, 0.036, 1.2, 3.2),
    Airport("JFK", "New York", "NY", 40.64, -73.78, 0.035, 1.5, 7.0),
    Airport("EWR", "Newark", "NJ", 40.69, -74.17, 0.034, 1.6, 7.5),
    Airport("LGA", "New York", "NY", 40.78, -73.87, 0.032, 1.5, 6.5),
    Airport("MSP", "Minneapolis", "MN", 44.88, -93.22, 0.030, 1.7, 3.0),
    Airport("DTW", "Detroit", "MI", 42.21, -83.35, 0.028, 1.5, 3.5),
    Airport("BOS", "Boston", "MA", 42.36, -71.01, 0.028, 1.6, 4.0),
    Airport("CLT", "Charlotte", "NC", 35.21, -80.94, 0.026, 0.9, 3.5),
    Airport("MIA", "Miami", "FL", 25.79, -80.29, 0.024, 1.0, 4.5),
    Airport("SLC", "Salt Lake City", "UT", 40.79, -111.98, 0.022, 1.0, 2.5),
    Airport("MCO", "Orlando", "FL", 28.43, -81.31, 0.022, 1.0, 3.0),
    Airport("SAN", "San Diego", "CA", 32.73, -117.19, 0.018, 0.4, 2.5),
    Airport("PDX", "Portland", "OR", 45.59, -122.60, 0.016, 1.1, 2.5),
    Airport("STL", "St. Louis", "MO", 38.75, -90.37, 0.014, 1.2, 2.8),
    Airport("BWI", "Baltimore", "MD", 39.18, -76.67, 0.014, 1.1, 3.0),
    Airport("OAK", "Oakland", "CA", 37.72, -122.22, 0.012, 0.8, 2.2),
    Airport("SJC", "San Jose", "CA", 37.36, -121.93, 0.012, 0.7, 2.2),
    Airport("AUS", "Austin", "TX", 30.19, -97.67, 0.012, 0.8, 2.5),
    Airport("MDW", "Chicago", "IL", 41.79, -87.75, 0.012, 2.0, 4.0),
    Airport("RDU", "Raleigh-Durham", "NC", 35.88, -78.79, 0.010, 0.9, 2.2),
    Airport("SMF", "Sacramento", "CA", 38.70, -121.59, 0.010, 0.7, 2.0),
    Airport("HNL", "Honolulu", "HI", 21.32, -157.92, 0.012, 0.2, 2.0),
    Airport("OGG", "Kahului", "HI", 20.90, -156.43, 0.005, 0.25, 1.5),
    Airport("KOA", "Kona", "HI", 19.74, -156.05, 0.003, 0.3, 1.5),
    Airport("LIH", "Lihue", "HI", 21.98, -159.34, 0.002, 0.35, 1.5),
]

HAWAII_CODES = ("HNL", "OGG", "KOA", "LIH")
WEST_COAST_CODES = ("LAX", "SFO", "SEA", "SAN", "PDX", "OAK", "SJC", "PHX", "LAS")

#: The full column list (BTS naming), in schema order.
FLIGHT_COLUMNS = [
    "Year",
    "Month",
    "DayofMonth",
    "DayOfWeek",
    "FlightDate",
    "Airline",
    "FlightNum",
    "Origin",
    "OriginCityName",
    "OriginState",
    "Dest",
    "DestCityName",
    "DestState",
    "CRSDepTime",
    "DepTime",
    "DepDelay",
    "ArrDelay",
    "Cancelled",
    "Diverted",
    "Distance",
    "AirTime",
    "TaxiOut",
    "TaxiIn",
    "CarrierDelay",
    "WeatherDelay",
    "NASDelay",
    "SecurityDelay",
    "LateAircraftDelay",
]

_EPOCH_1999 = 915148800000  # 1999-01-01T00:00:00Z in epoch milliseconds
_MS_PER_DAY = 86_400_000


def _haversine_miles(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    rad = np.pi / 180.0
    dlat = (lat2 - lat1) * rad
    dlon = (lon2 - lon1) * rad
    a = (
        np.sin(dlat / 2) ** 2
        + np.cos(lat1 * rad) * np.cos(lat2 * rad) * np.sin(dlon / 2) ** 2
    )
    return 3958.8 * 2 * np.arcsin(np.sqrt(a))


def _normalized(weights: list[float]) -> np.ndarray:
    arr = np.array(weights, dtype=np.float64)
    return arr / arr.sum()


def _category_column(name: str, values: list[str], indexes: np.ndarray) -> StringColumn:
    """Build a CATEGORY column from per-row indexes into ``values``.

    ``values`` may contain duplicates (two airports share a city name); the
    dictionary deduplicates, so indexes are remapped through it.
    """
    dictionary = StringDictionary(values)
    remap = np.array([dictionary.code_for(v) for v in values], dtype=np.int32)
    return StringColumn(
        ColumnDescription(name, ContentsKind.CATEGORY),
        remap[indexes],
        dictionary,
    )


def generate_flights(
    rows: int,
    seed: int = 0,
    start_year: int = 1999,
    years: int = 20,
    extra_columns: int = 0,
    shard_id: str = "flights",
) -> Table:
    """Generate ``rows`` synthetic flights as one table.

    ``extra_columns`` appends that many synthetic numeric metric columns
    (``Metric00``...), used to reach the paper's 110-column width when an
    experiment accounts cells rather than analyzing content.
    """
    if rows < 1:
        raise ValueError("rows must be >= 1")
    rng = rng_for(seed, "flights", shard_id)
    n = rows

    # ------------------------------------------------------------------
    # Dates: uniform over the period with a December volume spike (Q18),
    # suppressed on Dec 25 (fewest flights).
    # ------------------------------------------------------------------
    start_day = np.datetime64(f"{start_year}-01-01", "D").astype(np.int64)
    end_day = np.datetime64(f"{start_year + years}-01-01", "D").astype(np.int64)
    days = start_day + rng.integers(0, end_day - start_day, size=n)
    dates64 = days.astype("datetime64[D]")
    years_arr = dates64.astype("datetime64[Y]").astype(np.int64) + 1970
    months_arr = dates64.astype("datetime64[M]").astype(np.int64) % 12 + 1
    month_start = dates64.astype("datetime64[M]").astype("datetime64[D]")
    dom_arr = (dates64 - month_start).astype(np.int64) + 1

    # December spike: re-draw a fraction of rows into Dec 20-23 (Q18: most
    # flights); Dec 25 flights are thinned (fewest flights).
    spike = rng.random(n) < 0.02
    months_arr = np.where(spike, 12, months_arr)
    dom_arr = np.where(spike, rng.integers(20, 24, size=n), dom_arr)
    on_christmas = (months_arr == 12) & (dom_arr == 25)
    thin = on_christmas & (rng.random(n) < 0.6)
    dom_arr = np.where(thin, 26, dom_arr)

    # Rebuild FlightDate from (year, month, day) so fields stay consistent.
    months_since_epoch = (years_arr - 1970) * 12 + (months_arr - 1)
    flight_dates = months_since_epoch.astype("datetime64[M]").astype(
        "datetime64[D]"
    ) + (dom_arr - 1).astype("timedelta64[D]")
    flight_date_ms = flight_dates.astype("datetime64[ms]").astype(np.int64)
    # 1970-01-01 was a Thursday; BTS DayOfWeek: 1=Monday ... 7=Sunday.
    dow_arr = (
        (flight_date_ms // _MS_PER_DAY + 3) % 7 + 1
    ).astype(np.int64)

    # ------------------------------------------------------------------
    # Carrier: weighted choice, remapped when inactive that year (Q19).
    # ------------------------------------------------------------------
    airline_weights = _normalized([a.weight for a in AIRLINES])
    airline_idx = rng.choice(len(AIRLINES), size=n, p=airline_weights)
    first_years = np.array([a.first_year for a in AIRLINES])
    last_years = np.array([a.last_year for a in AIRLINES])
    inactive = (years_arr < first_years[airline_idx]) | (
        years_arr > last_years[airline_idx]
    )
    airline_idx = np.where(inactive, 0, airline_idx)  # WN always active

    # ------------------------------------------------------------------
    # Route: weighted origin and destination; fix dest == origin; Hawaii
    # destinations restricted to carriers that fly there (Q14).
    # ------------------------------------------------------------------
    airport_weights = _normalized([a.weight for a in AIRPORTS])
    origin_idx = rng.choice(len(AIRPORTS), size=n, p=airport_weights)
    dest_idx = rng.choice(len(AIRPORTS), size=n, p=airport_weights)
    same = dest_idx == origin_idx
    dest_idx = np.where(same, (dest_idx + 1) % len(AIRPORTS), dest_idx)

    hawaii_set = {i for i, a in enumerate(AIRPORTS) if a.code in HAWAII_CODES}
    hawaii_mask = np.isin(dest_idx, list(hawaii_set)) | np.isin(
        origin_idx, list(hawaii_set)
    )
    flies_hi = np.array([a.flies_hawaii for a in AIRLINES])
    bad_hawaii = hawaii_mask & ~flies_hi[airline_idx]
    ha_index = next(i for i, a in enumerate(AIRLINES) if a.code == "HA")
    airline_idx = np.where(bad_hawaii, ha_index, airline_idx)
    # HA keeps most flights within/to Hawaii: route HA's mainland-to-mainland
    # flights through Honolulu instead.
    ha_rows = airline_idx == ha_index
    hnl_index = next(i for i, a in enumerate(AIRPORTS) if a.code == "HNL")
    west = [i for i, a in enumerate(AIRPORTS) if a.code in WEST_COAST_CODES]
    ha_fix = ha_rows & ~hawaii_mask
    origin_idx = np.where(ha_fix, np.array(west)[rng.integers(0, len(west), n)], origin_idx)
    dest_idx = np.where(ha_fix, hnl_index, dest_idx)

    lat = np.array([a.lat for a in AIRPORTS])
    lon = np.array([a.lon for a in AIRPORTS])
    distance = _haversine_miles(
        lat[origin_idx], lon[origin_idx], lat[dest_idx], lon[dest_idx]
    ).round(0)

    # ------------------------------------------------------------------
    # Schedule: departure hour 5-22, weighted toward morning/evening banks.
    # ------------------------------------------------------------------
    hour_weights = _normalized(
        [1.5, 2.5, 3.0, 2.8, 2.5, 2.3, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7, 2.5, 2.2, 1.8, 1.2, 0.8, 0.4]
    )
    dep_hour = rng.choice(np.arange(5, 23), size=n, p=hour_weights)
    dep_minute = rng.integers(0, 60, size=n)
    crs_dep_time = dep_hour * 100 + dep_minute

    # ------------------------------------------------------------------
    # Delays: carrier + hour-of-day + day-of-week + weather + noise.
    # Hour effect grows during the day (Q7: ~6am is best); Tuesday is the
    # calmest weekday (Q17); weather follows the origin's profile and is
    # worst in winter/summer-storm months (Q13).
    # ------------------------------------------------------------------
    delay_offset = np.array([a.delay_offset for a in AIRLINES])
    hour_effect = (dep_hour - 5).astype(np.float64) * 0.9  # minutes
    dow_effect = np.array([0.0, 2.0, -1.5, 0.0, 1.0, 3.0, 0.5, -0.5])[dow_arr]
    weather_factor = np.array([a.weather_factor for a in AIRPORTS])
    month_weather = np.array(
        [0.0, 1.8, 1.4, 0.8, 0.5, 0.6, 1.2, 1.5, 1.0, 0.4, 0.3, 0.7, 1.9]
    )  # index by month (1-12); December and January worst
    weather_delay_mean = 2.5 * weather_factor[origin_idx] * month_weather[months_arr]
    weather_component = rng.exponential(1.0, size=n) * weather_delay_mean
    base_noise = rng.normal(-3.0, 6.0, size=n)
    tail = rng.exponential(18.0, size=n) * (rng.random(n) < 0.22)
    dep_delay = (
        delay_offset[airline_idx] + hour_effect + dow_effect + base_noise + tail
        + weather_component
    ).round(1)

    # Cancellations: carrier base rate amplified by weather (Q9).
    cancel_rate = np.array([a.cancel_rate for a in AIRLINES])
    cancel_prob = cancel_rate[airline_idx] * (
        1.0 + 0.3 * weather_factor[origin_idx] * month_weather[months_arr]
    )
    cancelled = rng.random(n) < cancel_prob
    diverted = (~cancelled) & (rng.random(n) < 0.0022)

    # Arrival delay: departure delay +/- enroute recovery, NaN if no arrival.
    arr_delay = (dep_delay + rng.normal(-2.0, 9.0, size=n)).round(1)

    air_speed = rng.normal(7.6, 0.5, size=n).clip(6.0, 9.0)  # miles/minute
    air_time = (distance / air_speed + rng.normal(18, 4, size=n)).round(0).clip(20, None)

    taxi_airport = np.array([a.taxi_offset for a in AIRPORTS])
    taxi_airline = np.array([a.taxi_offset for a in AIRLINES])
    taxi_out = (
        8.0
        + taxi_airport[origin_idx]
        + taxi_airline[airline_idx]
        + rng.exponential(3.0, size=n)
    ).round(1)
    taxi_in = (4.0 + 0.4 * taxi_airport[dest_idx] + rng.exponential(2.0, size=n)).round(1)

    # Delay attribution (only for delayed, completed flights).
    positive = np.clip(dep_delay, 0, None)
    weather_part = np.minimum(weather_component, positive).round(1)
    late_aircraft = (np.clip(positive - weather_part, 0, None) * rng.beta(2, 5, n)).round(1)
    carrier_part = np.clip(positive - weather_part - late_aircraft, 0, None) * 0.6
    nas_part = np.clip(positive - weather_part - late_aircraft - carrier_part, 0, None)
    security_part = (rng.random(n) < 0.001) * rng.exponential(15.0, size=n)

    dep_time = (crs_dep_time + np.trunc(dep_delay / 60) * 100 + dep_delay % 60).astype(
        np.int64
    ) % 2400

    flight_num = (
        stable_hash64("flightnum", seed) % 97
        + airline_idx * 391
        + rng.integers(1, 1900, size=n)
    ).astype(np.int64) % 6000 + 1

    no_departure = cancelled
    no_arrival = cancelled | diverted

    airline_codes = [a.code for a in AIRLINES]
    airport_codes = [a.code for a in AIRPORTS]
    airport_cities = [a.city for a in AIRPORTS]
    airport_states = [a.state for a in AIRPORTS]

    def date_col(name: str, values: np.ndarray) -> DateColumn:
        return DateColumn(ColumnDescription(name, ContentsKind.DATE), values)

    def int_col(name: str, values: np.ndarray, missing: np.ndarray | None = None) -> IntColumn:
        return IntColumn(
            ColumnDescription(name, ContentsKind.INTEGER),
            values.astype(np.int64),
            missing,
        )

    def dbl_col(name: str, values: np.ndarray, missing: np.ndarray | None = None) -> DoubleColumn:
        data = values.astype(np.float64).copy()
        if missing is not None:
            data[missing] = np.nan
        return DoubleColumn(ColumnDescription(name, ContentsKind.DOUBLE), data)

    columns = [
        int_col("Year", years_arr),
        int_col("Month", months_arr),
        int_col("DayofMonth", dom_arr),
        int_col("DayOfWeek", dow_arr),
        date_col("FlightDate", flight_date_ms),
        _category_column("Airline", airline_codes, airline_idx),
        int_col("FlightNum", flight_num),
        _category_column("Origin", airport_codes, origin_idx),
        _category_column("OriginCityName", airport_cities, origin_idx),
        _category_column("OriginState", airport_states, origin_idx),
        _category_column("Dest", airport_codes, dest_idx),
        _category_column("DestCityName", airport_cities, dest_idx),
        _category_column("DestState", airport_states, dest_idx),
        int_col("CRSDepTime", crs_dep_time),
        int_col("DepTime", dep_time, missing=no_departure),
        dbl_col("DepDelay", dep_delay, missing=no_departure),
        dbl_col("ArrDelay", arr_delay, missing=no_arrival),
        int_col("Cancelled", cancelled.astype(np.int64)),
        int_col("Diverted", diverted.astype(np.int64)),
        dbl_col("Distance", distance),
        dbl_col("AirTime", air_time, missing=no_arrival),
        dbl_col("TaxiOut", taxi_out, missing=no_departure),
        dbl_col("TaxiIn", taxi_in, missing=no_arrival),
        dbl_col("CarrierDelay", carrier_part.round(1), missing=no_arrival),
        dbl_col("WeatherDelay", weather_part, missing=no_arrival),
        dbl_col("NASDelay", nas_part.round(1), missing=no_arrival),
        dbl_col("SecurityDelay", security_part.round(1), missing=no_arrival),
        dbl_col("LateAircraftDelay", late_aircraft, missing=no_arrival),
    ]
    for i in range(extra_columns):
        metric_rng = rng_for(seed, "metric", shard_id, i)
        columns.append(
            dbl_col(f"Metric{i:02d}", metric_rng.normal(100.0, 15.0, size=n))
        )
    return Table(columns, shard_id=shard_id)


def flights_partitions(
    total_rows: int,
    partitions: int,
    seed: int = 0,
    extra_columns: int = 0,
) -> list[Table]:
    """Generate the dataset as independently seeded partitions.

    Each partition is reproducible on its own, which models arbitrary
    horizontal sharding (§2) and lets the engine replay a single worker's
    shards after a failure without touching the others.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    base = total_rows // partitions
    remainder = total_rows % partitions
    tables = []
    for i in range(partitions):
        rows = base + (1 if i < remainder else 0)
        if rows == 0:
            continue
        tables.append(
            generate_flights(
                rows,
                seed=seed,
                extra_columns=extra_columns,
                shard_id=f"flights-{i:04d}",
            )
        )
    return tables


class FlightsSource(DataSource):
    """A reloadable flights data source for the cluster engine."""

    def __init__(
        self,
        total_rows: int,
        partitions: int = 8,
        seed: int = 0,
        extra_columns: int = 0,
    ):
        self.total_rows = total_rows
        self.partitions = partitions
        self.seed = seed
        self.extra_columns = extra_columns

    def load(self) -> list[Table]:
        return flights_partitions(
            self.total_rows, self.partitions, self.seed, self.extra_columns
        )

    def _load_slice(self, index: int, count: int) -> list[Table]:
        """Generate only this worker's partitions (each is independently
        reproducible, so a worker process loads 1/N of the data)."""
        base = self.total_rows // self.partitions
        remainder = self.total_rows % self.partitions
        sized = [
            (i, base + (1 if i < remainder else 0))
            for i in range(self.partitions)
        ]
        populated = [(i, rows) for i, rows in sized if rows > 0]
        return [
            generate_flights(
                rows,
                seed=self.seed,
                extra_columns=self.extra_columns,
                shard_id=f"flights-{i:04d}",
            )
            for i, rows in populated[index::count]
        ]

    def spec(self) -> str:
        return (
            f"FlightsSource(rows={self.total_rows},parts={self.partitions},"
            f"seed={self.seed},extra={self.extra_columns})"
        )
