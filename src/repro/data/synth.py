"""Controlled synthetic distributions for accuracy and microbenchmarks.

The §7.2 microbenchmarks and the Appendix C accuracy experiments need
columns with known distributions: uniform, normal, bimodal numeric data and
Zipf-distributed strings (the adversarial case for heavy hitters).
"""

from __future__ import annotations

import numpy as np

from repro.core.rand import rng_for
from repro.table.column import DoubleColumn, IntColumn, StringColumn
from repro.table.dictionary import StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind
from repro.table.table import Table


def numeric_table(
    rows: int,
    distribution: str = "uniform",
    seed: int = 0,
    missing_fraction: float = 0.0,
    shard_id: str = "synth",
) -> Table:
    """A one-column numeric table: ``value``.

    Distributions: ``uniform`` on [0, 100), ``normal`` (mean 50, sd 15),
    ``bimodal`` (mixture at 25 and 75), ``exponential`` (scale 20).
    """
    rng = rng_for(seed, "numeric", distribution, shard_id)
    if distribution == "uniform":
        values = rng.uniform(0, 100, size=rows)
    elif distribution == "normal":
        values = rng.normal(50, 15, size=rows)
    elif distribution == "bimodal":
        pick = rng.random(rows) < 0.5
        values = np.where(
            pick, rng.normal(25, 6, size=rows), rng.normal(75, 6, size=rows)
        )
    elif distribution == "exponential":
        values = rng.exponential(20, size=rows)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")
    if missing_fraction > 0:
        values = values.copy()
        values[rng.random(rows) < missing_fraction] = np.nan
    return Table(
        [DoubleColumn(ColumnDescription("value", ContentsKind.DOUBLE), values)],
        shard_id=shard_id,
    )


def zipf_strings(
    rows: int,
    distinct: int = 1000,
    exponent: float = 1.3,
    seed: int = 0,
) -> np.ndarray:
    """Codes 0..distinct-1 drawn from a Zipf-like distribution."""
    rng = rng_for(seed, "zipf", distinct, exponent)
    ranks = np.arange(1, distinct + 1, dtype=np.float64)
    probs = ranks ** (-exponent)
    probs /= probs.sum()
    return rng.choice(distinct, size=rows, p=probs)


def categorical_table(
    rows: int,
    distinct: int = 1000,
    exponent: float = 1.3,
    seed: int = 0,
    shard_id: str = "synth",
) -> Table:
    """A one-column string table ``word`` with Zipf-distributed values."""
    codes = zipf_strings(rows, distinct, exponent, seed).astype(np.int32)
    dictionary = StringDictionary(f"word{i:06d}" for i in range(distinct))
    return Table(
        [
            StringColumn(
                ColumnDescription("word", ContentsKind.STRING), codes, dictionary
            )
        ],
        shard_id=shard_id,
    )


def mixed_table(rows: int, seed: int = 0, shard_id: str = "synth") -> Table:
    """A small mixed-kind table: int, double, string, with missing values."""
    rng = rng_for(seed, "mixed", shard_id)
    ints = rng.integers(0, 1000, size=rows)
    doubles = rng.normal(0, 1, size=rows)
    doubles[rng.random(rows) < 0.05] = np.nan
    codes = rng.integers(0, 26, size=rows).astype(np.int32)
    codes[rng.random(rows) < 0.05] = -1
    dictionary = StringDictionary(chr(ord("a") + i) * 3 for i in range(26))
    return Table(
        [
            IntColumn(ColumnDescription("id", ContentsKind.INTEGER), ints),
            DoubleColumn(ColumnDescription("score", ContentsKind.DOUBLE), doubles),
            StringColumn(
                ColumnDescription("tag", ContentsKind.CATEGORY), codes, dictionary
            ),
        ],
        shard_id=shard_id,
    )
