"""Synthetic server logs (§3.1 motivation).

"50 servers logging 100 columns at a rate of 100 rows per minute generate in
a month 21.6B cells" — this generator produces that kind of data: RFC
5424-style syslog lines (for the storage reader) or a ready-made table, with
per-host error-rate profiles so log exploration examples have structure.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from repro.core.rand import rng_for
from repro.storage.logs_io import SEVERITIES, format_syslog_row
from repro.table.column import DateColumn, IntColumn, StringColumn
from repro.table.dictionary import StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind
from repro.table.table import Table

_HOSTS = [
    ("gandalf", 0.020),
    ("frodo", 0.004),
    ("samwise", 0.006),
    ("aragorn", 0.012),
    ("legolas", 0.003),
    ("gimli", 0.008),
    ("boromir", 0.060),  # the flaky one
    ("meriadoc", 0.005),
]

_APPS = ["authd", "scheduler", "api-gateway", "indexer", "billing"]

_MESSAGES = {
    "info": [
        "request completed in {ms}ms",
        "heartbeat ok",
        "cache refresh finished ({ms} entries)",
        "user session started",
    ],
    "warning": [
        "slow request: {ms}ms",
        "retrying upstream call (attempt {ms})",
        "queue depth above threshold",
    ],
    "err": [
        "request failed: upstream timeout after {ms}ms",
        "database connection lost",
        "out of file descriptors",
    ],
    "crit": ["service wedged; restarting worker {ms}"],
}

_SEVERITY_BASE = {"info": 0.87, "warning": 0.09, "err": 0.035, "crit": 0.005}


def _draw(rng: np.random.Generator, n: int):
    host_weights = np.array([w for _, w in _HOSTS])
    host_idx = rng.integers(0, len(_HOSTS), size=n)
    severities = []
    sev_names = list(_SEVERITY_BASE)
    base = np.array([_SEVERITY_BASE[s] for s in sev_names])
    for i in range(n):
        probs = base.copy()
        error_rate = host_weights[host_idx[i]]
        probs[2] += error_rate  # err
        probs[3] += error_rate / 5  # crit
        probs[0] = max(0.0, 1.0 - probs[1:].sum())
        severities.append(sev_names[rng.choice(len(sev_names), p=probs / probs.sum())])
    app_idx = rng.integers(0, len(_APPS), size=n)
    latencies = rng.lognormal(4.0, 1.0, size=n).astype(np.int64) + 1
    start = datetime(2019, 3, 1, tzinfo=timezone.utc).timestamp()
    offsets = np.sort(rng.integers(0, 30 * 86400, size=n))
    return host_idx, severities, app_idx, latencies, offsets, start


def generate_syslog_lines(rows: int, seed: int = 0) -> list[str]:
    """RFC 5424-style log lines with realistic severity structure."""
    rng = rng_for(seed, "syslog")
    host_idx, severities, app_idx, latencies, offsets, start = _draw(rng, rows)
    lines = []
    for i in range(rows):
        severity = severities[i]
        template = _MESSAGES[severity][int(rng.integers(len(_MESSAGES[severity])))]
        message = template.format(ms=int(latencies[i]))
        timestamp = datetime.fromtimestamp(start + int(offsets[i]), tz=timezone.utc)
        lines.append(
            format_syslog_row(
                timestamp,
                host=_HOSTS[host_idx[i]][0],
                app=_APPS[app_idx[i]],
                severity=severity,
                message=message,
            )
        )
    return lines


def generate_log_table(rows: int, seed: int = 0, shard_id: str = "logs") -> Table:
    """The same data as a ready-made table (faster than parsing lines)."""
    rng = rng_for(seed, "syslog")
    host_idx, severities, app_idx, latencies, offsets, start = _draw(rng, rows)
    timestamps = ((start + offsets) * 1000).astype(np.int64)
    sev_dict = StringDictionary(SEVERITIES)
    sev_codes = np.array([sev_dict.code_for(s) for s in severities], dtype=np.int32)
    host_dict = StringDictionary(h for h, _ in _HOSTS)
    app_dict = StringDictionary(_APPS)
    return Table(
        [
            DateColumn(
                ColumnDescription("Timestamp", ContentsKind.DATE), timestamps
            ),
            StringColumn(
                ColumnDescription("Severity", ContentsKind.CATEGORY),
                sev_codes,
                sev_dict,
            ),
            StringColumn(
                ColumnDescription("Host", ContentsKind.CATEGORY),
                host_idx.astype(np.int32),
                host_dict,
            ),
            StringColumn(
                ColumnDescription("App", ContentsKind.CATEGORY),
                app_idx.astype(np.int32),
                app_dict,
            ),
            IntColumn(
                ColumnDescription("LatencyMs", ContentsKind.INTEGER), latencies
            ),
        ],
        shard_id=shard_id,
    )
