"""Synthetic datasets standing in for the paper's evaluation data.

The paper evaluates on the US DoT airline on-time performance dataset
(130M rows, 110 columns), which is not available offline.  The
:mod:`repro.data.flights` generator reproduces its schema, cardinalities
and conditional structure (carrier/hour/seasonal delay effects, route
geometry, cancellations, weather), so the 20 case-study questions of
Figure 10 have meaningful answers.  :mod:`repro.data.logs` generates the
server logs of the §3.1 motivation; :mod:`repro.data.synth` provides
controlled distributions for accuracy experiments.
"""

from repro.data.flights import (
    FLIGHT_COLUMNS,
    AIRLINES,
    AIRPORTS,
    generate_flights,
    flights_partitions,
    FlightsSource,
)
from repro.data.logs import generate_syslog_lines, generate_log_table
from repro.data.synth import (
    numeric_table,
    categorical_table,
    mixed_table,
    zipf_strings,
)

__all__ = [
    "FLIGHT_COLUMNS",
    "AIRLINES",
    "AIRPORTS",
    "generate_flights",
    "flights_partitions",
    "FlightsSource",
    "generate_syslog_lines",
    "generate_log_table",
    "numeric_table",
    "categorical_table",
    "mixed_table",
    "zipf_strings",
]
