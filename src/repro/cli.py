"""An interactive terminal spreadsheet: the browser UI's stand-in.

Hillview's front end is a web page; this module provides the same
explore-loop in a terminal so a downstream user can actually *browse* —
sort, page, scroll, chart, filter, derive, search — against any supported
data source::

    python -m repro.cli flights.csv
    python -m repro.cli data.db --sql-table events
    python -m repro.cli --demo-flights 200000

The same binary also runs the concurrent multi-client service layer and
the worker daemons of a process-level fleet::

    python -m repro.cli serve --demo-flights 500000 --port 8947
    python -m repro.cli serve --demo-flights 500000 --spawn --workers 8
    python -m repro.cli gateway --demo-flights 500000 --port 8780
    python -m repro.cli worker --listen 0.0.0.0:9301 --cores 8
    python -m repro.cli serve --join host-a:9301,host-b:9301 \
        --session-store sessions.db --port 8948
    python -m repro.cli client --port 8947 --commands "load; rows; hist Distance 0 3000"
    python -m repro.cli fleet status --join @fleet.txt
    python -m repro.cli fleet top --join @fleet.txt
    python -m repro.cli fleet grow --join @fleet.txt --add host-c:9301
    python -m repro.cli fleet shrink --join @fleet.txt --remove host-b:9301
    python -m repro.cli fleet drain --root 127.0.0.1:8948

Commands (also shown by ``help``)::

    cols                         show the schema
    view <col> [col...]          sort by columns and show the top rows
    next / prev                  page forward / backward (§3.3)
    scroll <fraction>            jump the scroll bar, e.g. scroll 0.5
    find <col> <text>            jump to the next match
    hist <col>                   histogram + CDF
    stack <x> <y>                stacked histogram
    heat <x> <y>                 heat map
    trellis <group> <x>          array of histograms grouped by a column
    top <col> [k]                heavy hitters
    distinct <col>               approximate distinct count
    summary <col>                min/max/mean/missing
    filter <col> <op> <value>    keep matching rows (e.g. filter delay > 60)
    derive <name> <expression>   new column, e.g. derive gain "dep - arr"
    reset                        drop all filters/derivations
    rows                         total row count
    log                          what ran, with bytes and latencies
    quit

The command loop is a thin translation layer onto
:class:`~repro.spreadsheet.Spreadsheet` — every keystroke still becomes a
vizketch execution tree, exactly like clicks in the real UI (§7.3).
"""

from __future__ import annotations

import argparse
import shlex
import sys
from typing import Callable, Iterable, TextIO

from repro.engine.cluster import Cluster
from repro.errors import HillviewError
from repro.spreadsheet import Spreadsheet
from repro.storage.loader import (
    ColumnarDatasetSource,
    CsvSource,
    DataSource,
    JsonlSource,
    SqlSource,
    SyslogSource,
    TableSource,
)
from repro.table.compute import ColumnPredicate
from repro.table.sort import RecordOrder


def source_for_path(
    path: str, sql_table: str | None = None, partitions: int = 8
) -> DataSource:
    """Pick a data source from a file path's extension (§2, no ingestion)."""
    lower = path.lower()
    if sql_table is not None or lower.endswith((".db", ".sqlite", ".sqlite3")):
        if sql_table is None:
            raise HillviewError(
                "SQL databases need --sql-table to select the table"
            )
        return SqlSource(path, sql_table, partitions=partitions)
    if lower.endswith(".csv"):
        return CsvSource(path)
    if lower.endswith((".jsonl", ".ndjson", ".json")):
        return JsonlSource(path)
    if lower.endswith((".log", ".syslog")):
        return SyslogSource(path)
    return ColumnarDatasetSource(path)


class Session:
    """One interactive exploration session over a spreadsheet."""

    def __init__(self, sheet: Spreadsheet, out: TextIO | None = None):
        self.root_sheet = sheet
        self.sheet = sheet
        self.out = out if out is not None else sys.stdout
        self.view = None
        self._commands: dict[str, Callable[[list[str]], None]] = {
            "cols": self.cmd_cols,
            "view": self.cmd_view,
            "next": self.cmd_next,
            "prev": self.cmd_prev,
            "scroll": self.cmd_scroll,
            "find": self.cmd_find,
            "hist": self.cmd_hist,
            "stack": self.cmd_stack,
            "heat": self.cmd_heat,
            "trellis": self.cmd_trellis,
            "top": self.cmd_top,
            "distinct": self.cmd_distinct,
            "summary": self.cmd_summary,
            "filter": self.cmd_filter,
            "derive": self.cmd_derive,
            "reset": self.cmd_reset,
            "rows": self.cmd_rows,
            "log": self.cmd_log,
            "help": self.cmd_help,
        }

    # -- plumbing ------------------------------------------------------
    def print(self, text: str = "") -> None:
        print(text, file=self.out)

    def execute(self, line: str) -> bool:
        """Run one command line; returns False when the session should end."""
        try:
            words = shlex.split(line.strip())
        except ValueError as exc:
            self.print(f"parse error: {exc}")
            return True
        if not words:
            return True
        name, args = words[0].lower(), words[1:]
        if name in ("quit", "exit", "q"):
            return False
        handler = self._commands.get(name)
        if handler is None:
            self.print(f"unknown command {name!r}; try 'help'")
            return True
        try:
            handler(args)
        except HillviewError as exc:
            self.print(f"error: {exc}")
        except (ValueError, KeyError, IndexError) as exc:
            self.print(f"error: {exc}")
        return True

    def run(self, lines: Iterable[str], prompt: bool = False) -> None:
        if prompt:
            self.print("hillview> type 'help' for commands, 'quit' to leave")
        for line in lines:
            if prompt:
                self.print(f"hillview> {line.strip()}")
            if not self.execute(line):
                break

    def _require_column(self, name: str) -> str:
        if name not in self.sheet.schema.names:
            raise HillviewError(
                f"no column {name!r}; 'cols' lists the schema"
            )
        return name

    # -- commands ------------------------------------------------------
    def cmd_help(self, args: list[str]) -> None:
        self.print(__doc__.split("Commands", 1)[1].split("::", 1)[1])

    def cmd_cols(self, args: list[str]) -> None:
        for desc in self.sheet.schema:
            self.print(f"  {desc.name}: {desc.kind.value}")

    def cmd_rows(self, args: list[str]) -> None:
        self.print(f"{self.sheet.total_rows:,} rows")

    def cmd_view(self, args: list[str]) -> None:
        if not args:
            raise HillviewError("view needs at least one sort column")
        columns = [self._require_column(c) for c in args]
        self.view = self.sheet.table_view(RecordOrder.of(*columns), k=15)
        self.print(self.view.ascii())

    def cmd_next(self, args: list[str]) -> None:
        if self.view is None:
            raise HillviewError("no view yet; use 'view <col>' first")
        self.view = self.sheet.next_page(self.view)
        self.print(self.view.ascii())

    def cmd_prev(self, args: list[str]) -> None:
        if self.view is None:
            raise HillviewError("no view yet; use 'view <col>' first")
        self.view = self.sheet.prev_page(self.view)
        self.print(self.view.ascii())

    def cmd_scroll(self, args: list[str]) -> None:
        if self.view is None:
            raise HillviewError("no view yet; use 'view <col>' first")
        fraction = float(args[0]) if args else 0.5
        self.view = self.sheet.scroll(fraction, self.view.order, k=15)
        self.print(f"[scrolled to ~{self.view.scroll_position:.0%}]")
        self.print(self.view.ascii())

    def cmd_find(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: find <col> <text>")
        column = self._require_column(args[0])
        pattern = " ".join(args[1:])
        result, view = self.sheet.find(column, pattern)
        if view is None:
            self.print(f"no match for {pattern!r}")
            return
        self.view = view
        self.print(f"{result.total_matches:,} matches; showing the first:")
        self.print(view.ascii())

    def cmd_hist(self, args: list[str]) -> None:
        if not args:
            raise HillviewError("usage: hist <col>")
        chart = self.sheet.histogram(self._require_column(args[0]))
        self.print(chart.ascii(height=10))
        if chart.rate < 1.0:
            self.print(f"(sampled at rate {chart.rate:.4f}; "
                       "bars within one pixel w.h.p.)")

    def cmd_stack(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: stack <x> <y>")
        chart = self.sheet.stacked_histogram(
            self._require_column(args[0]), self._require_column(args[1])
        )
        rendering = chart.rendering()
        self.print(
            f"stacked histogram: {chart.summary.x_buckets} bars x "
            f"{chart.summary.y_buckets} colors; tallest bar "
            f"{rendering.heights.max()} px"
        )

    def cmd_heat(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: heat <x> <y>")
        chart = self.sheet.heatmap(
            self._require_column(args[0]), self._require_column(args[1])
        )
        self.print(chart.ascii())

    def cmd_trellis(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: trellis <group> <x>")
        chart = self.sheet.trellis_histogram(
            self._require_column(args[0]),
            self._require_column(args[1]),
            panes=4,
        )
        self.print(chart.ascii(panes=4, height=5))

    def cmd_top(self, args: list[str]) -> None:
        if not args:
            raise HillviewError("usage: top <col> [k]")
        k = int(args[1]) if len(args) > 1 else 10
        # The sketch's K is a frequency threshold (finds values above 1/K);
        # query finer than the display count so a small k still shows rows.
        result = self.sheet.heavy_hitters(
            self._require_column(args[0]), k=max(2 * k, 20)
        )
        hitters = result.frequencies()[:k]
        if not hitters:
            self.print("  (no value is frequent enough to report)")
        for value, fraction in hitters:
            self.print(f"  {value}: {fraction:.2%}")

    def cmd_distinct(self, args: list[str]) -> None:
        if not args:
            raise HillviewError("usage: distinct <col>")
        estimate = self.sheet.distinct_count(self._require_column(args[0]))
        self.print(f"~{estimate:,.0f} distinct values")

    def cmd_summary(self, args: list[str]) -> None:
        if not args:
            raise HillviewError("usage: summary <col>")
        stats = self.sheet.column_summary(self._require_column(args[0]))
        self.print(
            f"  rows {stats.row_count:,} (missing {stats.missing_count:,})\n"
            f"  min {stats.min_value}  max {stats.max_value}\n"
            f"  mean {stats.mean:.3f}  std {stats.std_dev:.3f}"
        )

    def cmd_filter(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: filter <col> <op> <value>")
        column = self._require_column(args[0])
        op = args[1]
        value: object = None
        if op != "is_missing":
            if len(args) < 3:
                raise HillviewError("usage: filter <col> <op> <value>")
            raw = args[2]
            if self.sheet.schema.kind(column).is_numeric:
                value = float(raw)
            else:
                value = raw
        self.sheet = self.sheet.filter_rows(ColumnPredicate(column, op, value))
        self.view = None
        self.print(f"filtered: {self.sheet.total_rows:,} rows remain")

    def cmd_derive(self, args: list[str]) -> None:
        if len(args) < 2:
            raise HillviewError("usage: derive <name> <expression>")
        name, expression = args[0], " ".join(args[1:])
        self.sheet = self.sheet.derive_expression(name, expression)
        stats = self.sheet.column_summary(name)
        self.print(
            f"derived {name!r}: mean {stats.mean:.3f}, "
            f"{stats.missing_count:,} missing"
        )

    def cmd_reset(self, args: list[str]) -> None:
        self.sheet = self.root_sheet
        self.view = None
        self.print("back to the full dataset")

    def cmd_log(self, args: list[str]) -> None:
        for line in self.sheet.log.describe()[-15:]:
            self.print(f"  {line}")


def build_session(args: argparse.Namespace, out: TextIO | None = None) -> Session:
    cluster = Cluster(num_workers=args.workers)
    if args.demo_flights:
        from repro.data.flights import generate_flights

        table = generate_flights(args.demo_flights, seed=1)
        source: DataSource = TableSource([table], shards_per_table=args.workers * 4)
    else:
        if not args.path:
            raise HillviewError("give a data file, or --demo-flights N")
        source = source_for_path(args.path, args.sql_table)
    dataset = cluster.load(source)
    return Session(Spreadsheet(dataset), out=out)


# ---------------------------------------------------------------------------
# The service layer: `repro serve` and `repro client`
# ---------------------------------------------------------------------------
def _serve_source(args: argparse.Namespace) -> DataSource | None:
    """The server's default dataset, if any was configured."""
    if args.demo_flights:
        from repro.data.flights import FlightsSource

        return FlightsSource(
            args.demo_flights, partitions=args.workers * 8, seed=1
        )
    if args.path:
        return source_for_path(args.path, args.sql_table)
    return None


def serve_main(argv: list[str]) -> int:
    """`repro serve`: run the concurrent multi-client service."""
    parser = argparse.ArgumentParser(
        prog="repro.cli serve",
        description="Serve a dataset to concurrent sessions over TCP.",
    )
    parser.add_argument("path", nargs="?", help="CSV/JSONL/log/SQLite/hvc path")
    parser.add_argument("--sql-table", help="table name for SQLite sources")
    parser.add_argument(
        "--demo-flights", type=int, metavar="N",
        help="serve N synthetic flight rows as the default dataset",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--spawn", action="store_true",
        help="run workers as spawned subprocesses instead of threads",
    )
    parser.add_argument(
        "--worker-address", action="append", metavar="HOST:PORT",
        help="attach to a pre-started `repro worker --listen` daemon "
             "(repeatable; overrides --workers/--spawn)",
    )
    parser.add_argument(
        "--join", metavar="FLEET",
        help="join a shared worker fleet as one of several roots: "
             "'host:port,host:port' or '@file' with one address per line; "
             "roots adopt the fleet's shard placement instead of slicing "
             "it themselves",
    )
    parser.add_argument(
        "--session-store", metavar="PATH",
        help="shared session store so clients can resume a session id on "
             "any root of the tier ('memory' or a SQLite file path; "
             "default: memory)",
    )
    parser.add_argument(
        "--session-store-ttl", type=float, metavar="SECONDS",
        help="compact the shared session store: records idle longer than "
             "this are purged by the sweep loop (default: never)",
    )
    parser.add_argument(
        "--cores-per-worker", type=int, default=4,
        help="leaf thread pool size per worker",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8947)
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="query scheduler concurrency (fair-share across sessions)",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=900.0,
        help="seconds before an idle session's handles are evicted",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one-line JSON log records (stamped with trace/session "
             "ids) instead of staying quiet",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        help="enable structured logging at this level (text mode unless "
             "--log-json)",
    )
    args = parser.parse_args(argv)

    from repro.obs.logs import configure_logging
    from repro.obs.trace import set_service_name
    from repro.service import ServiceServer, open_session_store

    if args.log_json or args.log_level:
        configure_logging(
            json_mode=args.log_json or None, level=args.log_level
        )
    set_service_name("root")

    if args.join:
        from repro.engine.remote import ProcessCluster
        from repro.service import parse_fleet_spec

        addresses = parse_fleet_spec(args.join)
        cluster = ProcessCluster(addresses=addresses)
        topology = (
            f"joined a shared fleet of {len(addresses)} worker processes"
        )
    elif args.worker_address:
        from repro.engine.remote import ProcessCluster
        from repro.service import parse_fleet_spec

        addresses = parse_fleet_spec(",".join(args.worker_address))
        cluster = ProcessCluster(addresses=addresses)
        topology = f"{len(addresses)} attached worker processes"
    elif args.spawn:
        from repro.engine.remote import ProcessCluster

        cluster = ProcessCluster(
            num_workers=args.workers, cores_per_worker=args.cores_per_worker
        )
        topology = f"{args.workers} spawned worker processes"
    else:
        cluster = Cluster(
            num_workers=args.workers, cores_per_worker=args.cores_per_worker
        )
        topology = f"{args.workers} in-process workers"

    server = ServiceServer(
        cluster,
        host=args.host,
        port=args.port,
        max_concurrent=args.max_concurrent,
        idle_ttl_seconds=args.idle_ttl,
        default_source=_serve_source(args),
        session_store=open_session_store(args.session_store),
        session_store_ttl_seconds=args.session_store_ttl,
    )
    print(f"hillview service on {args.host}:{args.port} "
          f"({topology}, {args.max_concurrent} query slots)")
    try:
        server.run()
    finally:
        cluster.close()
    return 0


def gateway_main(argv: list[str], out: TextIO | None = None) -> int:
    """`repro gateway`: the browser-facing HTTP/WebSocket front door.

    Runs a full stack in one process: an in-process worker cluster, the
    TCP service root (so ``repro client`` still works against the same
    sessions), and the HTTP/WS gateway documented in
    ``docs/GATEWAY_API.md`` on top.
    """
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.cli gateway",
        description="Serve the HTTP/WebSocket gateway over a service tier.",
    )
    parser.add_argument("path", nargs="?", help="CSV/JSONL/log/SQLite/hvc path")
    parser.add_argument("--sql-table", help="table name for SQLite sources")
    parser.add_argument(
        "--demo-flights", type=int, metavar="N",
        help="serve N synthetic flight rows as the default dataset",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--cores-per-worker", type=int, default=4,
        help="leaf thread pool size per worker",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8780,
        help="HTTP/WebSocket listen port (0 picks a free one)",
    )
    parser.add_argument(
        "--service-host", default="127.0.0.1",
        help="bind address for the TCP service root underneath",
    )
    parser.add_argument(
        "--service-port", type=int, default=8947,
        help="TCP service root port (0 picks a free one)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="query scheduler concurrency (fair-share across sessions)",
    )
    parser.add_argument(
        "--idle-ttl", type=float, default=900.0,
        help="seconds before an idle session's handles are evicted",
    )
    parser.add_argument(
        "--heartbeat", type=float, default=15.0, metavar="SECONDS",
        help="WebSocket heartbeat interval",
    )
    parser.add_argument(
        "--resume-grace", type=float, default=60.0, metavar="SECONDS",
        help="seconds a disconnected session's streams stay resumable",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit one-line JSON log records instead of staying quiet",
    )
    parser.add_argument(
        "--log-level", choices=["debug", "info", "warning", "error"],
        help="enable structured logging at this level",
    )
    args = parser.parse_args(argv)

    import threading

    from repro.gateway import PROTOCOL_VERSION, GatewayServer
    from repro.obs.logs import configure_logging
    from repro.obs.trace import set_service_name
    from repro.service import ServiceServer

    if args.log_json or args.log_level:
        configure_logging(
            json_mode=args.log_json or None, level=args.log_level
        )
    set_service_name("gateway")

    cluster = Cluster(
        num_workers=args.workers, cores_per_worker=args.cores_per_worker
    )
    service = ServiceServer(
        cluster,
        host=args.service_host,
        port=args.service_port,
        max_concurrent=args.max_concurrent,
        idle_ttl_seconds=args.idle_ttl,
        default_source=_serve_source(args),
    )
    gateway = GatewayServer(
        service,
        host=args.host,
        port=args.port,
        heartbeat_interval_seconds=args.heartbeat,
        resume_grace_seconds=args.resume_grace,
    )
    try:
        service_address = service.start_background()
        address = gateway.start_background()
        print(
            f"hillview gateway on http://{address[0]}:{address[1]} "
            f"(protocol v{PROTOCOL_VERSION}; TCP root on "
            f"{service_address[0]}:{service_address[1]}, "
            f"{args.workers} in-process workers)",
            file=stream,
            flush=True,
        )
        try:
            threading.Event().wait()  # serve until Ctrl-C
        except KeyboardInterrupt:
            pass
    finally:
        gateway.close()
        service.close()
        cluster.close()
    return 0


class RemoteSession:
    """`repro client`: a thin command loop over a :class:`ServiceClient`.

    Mirrors the local Session verbs that translate to single RPCs; every
    command goes over the wire and through the fair-share scheduler.
    """

    def __init__(self, client, out: TextIO | None = None):
        self.client = client
        self.out = out if out is not None else sys.stdout
        self.handle: str | None = None

    def print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _require_handle(self) -> str:
        if self.handle is None:
            raise HillviewError("no dataset yet; use 'load' first")
        return self.handle

    @staticmethod
    def _hist_spec(args: list[str]) -> dict:
        if len(args) < 3:
            raise HillviewError("usage: hist <col> <min> <max> [buckets]")
        buckets = int(args[3]) if len(args) > 3 else 10
        return {
            "type": "histogram",
            "column": args[0],
            "buckets": {
                "type": "double",
                "min": float(args[1]),
                "max": float(args[2]),
                "count": buckets,
            },
        }

    def execute(self, line: str) -> bool:
        words = shlex.split(line.strip())
        if not words:
            return True
        name, args = words[0].lower(), words[1:]
        if name in ("quit", "exit", "q"):
            return False
        try:
            self._dispatch(name, args)
        except HillviewError as exc:
            self.print(f"error: {exc}")
        except (ValueError, KeyError, IndexError) as exc:
            self.print(f"error: {exc}")
        return True

    def _dispatch(self, name: str, args: list[str]) -> None:
        if name == "load":
            spec = {"kind": "path", "path": args[0]} if args else {}
            self.handle = self.client.load(spec)
            self.print(f"loaded as {self.handle} "
                       f"({self.client.row_count(self.handle):,} rows)")
        elif name == "cols":
            for column in self.client.schema(self._require_handle()):
                self.print(f"  {column['name']}: {column['kind']}")
        elif name == "rows":
            self.print(f"{self.client.row_count(self._require_handle()):,} rows")
        elif name == "hist":
            spec = self._hist_spec(args)
            partials = 0
            final = None
            for reply in self.client.sketch(self._require_handle(), spec).replies():
                if reply.kind == "partial":
                    partials += 1
                final = reply
            if final.kind == "error":
                raise HillviewError(f"[{final.code}] {final.error}")
            from repro.engine.rpc import NO_PAYLOAD

            if final.kind != "complete" or final.payload in (None, NO_PAYLOAD):
                raise HillviewError(f"query ended early ({final.kind})")
            counts = final.payload["counts"]
            peak = max(counts) or 1
            for i, count in enumerate(counts):
                bar = "#" * max(1 if count else 0, round(count / peak * 40))
                self.print(f"  [{i:2d}] {count:>9,} {bar}")
            self.print(f"  ({partials} progressive partials, "
                       f"{final.payload['missing']:,} missing)")
        elif name == "distinct":
            if not args:
                raise HillviewError("usage: distinct <col>")
            spec = {"type": "distinct", "column": args[0]}
            reply = self.client.sketch(self._require_handle(), spec).result()
            self.print(f"~{reply.payload['estimate']:,.0f} distinct values")
        elif name == "filter":
            if len(args) < 3:
                raise HillviewError("usage: filter <col> <op> <value>")
            raw: object = args[2]
            try:
                raw = float(args[2])
            except ValueError:
                pass
            reply = self.client.call(
                "filter",
                self._require_handle(),
                {"predicate": {
                    "type": "column", "column": args[0], "op": args[1],
                    "value": raw,
                }},
            )
            self.handle = reply.payload["handle"]
            self.print(f"filtered: {self.client.row_count(self.handle):,} "
                       f"rows remain (handle {self.handle})")
        elif name == "stats":
            stats = self.client.stats()
            scheduler = stats["scheduler"]
            self.print(
                f"  sessions: {len(stats['sessions']['sessions'])} live, "
                f"{stats['sessions']['sessionsCreated']} created"
            )
            self.print(
                f"  queries: {scheduler['admitted']} admitted, "
                f"{scheduler['completed']} completed, "
                f"{scheduler['preempted']} preempted, "
                f"{scheduler['rejected']} rejected"
            )
        elif name == "cachestats":
            stats = self.client.cache_stats()
            cluster = stats["cluster"]
            if cluster.get("disabled"):
                self.print("  caches DISABLED (REPRO_DISABLE_CACHES)")
            for tier, counters in cluster["root"].items():
                self.print(
                    f"  root/{tier}: {counters['entries']} entries, "
                    f"{counters['bytes']:,}B, {counters['hits']} hits / "
                    f"{counters['misses']} misses, "
                    f"{counters['evictions']} evictions"
                )
            for worker in cluster["workers"]:
                if "error" in worker:
                    self.print(f"  {worker.get('name', '?')}: {worker['error']}")
                    continue
                memo = worker["memo"]
                store = worker["store"]
                self.print(
                    f"  {worker['name']}: memo {memo['entries']} entries "
                    f"({memo['hits']} hits), store {store['entries']} "
                    f"datasets, {worker['shardsSummarized']} shards scanned"
                )
            mine = stats["sessions"].get(self.client.session_id, {})
            self.print(
                f"  this session: {mine.get('cacheHits', 0)} root hits, "
                f"{mine.get('workerCacheHits', 0)} worker partial hits"
            )
        elif name == "trace":
            # `trace hist Distance 0 3000`: run the query with a fresh
            # trace context, then fetch the merged root+worker span
            # timeline and write it as Chrome trace-event JSON.
            if not args:
                raise HillviewError(
                    "usage: trace hist <col> <min> <max> [buckets] "
                    "| trace distinct <col>"
                )
            import json as json_mod

            from repro.obs.trace import TraceContext, chrome_trace

            sub, sub_args = args[0].lower(), args[1:]
            if sub == "hist":
                spec = self._hist_spec(sub_args)
            elif sub == "distinct":
                if not sub_args:
                    raise HillviewError("usage: trace distinct <col>")
                spec = {"type": "distinct", "column": sub_args[0]}
            else:
                raise HillviewError(
                    f"cannot trace {sub!r}; try 'trace hist' or "
                    "'trace distinct'"
                )
            ctx = TraceContext.new_root()
            pending = self.client.submit(
                "sketch", self._require_handle(), {"sketch": spec}, trace=ctx
            )
            final = None
            for reply in pending.replies():
                final = reply
            if final is not None and final.kind == "error":
                raise HillviewError(f"[{final.code}] {final.error}")
            spans = self.client.trace_dump(ctx.trace_id)
            path = f"trace-{ctx.trace_id}.json"
            with open(path, "w", encoding="utf-8") as fh:
                json_mod.dump(chrome_trace(spans), fh)
            by_service: dict[str, int] = {}
            for s in spans:
                service = str(s.get("service", "?"))
                by_service[service] = by_service.get(service, 0) + 1
            if spans:
                first = min(float(s.get("start", 0.0)) for s in spans)
                last = max(
                    float(s.get("start", 0.0)) + float(s.get("duration", 0.0))
                    for s in spans
                )
                self.print(
                    f"trace {ctx.trace_id}: {len(spans)} spans over "
                    f"{last - first:.3f}s"
                )
            else:
                self.print(f"trace {ctx.trace_id}: no spans recorded")
            for service in sorted(by_service):
                self.print(f"  {service}: {by_service[service]} spans")
            self.print(f"wrote {path} (open in Perfetto / chrome://tracing)")
        elif name == "metrics":
            snap = self.client.metrics_snapshot()
            scheduler = snap.get("scheduler", {})
            self.print(
                f"  scheduler: {scheduler.get('running', 0)} running, "
                f"{scheduler.get('admitted', 0)} admitted, "
                f"{scheduler.get('completed', 0)} completed"
            )
            cluster = snap.get("cluster", {})
            self.print(
                f"  cluster: placement v{cluster.get('placementVersion', 0)}, "
                f"{cluster.get('rebalances', 0)} rebalances, "
                f"{cluster.get('bytesToRoot', 0):,}B to root, "
                f"computation hit rate "
                f"{cluster.get('computationHitRate', 0.0):.0%}"
            )
            for worker in cluster.get("workers", []):
                if "error" in worker:
                    self.print(
                        f"  {worker.get('name', '?')}: {worker['error']}"
                    )
                    continue
                queue = (
                    f"queue {worker['inflight']}  " if "inflight" in worker
                    else ""
                )
                self.print(
                    f"  {worker.get('name', '?')}: {queue}"
                    f"{worker.get('shardsSummarized', 0)} shards scanned, "
                    f"memo {worker.get('memoHitRate', 0.0):.0%}, "
                    f"store {worker.get('storeHitRate', 0.0):.0%}"
                )
        elif name == "help":
            self.print("  load [path] | cols | rows | hist <col> <min> <max>"
                       " [buckets] | distinct <col> | filter <col> <op> <v>"
                       " | trace <query> | metrics | stats | cachestats"
                       " | quit")
        else:
            self.print(f"unknown command {name!r}; try 'help'")

    def run(self, lines: Iterable[str], prompt: bool = False) -> None:
        for line in lines:
            if prompt:
                self.print(f"hillview[{self.client.session_id}]> {line.strip()}")
            if not self.execute(line):
                break


def _fleet_autoscale(args, addresses, stream: TextIO) -> int:
    """`repro fleet autoscale`: bind the control loop to a live fleet.

    ``--join`` names the current members, ``--pool`` the standby worker
    daemons the loop may grow into.  Grow takes daemons from the front
    of the pool; shrink retires the most recently added members first
    (LIFO), returning them to the pool — the operator-given core fleet
    is the last to go, and an oscillation (which hysteresis should
    prevent anyway) cycles the same standbys instead of churning
    through new ones.
    """
    from repro.engine.placement import format_address, parse_fleet_spec
    from repro.engine.remote import ProcessCluster, query_fleet_metrics
    from repro.service.autoscaler import Autoscaler, AutoscalerConfig

    members = list(addresses)
    pool = [
        a
        for a in (parse_fleet_spec(args.pool) if args.pool else [])
        if a not in members
    ]

    def sample() -> list[dict]:
        return query_fleet_metrics(members)

    def grow(count: int) -> None:
        take = pool[:count]
        if not take:
            raise HillviewError("standby pool exhausted; cannot grow")
        # preserve_cadence: administrative attach, like grow/shrink above.
        cluster = ProcessCluster(addresses=members, preserve_cadence=True)
        try:
            cluster.grow(take)
        finally:
            cluster.close()
        del pool[: len(take)]
        members.extend(take)

    def shrink(count: int) -> None:
        victims = members[-count:]
        cluster = ProcessCluster(addresses=members, preserve_cadence=True)
        try:
            cluster.shrink(victims)
        finally:
            cluster.close()
        del members[-count:]
        pool[:0] = victims

    scaler = Autoscaler(
        sample,
        grow,
        shrink,
        config=AutoscalerConfig(
            min_workers=args.min,
            max_workers=args.max,
            high_watermark=args.high,
            low_watermark=args.low,
            consecutive_ticks=args.ticks,
            cooldown_seconds=args.cooldown,
            interval_seconds=args.interval,
        ),
        state_path=args.state,
    )

    def report(decision) -> None:
        fleet = ",".join(format_address(a) for a in members)
        print(
            f"[{decision.action}] size {decision.size} -> "
            f"{decision.target}  pressure {decision.pressure:.2f}/core  "
            f"{decision.reason}  fleet=[{fleet}]",
            file=stream,
        )

    print(
        f"autoscaling {len(members)} worker(s), pool of {len(pool)} "
        f"standby(s), every {args.interval:g}s "
        f"(watermarks {args.low:g}/{args.high:g}, "
        f"cooldown {args.cooldown:g}s)",
        file=stream,
    )
    try:
        scaler.run(max_ticks=args.max_ticks, on_decision=report)
    except KeyboardInterrupt:
        print("autoscaler stopped", file=stream)
    return 0


def fleet_main(argv: list[str], out: TextIO | None = None) -> int:
    """`repro fleet`: operate a live worker fleet / root tier.

    Subcommands::

        status    --join FLEET                 placement + inventory per worker
        top       --join FLEET                 live metrics per worker daemon
        grow      --join FLEET --add H:P ...   add daemons, re-balance shards
        shrink    --join FLEET --remove H:P .. retire daemons, re-balance
        drain     --root H:P                   root: persist sessions, refuse new
        undrain   --root H:P                   root: return to rotation
        autoscale --join FLEET --pool SPEC     metrics-driven resize loop

    ``grow``/``shrink`` attach a transient administrative root to the
    fleet, stream only the moved shard slices between daemons, and bump
    the placement version; serving roots adopt the new assignment on
    their next request (stale-version requests are rejected and retried
    internally — clients never notice).
    """
    stream = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro.cli fleet",
        description="Operate a live worker fleet (grow/shrink/drain).",
    )
    parser.add_argument(
        "action",
        choices=[
            "status", "top", "grow", "shrink", "drain", "undrain",
            "autoscale",
        ],
    )
    parser.add_argument(
        "--join", metavar="FLEET",
        help="the current fleet: 'host:port,...' or '@file' "
             "(status/grow/shrink)",
    )
    parser.add_argument(
        "--add", action="append", metavar="HOST:PORT", default=[],
        help="daemon to add (grow; repeatable)",
    )
    parser.add_argument(
        "--remove", action="append", metavar="HOST:PORT", default=[],
        help="daemon to retire (shrink; repeatable)",
    )
    parser.add_argument(
        "--root", metavar="HOST:PORT",
        help="service root to drain/undrain",
    )
    parser.add_argument(
        "--pool", metavar="SPEC", default=None,
        help="standby daemons the autoscaler may grow into: "
             "'host:port,...' or '@file' (autoscale)",
    )
    parser.add_argument(
        "--state", metavar="FILE", default=None,
        help="autoscaler state file, read back by `fleet top` "
             "(autoscale/top)",
    )
    parser.add_argument(
        "--min", type=int, default=1, help="minimum fleet size (autoscale)"
    )
    parser.add_argument(
        "--max", type=int, default=8, help="maximum fleet size (autoscale)"
    )
    parser.add_argument(
        "--high", type=float, default=3.0,
        help="grow above this pressure/core (autoscale)",
    )
    parser.add_argument(
        "--low", type=float, default=0.5,
        help="shrink below this pressure/core (autoscale)",
    )
    parser.add_argument(
        "--cooldown", type=float, default=30.0,
        help="seconds between resize actions (autoscale)",
    )
    parser.add_argument(
        "--ticks", type=int, default=3,
        help="consecutive agreeing samples before acting (autoscale)",
    )
    parser.add_argument(
        "--interval", type=float, default=5.0,
        help="sampling cadence in seconds (autoscale)",
    )
    parser.add_argument(
        "--max-ticks", type=int, default=None,
        help="stop the autoscale loop after N samples (default: forever)",
    )
    args = parser.parse_args(argv)

    from repro.engine.placement import parse_address, parse_fleet_spec
    from repro.engine.remote import ProcessCluster, query_fleet

    def print_fleet(addresses) -> None:
        for report in query_fleet(addresses):
            if "error" in report:
                print(f"  {report['address']}: DOWN ({report['error']})",
                      file=stream)
                continue
            if report.get("retired"):
                place = "retired"
            elif report.get("index") is None:
                place = "unplaced"
            else:
                place = f"slice {report['index']}/{report['count']}"
            datasets = report.get("datasets") or {}
            shard_count = sum(
                entry.get("shards", 0) if isinstance(entry, dict) else entry
                for entry in datasets.values()
            )
            print(
                f"  {report['address']}  {report.get('name', '?')}  "
                f"{place}  v{report.get('version', 0)}  "
                f"{len(datasets)} dataset(s), {shard_count} shard(s)",
                file=stream,
            )

    if args.action in ("drain", "undrain"):
        if not args.root:
            raise HillviewError(f"{args.action} needs --root host:port")
        from repro.service.director import admin_call

        reply = admin_call(parse_address(args.root), args.action)
        if reply.kind == "error":
            raise HillviewError(f"[{reply.code}] {reply.error}")
        payload = reply.payload or {}
        if args.action == "drain":
            print(
                f"root {args.root} draining: {payload.get('persisted', 0)} "
                f"session(s) persisted to the shared store",
                file=stream,
            )
        else:
            print(f"root {args.root} back in rotation", file=stream)
        return 0

    if not args.join:
        raise HillviewError(f"{args.action} needs --join FLEET")
    addresses = parse_fleet_spec(args.join)
    if args.action == "status":
        print(f"fleet of {len(addresses)} worker daemon(s):", file=stream)
        print_fleet(addresses)
        return 0
    if args.action == "top":
        from repro.engine.remote import query_fleet_metrics
        from repro.service.autoscaler import read_state

        state = read_state(args.state) if args.state else None
        if state is not None:
            last = state.get("lastDecision") or {}
            print(
                f"autoscaler: target {state.get('target', '?')}  "
                f"last {last.get('action', '?')} "
                f"({last.get('reason', 'no decision yet')})",
                file=stream,
            )
        print(f"fleet of {len(addresses)} worker daemon(s):", file=stream)
        for snap in query_fleet_metrics(addresses):
            if "error" in snap:
                print(
                    f"  {snap.get('address', '?')}: DOWN ({snap['error']})",
                    file=stream,
                )
                continue
            flags = " DRAINING" if snap.get("draining") else ""
            print(
                f"  {snap['address']}  {snap.get('name', '?')}  "
                f"queue {snap.get('inflight', 0)}  "
                f"served {snap.get('requestsServed', 0)}  "
                f"shards {snap.get('shardsSummarized', 0)}  "
                f"memo {snap.get('memoHitRate', 0.0):.0%}  "
                f"store {snap.get('storeHitRate', 0.0):.0%}  "
                f"stolen {snap.get('slicesStolen', 0)}/"
                f"{snap.get('slicesDonated', 0)}  "
                f"warmed {snap.get('entriesWarmed', 0)}  "
                f"v{snap.get('placementVersion', 0)}  "
                f"spans {snap.get('spansBuffered', 0)}{flags}",
                file=stream,
            )
        return 0
    if args.action == "autoscale":
        return _fleet_autoscale(args, addresses, stream)

    # preserve_cadence: this administrative attach must not rewrite the
    # serving tier's aggregation interval with our own default.
    cluster = ProcessCluster(addresses=addresses, preserve_cadence=True)
    try:
        if args.action == "grow":
            if not args.add:
                raise HillviewError("grow needs at least one --add host:port")
            count = cluster.grow([parse_address(a) for a in args.add])
            print(
                f"fleet grown to {count} workers "
                f"(placement v{cluster.placement_version}):",
                file=stream,
            )
        else:
            if not args.remove:
                raise HillviewError(
                    "shrink needs at least one --remove host:port"
                )
            count = cluster.shrink([parse_address(a) for a in args.remove])
            print(
                f"fleet shrunk to {count} workers "
                f"(placement v{cluster.placement_version}):",
                file=stream,
            )
        print_fleet([w.address for w in cluster.workers])
    finally:
        cluster.close()
    return 0


def client_main(argv: list[str], out: TextIO | None = None) -> int:
    """`repro client`: connect a terminal session to a running service."""
    parser = argparse.ArgumentParser(
        prog="repro.cli client",
        description="Connect to a hillview service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8947)
    parser.add_argument("--session", help="resume a session by id")
    parser.add_argument(
        "--commands", help="semicolon-separated commands to run and exit"
    )
    args = parser.parse_args(argv)

    from repro.service import ServiceClient, ServiceError

    try:
        client = ServiceClient(args.host, args.port, session=args.session)
    except (OSError, ServiceError) as exc:
        # Unreachable, or the root refused the handshake (e.g. it is
        # draining for maintenance): one friendly line, exit 1.
        print(
            f"error: cannot connect to {args.host}:{args.port}: {exc}",
            file=out if out is not None else sys.stderr,
        )
        return 1
    with client:
        session = RemoteSession(client, out=out)
        session.print(f"session {client.session_id} on {args.host}:{args.port}")
        if args.commands:
            session.run(args.commands.split(";"), prompt=True)
        else:
            session.run(sys.stdin, prompt=False)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "gateway":
        return gateway_main(argv[1:])
    if argv and argv[0] == "client":
        return client_main(argv[1:])
    if argv and argv[0] == "worker":
        from repro.engine.remote import worker_main

        return worker_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analysis import analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "fleet":
        try:
            return fleet_main(argv[1:])
        except (HillviewError, OSError) as exc:
            # Operator-facing surface: usage mistakes and unreachable
            # daemons/roots get one friendly line, like `repro client`.
            print(f"error: {exc}", file=sys.stderr)
            return 1
    parser = argparse.ArgumentParser(
        prog="repro.cli", description="Browse a dataset in the terminal."
    )
    parser.add_argument("path", nargs="?", help="CSV/JSONL/log/SQLite/hvc path")
    parser.add_argument("--sql-table", help="table name for SQLite sources")
    parser.add_argument(
        "--demo-flights", type=int, metavar="N",
        help="skip loading and explore N synthetic flight rows",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--commands", help="semicolon-separated commands to run and exit"
    )
    args = parser.parse_args(argv)

    session = build_session(args)
    if args.commands:
        session.run(args.commands.split(";"), prompt=True)
        return 0
    session.run(sys.stdin, prompt=False)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
