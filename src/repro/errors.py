"""Exception hierarchy for the repro (Hillview reproduction) library.

All library-raised exceptions derive from :class:`HillviewError` so callers
can catch one base class.  The sub-classes mirror the major subsystems.
"""

from __future__ import annotations


class HillviewError(Exception):
    """Base class for every error raised by this library.

    ``code`` is a short machine-readable tag carried by RPC error
    envelopes, so remote clients can dispatch on the failure class
    without parsing messages.
    """

    code: str = "engine"


class SchemaError(HillviewError):
    """A column or table schema is inconsistent with an operation."""


class ColumnKindError(SchemaError):
    """An operation was applied to a column of an unsupported kind."""


class MissingColumnError(SchemaError):
    """A referenced column does not exist in the table."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = list(available) if available is not None else None
        detail = f"column {name!r} not found"
        if self.available is not None:
            detail += f"; available: {', '.join(self.available)}"
        super().__init__(detail)


class SerializationError(HillviewError):
    """A summary could not be encoded or decoded."""


class StorageError(HillviewError):
    """A data repository could not be read or written."""


class SnapshotViolationError(StorageError):
    """The storage layer detected that data changed under a snapshot."""


class EngineError(HillviewError):
    """The execution engine encountered an internal problem."""


class DatasetMissingError(EngineError):
    """A soft-state remote object was evicted and must be reconstructed.

    The root node catches this error and replays the redo log (paper §5.7).
    """

    def __init__(self, object_id: str, server: str | None = None):
        self.object_id = object_id
        self.server = server
        where = f" on server {server}" if server else ""
        super().__init__(f"dataset object {object_id!r} no longer exists{where}")


class CancelledError(EngineError):
    """A computation was cancelled by the user (paper §5.3)."""

    code = "cancelled"


class WorkerUnavailableError(EngineError):
    """A worker process died or its connection broke mid-request.

    The root treats this like any other soft-state loss (§5.8): respawn or
    reconnect the worker, replay lineage, and re-run the sketch — cumulative
    partials make the retry transparent to the streaming client.
    """

    code = "worker_unavailable"


class QueryError(HillviewError):
    """A baseline database query was malformed."""
