"""repro — a Python reproduction of Hillview (VLDB 2019).

Hillview is a distributed spreadsheet for browsing very large datasets.  Its
key idea, the *vizketch*, combines mergeable summaries with
visualization-driven computation: every chart and tabular view is computed
by a pair of pure functions ``summarize``/``merge`` whose accuracy and
output size are set by the display resolution, never by the data size.

Public entry points:

* :class:`repro.table.Table` — immutable columnar tables.
* :mod:`repro.sketches` — every vizketch from the paper.
* :class:`repro.engine.Cluster` / :func:`repro.engine.parallel_dataset` —
  the execution engines (trees, progressive results, caching, replay).
* :class:`repro.spreadsheet.Spreadsheet` — the user-facing facade.
* :class:`repro.engine.WebServer` — the JSON RPC session layer the browser
  UI talks to (§5.2, §6).
* :mod:`repro.storage` — data sources (CSV, JSON, logs, SQL, columnar)
  read in place, without ingestion (§2).
* :mod:`repro.data.flights` — the synthetic flights dataset used throughout
  the paper's evaluation.
* :mod:`repro.baseline` — the evaluation baselines (§7.1, §7.2.1).
"""

__version__ = "1.0.0"

from repro.core import DEFAULT_RESOLUTION, Resolution
from repro.engine import Cluster, WebServer, parallel_dataset
from repro.spreadsheet import Spreadsheet
from repro.table import (
    ColumnDescription,
    ContentsKind,
    RecordOrder,
    Schema,
    Table,
)

__all__ = [
    "Table",
    "Schema",
    "ColumnDescription",
    "ContentsKind",
    "RecordOrder",
    "Resolution",
    "DEFAULT_RESOLUTION",
    "Cluster",
    "WebServer",
    "parallel_dataset",
    "Spreadsheet",
    "__version__",
]
