"""SQL database reading and writing via SQLite (§2, §3.5).

Hillview reads SQL databases directly — no ingestion, indexes, or
extract-transform-load — relying only on horizontal partitioning and
snapshot semantics.  This module provides the equivalent over SQLite (the
standard library's ``sqlite3``), standing in for the JDBC connectors of the
original system:

* :func:`read_sql` loads a database table as one or more columnar shards,
  horizontally partitioned by rowid range so workers can read in parallel;
* :func:`write_sql` stores a :class:`~repro.table.table.Table` into a
  database (the output side of a pipeline, §2);
* :func:`snapshot_fingerprint` captures a cheap content fingerprint so a
  re-load can verify the "data does not change while Hillview is running"
  requirement (§2).

Column kinds come from the declared SQL types (SQLite affinity rules:
``INT*`` → integer, ``REAL/FLOA/DOUB`` → double, ``DATE/TIME*`` → date,
anything textual → string), with per-column overrides; undeclared columns
fall back to value-based inference, like the CSV reader.
"""

from __future__ import annotations

import sqlite3
from datetime import datetime
from typing import Mapping, Sequence

from repro.errors import StorageError
from repro.storage.csv_io import parse_date
from repro.table.column import column_from_values, datetime_to_millis
from repro.table.schema import ContentsKind
from repro.table.table import Table

#: Substrings of a declared SQL type mapped to a column kind, checked in
#: order (mirrors SQLite's type-affinity rules, with dates carved out).
_DECLARED_KIND_RULES: tuple[tuple[str, ContentsKind], ...] = (
    ("DATE", ContentsKind.DATE),
    ("TIME", ContentsKind.DATE),
    ("INT", ContentsKind.INTEGER),
    ("REAL", ContentsKind.DOUBLE),
    ("FLOA", ContentsKind.DOUBLE),
    ("DOUB", ContentsKind.DOUBLE),
    ("NUMERIC", ContentsKind.DOUBLE),
    ("DECIMAL", ContentsKind.DOUBLE),
    ("CHAR", ContentsKind.STRING),
    ("CLOB", ContentsKind.STRING),
    ("TEXT", ContentsKind.STRING),
)


def _quote_identifier(name: str) -> str:
    """Quote an SQL identifier (table or column name)."""
    return '"' + name.replace('"', '""') + '"'


def kind_from_declared_type(declared: str | None) -> ContentsKind | None:
    """The column kind implied by a declared SQL type, if any."""
    if not declared:
        return None
    upper = declared.upper()
    for token, kind in _DECLARED_KIND_RULES:
        if token in upper:
            return kind
    return None


def declared_type_for_kind(kind: ContentsKind) -> str:
    """The SQL column type used when writing a table (:func:`write_sql`)."""
    if kind is ContentsKind.INTEGER:
        return "INTEGER"
    if kind is ContentsKind.DOUBLE:
        return "REAL"
    if kind is ContentsKind.DATE:
        return "TIMESTAMP"
    return "TEXT"


def _declared_kinds(
    conn: sqlite3.Connection, table: str
) -> dict[str, ContentsKind | None]:
    """Column name → kind from the table's declared schema."""
    rows = conn.execute(f"PRAGMA table_info({_quote_identifier(table)})").fetchall()
    if not rows:
        raise StorageError(f"no such SQL table: {table!r}")
    return {row[1]: kind_from_declared_type(row[2]) for row in rows}


def _convert_cell(value: object, kind: ContentsKind | None) -> object | None:
    """Coerce one SQL cell to the column kind's Python value."""
    if value is None:
        return None
    if kind is ContentsKind.DATE and not isinstance(value, datetime):
        if isinstance(value, (int, float)):
            # Stored as epoch milliseconds (our own write_sql encoding).
            from repro.table.column import millis_to_datetime

            return millis_to_datetime(int(value))
        parsed = parse_date(str(value))
        if parsed is None:
            raise StorageError(f"cannot parse {value!r} as a date")
        return parsed
    return value


def _rowid_cuts(
    conn: sqlite3.Connection, table: str, partitions: int
) -> list[tuple[int, int]]:
    """Split the table's rowid range into ``partitions`` half-open spans."""
    quoted = _quote_identifier(table)
    row = conn.execute(f"SELECT min(rowid), max(rowid) FROM {quoted}").fetchone()
    lo, hi = row
    if lo is None:
        return []
    span = hi - lo + 1
    cuts = []
    for i in range(partitions):
        start = lo + (span * i) // partitions
        end = lo + (span * (i + 1)) // partitions
        if end > start:
            cuts.append((start, end))
    return cuts


def read_sql(
    db_path: str,
    table: str,
    partitions: int = 1,
    kinds: Mapping[str, ContentsKind] | None = None,
    shard_prefix: str | None = None,
) -> list[Table]:
    """Read an SQLite table as ``partitions`` horizontally partitioned shards.

    Partitions are contiguous rowid ranges — arbitrary from the engine's
    point of view, exactly as §2 permits ("no requirements that partitions
    contain contiguous intervals or specific hash values").  ``kinds``
    overrides the declared-type mapping per column.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    overrides = dict(kinds or {})
    prefix = shard_prefix or f"{db_path}:{table}"
    with sqlite3.connect(db_path) as conn:
        declared = _declared_kinds(conn, table)
        names = list(declared.keys())
        chosen = {name: overrides.get(name, declared[name]) for name in names}
        quoted_table = _quote_identifier(table)
        column_list = ", ".join(_quote_identifier(n) for n in names)
        shards = []
        for index, (start, end) in enumerate(_rowid_cuts(conn, table, partitions)):
            rows = conn.execute(
                f"SELECT {column_list} FROM {quoted_table}"
                " WHERE rowid >= ? AND rowid < ? ORDER BY rowid",
                (start, end),
            ).fetchall()
            data = {
                name: [
                    _convert_cell(row[i], chosen[name]) for row in rows
                ]
                for i, name in enumerate(names)
            }
            shards.append(
                Table.from_pydict(
                    data,
                    kinds={n: k for n, k in chosen.items() if k is not None},
                    shard_id=f"{prefix}#{index}",
                )
            )
    if not shards:
        # An empty table still has a schema: emit one empty shard.
        with sqlite3.connect(db_path) as conn:
            declared = _declared_kinds(conn, table)
        data = {name: [] for name in declared}
        shards = [
            Table.from_pydict(
                data,
                kinds={
                    n: (overrides.get(n) or declared[n] or ContentsKind.STRING)
                    for n in declared
                },
                shard_id=f"{prefix}#0",
            )
        ]
    return shards


def write_sql(db_path: str, table_name: str, table: Table) -> int:
    """Store a table's member rows into an SQLite table; returns row count.

    Dates are stored as epoch milliseconds in a ``TIMESTAMP`` column, which
    :func:`read_sql` converts back.  An existing table of the same name is
    replaced — the analogue of Hillview's save-table operation writing a
    fresh partition (§5.4).
    """
    schema = table.schema
    columns = ", ".join(
        f"{_quote_identifier(d.name)} {declared_type_for_kind(d.kind)}"
        for d in schema
    )
    rows = table.members.indices()
    column_objects = [table.column(name) for name in schema.names]
    kinds = [d.kind for d in schema]

    def encode(value: object | None, kind: ContentsKind) -> object | None:
        if value is None:
            return None
        if kind is ContentsKind.DATE:
            return datetime_to_millis(value)  # type: ignore[arg-type]
        return value

    with sqlite3.connect(db_path) as conn:
        quoted = _quote_identifier(table_name)
        conn.execute(f"DROP TABLE IF EXISTS {quoted}")
        conn.execute(f"CREATE TABLE {quoted} ({columns})")
        placeholders = ", ".join("?" for _ in schema.names)
        conn.executemany(
            f"INSERT INTO {quoted} VALUES ({placeholders})",
            (
                tuple(
                    encode(col.value(int(row)), kind)
                    for col, kind in zip(column_objects, kinds)
                )
                for row in rows
            ),
        )
        conn.commit()
    return len(rows)


def snapshot_fingerprint(db_path: str, table: str) -> tuple[int, int, int]:
    """A cheap fingerprint of the table's current contents.

    ``(row count, max rowid, sum of rowids)`` — changes whenever rows are
    inserted or deleted.  In-place updates are not detected; as §2 states,
    the storage layer is expected to provide snapshots or pause writes while
    Hillview runs, and this check is a guard rail, not a proof.
    """
    quoted = _quote_identifier(table)
    with sqlite3.connect(db_path) as conn:
        row = conn.execute(
            f"SELECT count(*), coalesce(max(rowid), 0), coalesce(total(rowid), 0)"
            f" FROM {quoted}"
        ).fetchone()
    return int(row[0]), int(row[1]), int(row[2])
