"""Syslog (RFC 5424-style) log reader (§6: "various log formats").

Parses lines of the form::

    <PRI>1 2019-03-01T12:00:00Z host app procid msgid - message text

into a table with Timestamp, Facility, Severity, Host, App, ProcId and
Message columns — the kind of server-log data the paper's introduction
motivates (§3.1: 50 servers logging 100 columns generate a trillion cells
in 46 months).
"""

from __future__ import annotations

import re
from datetime import datetime, timezone

from repro.errors import StorageError
from repro.table.column import column_from_values
from repro.table.schema import ContentsKind
from repro.table.table import Table

SEVERITIES = (
    "emerg",
    "alert",
    "crit",
    "err",
    "warning",
    "notice",
    "info",
    "debug",
)

_LINE = re.compile(
    r"^<(?P<pri>\d{1,3})>(?P<version>\d+)\s+"
    r"(?P<timestamp>\S+)\s+(?P<host>\S+)\s+(?P<app>\S+)\s+"
    r"(?P<procid>\S+)\s+(?P<msgid>\S+)\s+(?:-\s+)?(?P<message>.*)$"
)


def _parse_timestamp(text: str) -> datetime | None:
    if text == "-":
        return None
    text = text.replace("Z", "+00:00")
    try:
        parsed = datetime.fromisoformat(text)
    except ValueError:
        return None
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.astimezone(timezone.utc)


def parse_syslog_line(line: str) -> dict[str, object | None]:
    """Parse one RFC 5424-style line into a record dict."""
    match = _LINE.match(line)
    if match is None:
        raise StorageError(f"unparseable syslog line: {line[:80]!r}")
    pri = int(match.group("pri"))
    return {
        "Timestamp": _parse_timestamp(match.group("timestamp")),
        "Facility": pri >> 3,
        "Severity": SEVERITIES[pri & 0x7],
        "Host": _dash_none(match.group("host")),
        "App": _dash_none(match.group("app")),
        "ProcId": _dash_none(match.group("procid")),
        "Message": match.group("message"),
    }


def _dash_none(token: str) -> str | None:
    return None if token == "-" else token


_KINDS = {
    "Timestamp": ContentsKind.DATE,
    "Facility": ContentsKind.INTEGER,
    "Severity": ContentsKind.CATEGORY,
    "Host": ContentsKind.CATEGORY,
    "App": ContentsKind.CATEGORY,
    "ProcId": ContentsKind.STRING,
    "Message": ContentsKind.STRING,
}


def read_syslog(path: str, shard_id: str | None = None) -> Table:
    """Read an RFC 5424-style log file into a :class:`Table`."""
    records = []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if line:
                records.append(parse_syslog_line(line))
    if not records:
        raise StorageError(f"{path}: empty log file")
    columns = [
        column_from_values(name, [r[name] for r in records], kind)
        for name, kind in _KINDS.items()
    ]
    return Table(columns, shard_id=shard_id or path)


def format_syslog_row(
    timestamp: datetime,
    host: str,
    app: str,
    severity: str,
    message: str,
    facility: int = 1,
    procid: str = "-",
) -> str:
    """Format one RFC 5424-style line (used by the log generator)."""
    pri = (facility << 3) | SEVERITIES.index(severity)
    stamp = timestamp.astimezone(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")
    return f"<{pri}>1 {stamp} {host} {app} {procid} - - {message}"
