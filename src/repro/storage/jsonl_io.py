"""JSON-lines reading and writing (§2: "JSON files").

Each line is one JSON object; the schema is the union of keys across
objects, with kinds inferred from the JSON values (ISO-formatted strings
become dates, mirroring the CSV reader).
"""

from __future__ import annotations

import json
from datetime import datetime

from repro.errors import StorageError
from repro.storage.csv_io import parse_date
from repro.table.column import column_from_values
from repro.table.schema import ContentsKind
from repro.table.table import Table


def read_jsonl(path: str, shard_id: str | None = None) -> Table:
    """Read a JSON-lines file into a :class:`Table`."""
    records: list[dict] = []
    with open(path) as f:
        for line_number, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise StorageError(f"{path}:{line_number}: invalid JSON: {exc}")
            if not isinstance(record, dict):
                raise StorageError(
                    f"{path}:{line_number}: expected a JSON object, "
                    f"got {type(record).__name__}"
                )
            records.append(record)
    if not records:
        raise StorageError(f"{path}: empty JSON-lines file")
    names: list[str] = []
    for record in records:
        for key in record:
            if key not in names:
                names.append(key)
    columns = []
    for name in names:
        values = [_coerce(record.get(name)) for record in records]
        columns.append(column_from_values(name, values))
    return Table(columns, shard_id=shard_id or path)


def _coerce(value: object | None) -> object | None:
    if isinstance(value, str):
        parsed = parse_date(value)
        if parsed is not None:
            return parsed
    if isinstance(value, bool):
        return int(value)
    return value


def write_jsonl(table: Table, path: str) -> int:
    """Write the member rows of ``table`` as JSON lines; returns row count."""
    rows = table.members.indices()
    names = table.column_names
    columns = [table.column(name) for name in names]
    with open(path, "w") as f:
        for row in rows:
            record = {}
            for name, column in zip(names, columns):
                value = column.value(int(row))
                if isinstance(value, datetime):
                    value = value.strftime("%Y-%m-%dT%H:%M:%S")
                record[name] = value
            f.write(json.dumps(record) + "\n")
    return len(rows)


def infer_jsonl_kinds(table: Table) -> dict[str, ContentsKind]:
    """The inferred kinds of a table read from JSON lines (introspection)."""
    return {desc.name: desc.kind for desc in table.schema}
