"""CSV reading and writing with type inference (§3.5).

CSV files carry no schema, so the reader infers column kinds by attempting,
in order: integer, double, ISO date, string.  Empty cells and the tokens in
``MISSING_TOKENS`` are missing values.  An explicit ``kinds`` mapping
overrides inference per column.
"""

from __future__ import annotations

import csv
from datetime import datetime, timezone

from repro.errors import StorageError
from repro.table.column import column_from_values
from repro.table.schema import ContentsKind
from repro.table.table import Table

#: Cell contents treated as missing values.
MISSING_TOKENS = frozenset({"", "NA", "N/A", "NaN", "nan", "null", "NULL", "None"})

_DATE_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d",
    "%Y/%m/%d",
)


def parse_date(text: str) -> datetime | None:
    """Parse an ISO-like date string, returning None when it is not one."""
    for fmt in _DATE_FORMATS:
        try:
            return datetime.strptime(text, fmt).replace(tzinfo=timezone.utc)
        except ValueError:
            continue
    return None


def _infer_column_kind(cells: list[str | None]) -> ContentsKind:
    kind = ContentsKind.INTEGER
    saw_value = False
    for cell in cells:
        if cell is None:
            continue
        saw_value = True
        if kind is ContentsKind.INTEGER:
            try:
                int(cell)
                continue
            except ValueError:
                kind = ContentsKind.DOUBLE
        if kind is ContentsKind.DOUBLE:
            try:
                float(cell)
                continue
            except ValueError:
                kind = ContentsKind.DATE
        if kind is ContentsKind.DATE:
            if parse_date(cell) is not None:
                continue
            kind = ContentsKind.STRING
        if kind is ContentsKind.STRING:
            break
    return kind if saw_value else ContentsKind.STRING


def _convert(
    cell: str | None, kind: ContentsKind, declared: bool = False
) -> object | None:
    if cell is None:
        return None
    if kind is ContentsKind.STRING and declared:
        # Only the empty cell is missing for a *declared* string column:
        # tokens like "NaN" are legitimate values there, and mapping them
        # to missing would silently corrupt write/read round-trips.
        # Inferred string columns keep the historical token semantics.
        return cell if cell != "" else None
    if cell in MISSING_TOKENS:
        return None
    try:
        if kind is ContentsKind.INTEGER:
            return int(cell)
        if kind is ContentsKind.DOUBLE:
            return float(cell)
        if kind is ContentsKind.DATE:
            parsed = parse_date(cell)
            if parsed is None:
                raise ValueError(cell)
            return parsed
    except ValueError as exc:
        raise StorageError(f"cannot parse {cell!r} as {kind.value}") from exc
    return cell


def read_csv(
    path: str,
    kinds: dict[str, ContentsKind] | None = None,
    delimiter: str = ",",
    shard_id: str | None = None,
) -> Table:
    """Read a CSV file with a header row into a :class:`Table`."""
    kinds = kinds or {}
    with open(path, newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise StorageError(f"{path}: empty CSV file")
        raw_columns: list[list[str | None]] = [[] for _ in header]
        for line_number, row in enumerate(reader, start=2):
            if len(row) != len(header):
                raise StorageError(
                    f"{path}:{line_number}: expected {len(header)} cells, "
                    f"got {len(row)}"
                )
            for i, cell in enumerate(row):
                raw_columns[i].append(cell)
    columns = []
    for name, cells in zip(header, raw_columns):
        # Kind inference treats every missing token as absent (the mask
        # is only built when inference actually runs); the per-cell
        # conversion below is kind-aware (declared string columns keep
        # tokens like "NaN" as values).
        declared = kinds.get(name)
        kind = declared or _infer_column_kind(
            [None if c in MISSING_TOKENS else c for c in cells]
        )
        values = [
            _convert(cell, kind, declared=declared is not None)
            for cell in cells
        ]
        columns.append(column_from_values(name, values, kind))
    return Table(columns, shard_id=shard_id or path)


def _format_cell(value: object | None) -> str:
    if value is None:
        return ""
    if isinstance(value, datetime):
        if (value.hour, value.minute, value.second) == (0, 0, 0):
            return value.strftime("%Y-%m-%d")
        return value.strftime("%Y-%m-%d %H:%M:%S")
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return repr(value)
    return str(value)


def write_csv(table: Table, path: str, delimiter: str = ",") -> int:
    """Write the member rows of ``table`` as CSV; returns rows written."""
    rows = table.members.indices()
    names = table.column_names
    columns = [table.column(name) for name in names]
    with open(path, "w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(names)
        for row in rows:
            writer.writerow(
                [_format_cell(column.value(int(row))) for column in columns]
            )
    return len(rows)
