"""The ``hvc`` columnar binary format (stand-in for Parquet/ORC).

The real Hillview reads columnar formats like Parquet and ORC through
third-party libraries; this environment has none, so the reproduction
defines its own simple columnar container with the properties the paper
relies on:

* column-oriented layout: a reader can load a single column without
  touching the others (fast sequential, columnar access — §5.4);
* dictionary-encoded strings;
* an explicit missing-value bitmap;
* immutable files with a snapshot manifest so changing data under a
  running engine is detected (§2 requirement 2).

Layout: magic ``HVC1`` followed by Encoder-framed sections: schema JSON,
row count, then per column a self-describing block.  A directory dataset is
``part-*.hvc`` files plus ``_schema.json`` and ``_snapshot.json``.
"""

from __future__ import annotations

import glob
import json
import mmap
import os

import numpy as np

from repro.core.serialization import Decoder, Encoder
from repro.errors import SnapshotViolationError, StorageError
from repro.table.column import (
    Column,
    DateColumn,
    DoubleColumn,
    IntColumn,
    StringColumn,
)
from repro.table.dictionary import StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind, Schema
from repro.table.table import Table

MAGIC = b"HVC1"


def mmap_enabled() -> bool:
    """Memory-mapped shard reads are on unless ``REPRO_MMAP=0``.

    Mapped partitions share the kernel page cache across worker processes
    and decode numeric columns zero-copy; the heap path stays available as
    an escape hatch and a differential baseline.
    """
    return os.environ.get("REPRO_MMAP", "1") != "0"


def _encode_column(enc: Encoder, column: Column, rows: np.ndarray) -> None:
    enc.write_str(column.name)
    enc.write_str(column.kind.value)
    if isinstance(column, StringColumn):
        values = column.string_values(rows)
        dictionary = StringDictionary()
        codes = dictionary.encode_values(values)
        enc.write_str_list(dictionary.values)
        enc.write_array(codes)
        return
    data = column.data[rows]  # type: ignore[attr-defined]
    missing = column.missing_mask()[rows]
    enc.write_array(data)
    enc.write_bool(bool(missing.any()))
    if missing.any():
        enc.write_array(missing)


def _decode_column(dec: Decoder) -> Column:
    name = dec.read_str()
    kind_text = dec.read_str()
    if name is None or kind_text is None:
        raise StorageError("corrupt column header")
    kind = ContentsKind(kind_text)
    desc = ColumnDescription(name, kind)
    if kind.is_string:
        dictionary = StringDictionary(s or "" for s in dec.read_str_list())
        codes = dec.read_array()
        return StringColumn(desc, codes, dictionary)
    data = dec.read_array()
    missing = dec.read_array() if dec.read_bool() else None
    if kind is ContentsKind.INTEGER:
        return IntColumn(desc, data, missing)
    if kind is ContentsKind.DOUBLE:
        return DoubleColumn(desc, data, missing)
    return DateColumn(desc, data, missing)


def table_to_bytes(table: Table) -> bytes:
    """Encode the member rows of ``table`` as one in-memory hvc payload.

    The same encoding :func:`write_table` puts on disk; also the wire
    format shard slices travel in when an elastic fleet rebalances
    (``transferShards``/``adoptShards`` between worker daemons).
    """
    enc = Encoder()
    enc.write_str(table.schema.to_json_string())
    rows = table.members.indices()
    enc.write_uvarint(len(rows))
    for name in table.column_names:
        _encode_column(enc, table.column(name), rows)
    return MAGIC + enc.to_bytes()


def table_from_bytes(
    payload, shard_id: str | None = None, zero_copy: bool = False
) -> Table:
    """Decode a :func:`table_to_bytes` payload.

    ``payload`` may be ``bytes`` or any buffer (e.g. a ``memoryview`` of a
    mapped file).  With ``zero_copy`` the numeric column arrays remain
    views into the buffer, which stays pinned through their ``.base``.
    """
    where = shard_id or "<memory>"
    if len(payload) < 4 or bytes(payload[:4]) != MAGIC:
        raise StorageError(f"{where}: not an hvc payload (bad magic)")
    dec = Decoder(payload[4:], zero_copy=zero_copy)
    schema_json = dec.read_str()
    if schema_json is None:
        raise StorageError(f"{where}: missing schema")
    schema = Schema.from_json_string(schema_json)
    num_rows = dec.read_uvarint()
    columns = [_decode_column(dec) for _ in range(len(schema))]
    for column in columns:
        if column.size != num_rows:
            raise StorageError(
                f"{where}: column {column.name!r} has {column.size} rows, "
                f"header says {num_rows}"
            )
    return Table(columns, shard_id=shard_id)


def write_table(table: Table, path: str) -> int:
    """Write the member rows of ``table`` to ``path``; returns bytes written."""
    payload = table_to_bytes(table)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as f:
        f.write(payload)
    os.replace(tmp_path, path)  # atomic: readers never see partial files
    return len(payload)


def read_table(
    path: str, shard_id: str | None = None, use_mmap: bool | None = None
) -> Table:
    """Read a table written by :func:`write_table`.

    By default (see :func:`mmap_enabled`) the file is memory-mapped
    read-only and numeric columns decode as zero-copy views over the map:
    worker processes reading the same partitions share one set of page
    frames, and cold reads fault in only the pages a sketch touches.
    ``use_mmap=False`` (or ``REPRO_MMAP=0``) forces the heap path.
    """
    if use_mmap is None:
        use_mmap = mmap_enabled()
    name = shard_id or os.path.basename(path)
    with open(path, "rb") as f:
        if not use_mmap:
            return table_from_bytes(f.read(), shard_id=name)
        if os.fstat(f.fileno()).st_size == 0:
            raise StorageError(f"{name}: not an hvc payload (bad magic)")
        mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    # The file descriptor can close now: the map (and the arrays viewing
    # it) keep the pages alive until the table is garbage collected.
    return table_from_bytes(memoryview(mapped), shard_id=name, zero_copy=True)


def write_dataset(tables: list[Table], directory: str) -> list[str]:
    """Write ``tables`` as a partitioned dataset directory with a manifest."""
    if not tables:
        raise StorageError("cannot write an empty dataset")
    schema = tables[0].schema
    for t in tables[1:]:
        if t.schema != schema:
            raise StorageError("dataset partitions must share a schema")
    os.makedirs(directory, exist_ok=True)
    paths = []
    manifest = {}
    for i, table in enumerate(tables):
        filename = f"part-{i:05d}.hvc"
        path = os.path.join(directory, filename)
        size = write_table(table, path)
        paths.append(path)
        manifest[filename] = size
    with open(os.path.join(directory, "_schema.json"), "w") as f:
        f.write(schema.to_json_string())
    with open(os.path.join(directory, "_snapshot.json"), "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
    return paths


def write_manifest(directory: str, files: list[str] | None = None) -> str:
    """Write the ``_snapshot.json`` manifest for partitions already on disk.

    The save vizketch writes one partition per shard at the leaves; the root
    finalizes the dataset by recording the snapshot manifest once all
    partitions have landed (their merged :class:`SaveStatus` lists them).
    With ``files`` omitted, every ``part-*.hvc`` in the directory is listed.
    """
    if files is None:
        files = sorted(glob.glob(os.path.join(directory, "part-*.hvc")))
    if not files:
        raise StorageError(f"{directory}: no partitions to snapshot")
    manifest = {os.path.basename(p): os.path.getsize(p) for p in files}
    path = os.path.join(directory, "_snapshot.json")
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
    return path


def dataset_manifest(directory: str) -> dict:
    """The ``_snapshot.json`` manifest of a dataset directory."""
    manifest_path = os.path.join(directory, "_snapshot.json")
    try:
        with open(manifest_path) as f:
            return json.load(f)
    except FileNotFoundError:
        raise StorageError(f"{directory}: not a dataset (missing _snapshot.json)")


def verify_partition(directory: str, filename: str, manifest: dict) -> str:
    """Check one partition against the snapshot manifest; returns its path."""
    path = os.path.join(directory, filename)
    try:
        actual = os.path.getsize(path)
    except OSError:
        raise SnapshotViolationError(f"{path}: partition disappeared")
    if actual != manifest[filename]:
        raise SnapshotViolationError(
            f"{path}: size {actual} != snapshot {manifest[filename]}; "
            "data changed while Hillview was running"
        )
    return path


def read_dataset(
    directory: str,
    verify_snapshot: bool = True,
    use_mmap: bool | None = None,
) -> list[Table]:
    """Read every partition of a dataset directory.

    With ``verify_snapshot`` the partition sizes are checked against the
    manifest written at dataset-creation time; a mismatch means the data
    changed under us, violating the §2 snapshot requirement.
    """
    manifest = dataset_manifest(directory)
    tables = []
    for filename in sorted(manifest):
        path = os.path.join(directory, filename)
        if verify_snapshot:
            verify_partition(directory, filename, manifest)
        tables.append(read_table(path, shard_id=filename, use_mmap=use_mmap))
    return tables
