"""Storage layer: read data repositories without pre-processing (§2, §5.4).

Hillview operates directly on raw, horizontally partitioned data — CSV,
JSON, logs, columnar binary files — with no ingestion, indexing or
repartitioning.  The only requirements are that partitions are roughly
balanced and that data does not change while Hillview runs (snapshot
semantics, enforced here via content fingerprints).
"""

from repro.storage.columnar import (
    read_table,
    write_table,
    read_dataset,
    write_dataset,
)
from repro.storage.csv_io import read_csv, write_csv
from repro.storage.jsonl_io import read_jsonl, write_jsonl
from repro.storage.logs_io import read_syslog, format_syslog_row
from repro.storage.sql_io import read_sql, write_sql, snapshot_fingerprint
from repro.storage.loader import (
    DataSource,
    TableSource,
    CsvSource,
    ColumnarDatasetSource,
    JsonlSource,
    SqlSource,
    SyslogSource,
)

__all__ = [
    "read_table",
    "write_table",
    "read_dataset",
    "write_dataset",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "read_syslog",
    "read_sql",
    "write_sql",
    "snapshot_fingerprint",
    "format_syslog_row",
    "DataSource",
    "TableSource",
    "CsvSource",
    "ColumnarDatasetSource",
    "JsonlSource",
    "SqlSource",
    "SyslogSource",
]
