"""Data sources: how the engine (re)loads partitioned data.

The engine's fault-tolerance story (§5.7) requires every in-memory dataset
to be reconstructible: leaf state is soft, and the root's redo log begins
with a *load* operation.  A :class:`DataSource` is that loadable origin — it
can produce its partitions any number of times, always yielding the same
data (snapshot semantics).
"""

from __future__ import annotations

import glob
import os
from abc import ABC, abstractmethod

from repro.errors import StorageError
from repro.storage import columnar, csv_io, jsonl_io, logs_io, sql_io
from repro.table.table import Table


class DataSource(ABC):
    """A reloadable, immutable, horizontally partitioned data origin."""

    @abstractmethod
    def load(self) -> list[Table]:
        """Load (or re-load) every partition."""

    @abstractmethod
    def spec(self) -> str:
        """Stable description used in redo logs and cache keys."""

    def load_slice(self, index: int, count: int) -> list[Table]:
        """One worker's round-robin share: ``load()[index::count]``.

        The default (:meth:`_load_slice`) loads everything and discards
        the rest; sources whose partitions are individually addressable
        override the hook so each worker process fetches only its own
        share — the load (and every §5.7 lineage replay) then costs 1/N
        per worker instead of N full loads across the fleet.  Overrides
        must return exactly the default's slice: the root's shard
        placement and a worker's self-computed slice have to agree.
        """
        if count < 1 or not 0 <= index < count:
            raise ValueError(f"invalid slice {index}/{count}")
        return self._load_slice(index, count)

    def _load_slice(self, index: int, count: int) -> list[Table]:
        return self.load()[index::count]

    def __repr__(self) -> str:
        return self.spec()


class TableSource(DataSource):
    """In-memory tables, optionally re-sharded into micropartitions.

    ``shards_per_table`` splits each table into micropartitions at load
    time, mirroring the 10–20M-row micropartitions of §5.3.
    """

    _counter = 0

    def __init__(self, tables: list[Table], shards_per_table: int = 1):
        if not tables:
            raise StorageError("TableSource needs at least one table")
        if shards_per_table < 1:
            raise ValueError("shards_per_table must be >= 1")
        self.tables = list(tables)
        self.shards_per_table = shards_per_table
        TableSource._counter += 1
        self._id = TableSource._counter

    def load(self) -> list[Table]:
        if self.shards_per_table == 1:
            return list(self.tables)
        shards = []
        for table in self.tables:
            shards.extend(table.split(self.shards_per_table))
        return shards

    def spec(self) -> str:
        rows = sum(t.num_rows for t in self.tables)
        return f"TableSource(id={self._id},tables={len(self.tables)},rows={rows})"


class CsvSource(DataSource):
    """One partition per CSV file matching ``pattern``."""

    def __init__(self, pattern: str):
        self.pattern = pattern

    def _paths(self) -> list[str]:
        paths = sorted(glob.glob(self.pattern))
        if not paths:
            raise StorageError(f"no CSV files match {self.pattern!r}")
        return paths

    def load(self) -> list[Table]:
        return [csv_io.read_csv(path, shard_id=os.path.basename(path)) for path in self._paths()]

    def _load_slice(self, index: int, count: int) -> list[Table]:
        return [
            csv_io.read_csv(path, shard_id=os.path.basename(path))
            for path in self._paths()[index::count]
        ]

    def spec(self) -> str:
        return f"CsvSource({self.pattern!r})"


class JsonlSource(DataSource):
    """One partition per JSON-lines file matching ``pattern``."""

    def __init__(self, pattern: str):
        self.pattern = pattern

    def _paths(self) -> list[str]:
        paths = sorted(glob.glob(self.pattern))
        if not paths:
            raise StorageError(f"no JSON-lines files match {self.pattern!r}")
        return paths

    def load(self) -> list[Table]:
        return [
            jsonl_io.read_jsonl(path, shard_id=os.path.basename(path))
            for path in self._paths()
        ]

    def _load_slice(self, index: int, count: int) -> list[Table]:
        return [
            jsonl_io.read_jsonl(path, shard_id=os.path.basename(path))
            for path in self._paths()[index::count]
        ]

    def spec(self) -> str:
        return f"JsonlSource({self.pattern!r})"


class SyslogSource(DataSource):
    """One partition per log file matching ``pattern``."""

    def __init__(self, pattern: str):
        self.pattern = pattern

    def _paths(self) -> list[str]:
        paths = sorted(glob.glob(self.pattern))
        if not paths:
            raise StorageError(f"no log files match {self.pattern!r}")
        return paths

    def load(self) -> list[Table]:
        return [
            logs_io.read_syslog(path, shard_id=os.path.basename(path))
            for path in self._paths()
        ]

    def _load_slice(self, index: int, count: int) -> list[Table]:
        return [
            logs_io.read_syslog(path, shard_id=os.path.basename(path))
            for path in self._paths()[index::count]
        ]

    def spec(self) -> str:
        return f"SyslogSource({self.pattern!r})"


class SqlSource(DataSource):
    """An SQLite table read as horizontally partitioned shards (§2).

    The source captures a content fingerprint at construction; every
    (re)load verifies it, enforcing the §2 requirement that data not change
    while Hillview is running.  ``partitions`` splits the table into rowid
    ranges so the engine can assign them across workers.
    """

    def __init__(
        self,
        db_path: str,
        table: str,
        partitions: int = 1,
        verify_snapshot: bool = True,
    ):
        self.db_path = db_path
        self.table = table
        self.partitions = partitions
        self.verify_snapshot = verify_snapshot
        self._fingerprint = sql_io.snapshot_fingerprint(db_path, table)

    def load(self) -> list[Table]:
        if self.verify_snapshot:
            current = sql_io.snapshot_fingerprint(self.db_path, self.table)
            if current != self._fingerprint:
                raise StorageError(
                    f"SQL table {self.table!r} changed while Hillview was "
                    f"running (fingerprint {self._fingerprint} -> {current}); "
                    "use a snapshot or pause writes (paper §2)"
                )
        return sql_io.read_sql(self.db_path, self.table, self.partitions)

    def spec(self) -> str:
        return (
            f"SqlSource({self.db_path!r},{self.table!r},"
            f"partitions={self.partitions})"
        )


class ColumnarDatasetSource(DataSource):
    """A partitioned ``hvc`` dataset directory with snapshot verification."""

    def __init__(self, directory: str, verify_snapshot: bool = True):
        self.directory = directory
        self.verify_snapshot = verify_snapshot

    def load(self) -> list[Table]:
        return columnar.read_dataset(self.directory, self.verify_snapshot)

    def _load_slice(self, index: int, count: int) -> list[Table]:
        # Partitions are individually addressable, so a worker maps only
        # its round-robin share of the files (same order as load()).
        manifest = columnar.dataset_manifest(self.directory)
        tables = []
        for filename in sorted(manifest)[index::count]:
            path = os.path.join(self.directory, filename)
            if self.verify_snapshot:
                columnar.verify_partition(self.directory, filename, manifest)
            tables.append(columnar.read_table(path, shard_id=filename))
        return tables

    def spec(self) -> str:
        return f"ColumnarDatasetSource({self.directory!r})"
