"""The REST dataset connector: OData-style reads over published datasets.

Spreadsheet add-ins and BI tools speak paged-row REST, not progressive
WebSocket streams.  This connector bridges the two worlds: datasets are
*published* under stable ids, and three read endpoints answer from the
same vizketch machinery the interactive UI uses —

* ``$metadata`` — the schema document (column names/kinds + row count),
  from the ``schema``/``rowCount`` RPC methods;
* ``rows?$top=N&$skip=M`` — a page of distinct sorted rows with
  repetition counts, served by the ``nextK`` sketch (fetch the first
  ``skip + top`` rows, return the slice);
* ``sample?count=N`` — a server-generated sample view: evenly spaced
  rows from the ``quantile`` sketch's uniform sample, so a connector can
  preview a trillion-cell table with one bounded query.

Everything here is *blocking* by design: the gateway's asyncio loop calls
it through ``run_in_executor``, and tests can drive it directly.  Queries
execute on the connector's own service session (resolved per call, so
idle-TTL sweeps and session expiry are survived transparently via the
session manager's store-resume path), through the transport-free
:meth:`~repro.engine.web.WebServer.execute` facade — REST reads are
synchronous request/response and must not preempt each other the way
interactive sketches do under newest-query-wins.
"""

from __future__ import annotations

import itertools
import threading

from repro.engine.rpc import RpcReply, RpcRequest
from repro.errors import HillviewError
from repro.obs.trace import TraceContext
from repro.service.sessions import Session, SessionManager

#: ``$top`` defaults and bounds: a page is a rendering, not an export.
DEFAULT_TOP = 100
MAX_TOP = 10_000
#: ``$skip + $top`` may not exceed this (nextK materializes the prefix).
MAX_WINDOW = 100_000
#: ``sample?count=`` bound.
MAX_SAMPLE = 10_000


class ConnectorError(HillviewError):
    """A connector-level failure; ``code`` picks the HTTP status."""

    code = "bad_request"

    def __init__(self, message: str, code: str = "bad_request"):
        super().__init__(message)
        self.code = code


class DatasetConnector:
    """Published datasets + OData-style reads over one service session."""

    def __init__(
        self,
        sessions: SessionManager,
        session_id: str = "gateway-connector",
        query_timeout_seconds: float = 120.0,
    ):
        self.sessions = sessions
        self.session_id = session_id
        self.query_timeout_seconds = query_timeout_seconds
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        #: dataset id -> the source spec that rebuilds it.  The spec, not
        #: the handle, is durable: sessions are soft state, so the handle
        #: is re-minted lazily whenever the backing session is reborn.
        self._published: dict[str, dict] = {}
        #: dataset id -> (session incarnation, handle) — valid only while
        #: the session object is the same one the handle was minted on.
        self._handles: dict[str, tuple[Session, str]] = {}

    # -- session + query plumbing --------------------------------------
    def _session(self) -> Session:
        return self.sessions.get_or_create(self.session_id)

    def _run(
        self,
        session: Session,
        method: str,
        target: str = "",
        args: dict | None = None,
        trace: TraceContext | None = None,
    ) -> RpcReply:
        """Execute one request to its terminal reply; raise on error."""
        request = RpcRequest(next(self._ids), target, method, args or {})
        if trace is not None:
            request.trace = trace.to_json()
        terminal: RpcReply | None = None
        for reply in session.web.execute(request):
            session.record_reply(reply)
            terminal = reply
        assert terminal is not None  # execute always yields a terminal
        if terminal.kind == "error":
            raise ConnectorError(
                str(terminal.error), code=terminal.code or "engine"
            )
        return terminal

    # -- publication ----------------------------------------------------
    def publish(self, name: str, source: dict | None = None) -> dict:
        """Publish ``source`` (``{}`` = the server default) under ``name``."""
        if not name or "/" in name:
            raise ConnectorError(f"invalid dataset name {name!r}")
        spec = source if isinstance(source, dict) else {}
        with self._lock:
            self._published[name] = spec
            self._handles.pop(name, None)
        session, handle = self._resolve(name)
        count = self._run(session, "rowCount", target=handle)
        return {"dataset": name, "rows": count.payload["rows"]}

    def unpublish(self, name: str) -> bool:
        with self._lock:
            self._handles.pop(name, None)
            return self._published.pop(name, None) is not None

    def datasets(self) -> list[str]:
        with self._lock:
            return sorted(self._published)

    def _resolve(self, name: str) -> tuple[Session, str]:
        """The (session, handle) pair for a published dataset, re-loading
        through the session's source resolver when the session has been
        reborn since the handle was minted."""
        with self._lock:
            spec = self._published.get(name)
        if spec is None:
            raise ConnectorError(
                f"no published dataset {name!r}", code="not_found"
            )
        session = self._session()
        with self._lock:
            cached = self._handles.get(name)
            if cached is not None and cached[0] is session:
                return cached
        reply = self._run(session, "load", args={"source": spec})
        resolved = (session, str(reply.payload["handle"]))
        with self._lock:
            self._handles[name] = resolved
        return resolved

    # -- reads ----------------------------------------------------------
    def metadata(self, name: str, trace: TraceContext | None = None) -> dict:
        """The ``$metadata`` schema document."""
        session, handle = self._resolve(name)
        schema = self._run(session, "schema", target=handle, trace=trace)
        count = self._run(session, "rowCount", target=handle, trace=trace)
        return {
            "dataset": name,
            "rows": count.payload["rows"],
            "columns": schema.payload["columns"],
        }

    def _order_spec(
        self, session: Session, handle: str, orderby: str | None
    ) -> list[dict]:
        """``$orderby`` ("Col" / "Col desc" / comma list) as a wire order.

        Without ``$orderby`` the order is the full schema, ascending — the
        row tuples then carry every column, which is what a tabular
        connector wants from ``rows``.
        """
        columns = self._run(session, "schema", target=handle).payload["columns"]
        known = {c["name"] for c in columns}
        if not orderby:
            return [
                {"column": c["name"], "ascending": True} for c in columns
            ]
        order: list[dict] = []
        for part in orderby.split(","):
            words = part.strip().split()
            if not words or len(words) > 2:
                raise ConnectorError(f"malformed $orderby clause {part!r}")
            column = words[0]
            if column not in known:
                raise ConnectorError(f"unknown $orderby column {column!r}")
            ascending = True
            if len(words) == 2:
                if words[1].lower() not in ("asc", "desc"):
                    raise ConnectorError(
                        f"$orderby direction must be asc/desc, got {words[1]!r}"
                    )
                ascending = words[1].lower() == "asc"
            order.append({"column": column, "ascending": ascending})
        return order

    def rows(
        self,
        name: str,
        top: int = DEFAULT_TOP,
        skip: int = 0,
        orderby: str | None = None,
        trace: TraceContext | None = None,
    ) -> dict:
        """One page of distinct sorted rows (``$top``/``$skip`` paging)."""
        top = int(top)
        skip = int(skip)
        if top < 1 or top > MAX_TOP:
            raise ConnectorError(f"$top must be in [1, {MAX_TOP}]")
        if skip < 0 or skip + top > MAX_WINDOW:
            raise ConnectorError(
                f"$skip + $top may not exceed {MAX_WINDOW}"
            )
        session, handle = self._resolve(name)
        order = self._order_spec(session, handle, orderby)
        reply = self._run(
            session,
            "sketch",
            target=handle,
            args={"sketch": {"type": "nextK", "order": order, "k": skip + top}},
            trace=trace,
        )
        payload = reply.payload
        all_rows = payload["rows"]
        page = {
            "dataset": name,
            "columns": [o["column"] for o in order],
            "rows": all_rows[skip : skip + top],
            "counts": payload["counts"][skip : skip + top],
            "skip": skip,
            "top": top,
            "scanned": payload["scanned"],
        }
        if len(all_rows) == skip + top:
            # The window was full, so more distinct rows may follow.
            page["nextSkip"] = skip + top
        return page

    def sample(
        self,
        name: str,
        count: int = 100,
        seed: int = 0,
        orderby: str | None = None,
        trace: TraceContext | None = None,
    ) -> dict:
        """A server-generated sample view: ``count`` evenly spaced rows
        from the quantile sketch's uniform sample."""
        count = int(count)
        if count < 1 or count > MAX_SAMPLE:
            raise ConnectorError(f"count must be in [1, {MAX_SAMPLE}]")
        session, handle = self._resolve(name)
        order = self._order_spec(session, handle, orderby)
        total = self._run(session, "rowCount", target=handle).payload["rows"]
        # Oversample 4x so decimation inside the sketch still leaves at
        # least ``count`` rows to space the view across; rate 1.0 on
        # small datasets degrades to "every row, then thin".
        rate = min(1.0, (4.0 * count) / total) if total else 1.0
        reply = self._run(
            session,
            "sketch",
            target=handle,
            args={
                "sketch": {
                    "type": "quantile",
                    "order": order,
                    "rate": rate,
                    "seed": int(seed),
                }
            },
            trace=trace,
        )
        samples = reply.payload["samples"]
        if len(samples) > count:
            step = len(samples) / count
            samples = [samples[int(i * step)] for i in range(count)]
        return {
            "dataset": name,
            "columns": [o["column"] for o in order],
            "rows": samples,
            "requested": count,
            "scanned": reply.payload["scanned"],
        }
