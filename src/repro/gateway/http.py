"""Minimal HTTP/1.1 on asyncio streams — just enough for the gateway.

The container philosophy of this repo is "no new dependencies": the
gateway speaks HTTP with the same stdlib-only discipline as the uvarint
wires.  This module owns the byte-level protocol — request parsing,
response formatting, keep-alive — and nothing else; routing and handlers
live in :mod:`repro.gateway.server`.

Scope is deliberate: requests are bounded (no chunked request bodies,
no multipart), responses always carry ``Content-Length``, and HTTP/1.1
keep-alive is honored (``Connection: close`` or HTTP/1.0 closes).  That
covers curl, browsers, spreadsheet connectors, and the WebSocket upgrade
— the only clients this front door exists for.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import HillviewError

#: Request line + headers may not exceed this (defense against a client
#: that never sends the blank line).
MAX_HEADER_BYTES = 64 * 1024

#: Request bodies are JSON control messages, never bulk data.
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    426: "Upgrade Required",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    101: "Switching Protocols",
}


class HttpError(HillviewError):
    """A malformed or oversized HTTP request (maps to a 4xx response)."""

    code = "bad_request"

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split path, headers, body."""

    method: str
    target: str  # the raw request target, e.g. "/datasets/a/rows?$top=5"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    http_version: str = "HTTP/1.1"

    @property
    def path(self) -> str:
        """The decoded path without the query string."""
        return unquote(urlsplit(self.target).path)

    @property
    def query(self) -> dict[str, str]:
        """Query parameters, last value winning (OData params are scalar)."""
        parsed = parse_qs(urlsplit(self.target).query, keep_blank_values=True)
        return {key: values[-1] for key, values in parsed.items()}

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.http_version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def json_body(self) -> dict:
        """The body as a JSON object; ``{}`` when empty."""
        if not self.body:
            return {}
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(f"request body is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise HttpError("request body must be a JSON object")
        return data

    def is_websocket_upgrade(self) -> bool:
        return (
            "websocket" in self.headers.get("upgrade", "").lower()
            and "upgrade" in self.headers.get("connection", "").lower()
        )


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Read one request; ``None`` on clean EOF before any bytes."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError("connection closed inside the request head")
    except asyncio.LimitOverrunError:
        raise HttpError("request head too large", status=413)
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError("request head too large", status=413)
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(f"malformed request line: {lines[0]!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(f"unsupported HTTP version {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError("malformed Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError("connection closed inside the request body")
    elif headers.get("transfer-encoding"):
        raise HttpError("chunked request bodies are not supported")
    return HttpRequest(
        method=method.upper(),
        target=target,
        headers=headers,
        body=body,
        http_version=version,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: "list[tuple[str, str]] | None" = None,
    keep_alive: bool = True,
) -> bytes:
    """One complete response, ``Content-Length`` framed."""
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if status != 101:
        lines.append(f"Content-Length: {len(body)}")
        if body:
            lines.append(f"Content-Type: {content_type}")
        lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in extra_headers or []:
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def json_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    extra_headers: "list[tuple[str, str]] | None" = None,
) -> bytes:
    """A JSON response with sorted keys (stable bytes for tests and docs)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(
        status, body, keep_alive=keep_alive, extra_headers=extra_headers
    )


def error_response(
    status: int, code: str, message: str, keep_alive: bool = True
) -> bytes:
    """The gateway's uniform HTTP error shape (see docs/GATEWAY_API.md)."""
    return json_response(
        status, {"error": message, "code": code}, keep_alive=keep_alive
    )
