"""The gateway's versioned protocol surface: versions, features, negotiation.

The browser-facing wire must outlive any single deployment: a mixed-version
root fleet rolls upgrades while millions of sessions stay connected, so
every WebSocket connection opens with an explicit handshake —

* the server announces ``protocolVersion`` (what it speaks today),
  ``minSupported`` (the oldest client it still accepts) and its feature
  flags;
* the client answers with *its* version and the features it wants;
* the server pins the connection to ``min(server, client)`` and downgrades
  every feature the negotiated version does not carry.

A client older than ``minSupported`` is rejected with the
``unsupported_protocol`` error code before any session state exists; a
client *newer* than the server simply runs at the server's version (its
extra features are reported off).  Versions are small integers, bumped
when the message schema changes; features gate behavior *within* a
version, so a fleet can also roll a feature out (or back) without a
version bump.  The normative spec lives in ``docs/GATEWAY_API.md``, whose
feature table is checked against :data:`FEATURES` by ``tests/test_docs.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HillviewError

#: What this build speaks.  Version 1 was the plain streamed-envelope
#: wire; version 2 added resumable streams (sequence-numbered replies
#: with replay on reconnect) and application-level heartbeats.
PROTOCOL_VERSION = 2

#: The oldest client protocol version this server still serves.
MIN_SUPPORTED = 1

#: Feature flag -> the protocol version that introduced it.  A feature is
#: available on a connection iff its introducing version is <= the
#: negotiated version *and* the client did not switch it off.
FEATURES: dict[str, int] = {
    #: Terminal sketch replies carry the ``cache`` telemetry field.
    "cache_telemetry": 1,
    #: ``args: {"profile": true}`` returns per-stage query profiles.
    "profile": 1,
    #: Envelopes may carry a ``trace`` context (and HTTP requests a
    #: ``traceparent`` header) that the fleet propagates end to end.
    "trace_context": 1,
    #: Replies carry per-request ``seq`` numbers and a dropped connection
    #: can resume its streams by presenting the last seq it saw.
    "ws_resume": 2,
    #: The server emits application-level heartbeat messages.
    "ws_heartbeat": 2,
}

#: Gateway-surface error codes (beyond the wire codes shared with the
#: TCP protocol — see ``WIRE_ERROR_CODES`` in :mod:`repro.engine.rpc`).
GATEWAY_ERROR_CODES: dict[str, str] = {
    "unsupported_protocol": (
        "the client's protocolVersion is below the server's minSupported; "
        "the connection is closed after the error message"
    ),
    "bad_handshake": (
        "the first WebSocket message was not a well-formed hello"
    ),
    "stream_expired": (
        "a resumed stream is no longer in the replay ledger and its "
        "request can no longer be restarted; re-issue the query"
    ),
    "not_found": "the HTTP path or published dataset id does not exist",
    "bad_request": "the HTTP request was malformed (body, query, or path)",
}


class NegotiationError(HillviewError):
    """The client's protocol version is too old for this server."""

    code = "unsupported_protocol"


def protocol_features(version: int = PROTOCOL_VERSION) -> dict[str, bool]:
    """Feature flags as of ``version`` (sorted keys: stable JSON)."""
    return {
        name: introduced <= version
        for name, introduced in sorted(FEATURES.items())
    }


def protocol_payload() -> dict:
    """The server's protocol announcement (HTTP ``/api/v1/protocol`` and
    the first WebSocket message)."""
    return {
        "protocolVersion": PROTOCOL_VERSION,
        "minSupported": MIN_SUPPORTED,
        "features": protocol_features(),
    }


@dataclass(frozen=True)
class Negotiated:
    """One connection's pinned protocol: a version and its feature set."""

    version: int
    features: dict[str, bool]

    def enabled(self, name: str) -> bool:
        return bool(self.features.get(name))

    def to_json(self) -> dict:
        return {
            "protocolVersion": self.version,
            "features": {k: self.features[k] for k in sorted(self.features)},
        }


def negotiate(
    client_version: int, client_features: dict | None = None
) -> Negotiated:
    """Pin one connection's version and features from the client's hello.

    ``client_features``, when present, lets the client switch individual
    features *off* (``{"ws_heartbeat": false}``); it can never switch on
    a feature the negotiated version does not carry.  Raises
    :class:`NegotiationError` when the client is older than
    :data:`MIN_SUPPORTED`.
    """
    try:
        version = int(client_version)
    except (TypeError, ValueError):
        raise NegotiationError(
            f"protocolVersion must be an integer, got {client_version!r}"
        )
    if version < MIN_SUPPORTED:
        raise NegotiationError(
            f"client protocol version {version} is below this server's "
            f"minimum supported version {MIN_SUPPORTED}"
        )
    version = min(PROTOCOL_VERSION, version)
    features: dict[str, bool] = {}
    for name, introduced in sorted(FEATURES.items()):
        enabled = introduced <= version
        if isinstance(client_features, dict) and name in client_features:
            enabled = enabled and bool(client_features[name])
        features[name] = enabled
    return Negotiated(version, features)
