"""Blocking gateway clients for tests, scripts, and the documented
walkthrough in ``docs/GATEWAY_API.md``.

:class:`GatewayClient` speaks the HTTP surface over stdlib
``http.client``; :class:`GatewayWebSocket` speaks the WebSocket wire over
a plain socket with the shared RFC 6455 helpers
(:mod:`repro.gateway.websocket`) — the blocking twin of the server's
asyncio side, mirroring how :class:`~repro.service.transport.ServiceClient`
twins the TCP server.
"""

from __future__ import annotations

import http.client
import json
import socket
from collections import deque
from typing import Iterator

from repro.errors import HillviewError
from repro.gateway import websocket as ws
from repro.gateway.protocol import PROTOCOL_VERSION

DEFAULT_TIMEOUT = 60.0


class GatewayError(HillviewError):
    """An HTTP-level gateway failure; ``code`` mirrors the error body."""

    code = "connection"

    def __init__(self, message: str, code: str = "connection", status: int = 0):
        super().__init__(message)
        self.code = code
        self.status = status


class GatewayClient:
    """Blocking HTTP client for the gateway's ``/api/v1`` surface."""

    def __init__(self, host: str, port: int, timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    # -- plumbing -------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        headers: dict | None = None,
        raise_on_error: bool = True,
    ) -> tuple[int, object]:
        """One round trip; returns (status, decoded JSON body or text)."""
        payload = None
        send_headers = dict(headers or {})
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=payload, headers=send_headers)
        response = self._conn.getresponse()
        raw = response.read()
        content_type = response.headers.get("Content-Type", "")
        if "application/json" in content_type:
            decoded: object = json.loads(raw.decode("utf-8")) if raw else {}
        else:
            decoded = raw.decode("utf-8", errors="replace")
        if raise_on_error and response.status >= 400:
            code = (
                decoded.get("code", "connection")
                if isinstance(decoded, dict)
                else "connection"
            )
            message = (
                decoded.get("error", raw.decode("utf-8", errors="replace"))
                if isinstance(decoded, dict)
                else str(decoded)
            )
            raise GatewayError(
                f"HTTP {response.status}: {message}",
                code=str(code),
                status=response.status,
            )
        return response.status, decoded

    def get(self, path: str, headers: dict | None = None) -> object:
        return self.request("GET", path, headers=headers)[1]

    def post(self, path: str, body: dict | None = None) -> object:
        return self.request("POST", path, body=body)[1]

    def delete(self, path: str) -> object:
        return self.request("DELETE", path)[1]

    # -- the documented endpoints ---------------------------------------
    def protocol(self) -> dict:
        return self.get("/api/v1/protocol")

    def health(self) -> dict:
        return self.get("/api/v1/health")

    def create_session(self, session: str | None = None) -> dict:
        return self.post(
            "/api/v1/sessions", {"session": session} if session else {}
        )

    def close_session(self, session: str) -> bool:
        return bool(self.delete(f"/api/v1/sessions/{session}")["closed"])

    def publish(self, name: str, source: dict | None = None) -> dict:
        return self.post(
            "/api/v1/datasets", {"name": name, "source": source or {}}
        )

    def unpublish(self, name: str) -> bool:
        return bool(self.delete(f"/api/v1/datasets/{name}")["unpublished"])

    def datasets(self) -> list[str]:
        return self.get("/api/v1/datasets")["datasets"]

    def metadata(self, name: str, headers: dict | None = None) -> dict:
        return self.get(f"/api/v1/datasets/{name}/$metadata", headers=headers)

    def rows(
        self,
        name: str,
        top: int = 100,
        skip: int = 0,
        orderby: str | None = None,
        headers: dict | None = None,
    ) -> dict:
        path = f"/api/v1/datasets/{name}/rows?$top={top}&$skip={skip}"
        if orderby:
            path += f"&$orderby={orderby.replace(' ', '%20')}"
        return self.get(path, headers=headers)

    def sample(self, name: str, count: int = 100, seed: int = 0) -> dict:
        return self.get(
            f"/api/v1/datasets/{name}/sample?count={count}&seed={seed}"
        )

    def stats(self) -> dict:
        return self.get("/api/v1/stats")

    def metrics(self, fmt: str | None = None) -> object:
        path = "/api/v1/metrics"
        if fmt:
            path += f"?format={fmt}"
        return self.get(path)

    def traces(self, trace_id: str | None = None) -> dict:
        path = "/api/v1/traces"
        if trace_id:
            path += f"?traceId={trace_id}"
        return self.get(path)

    def drain(self) -> dict:
        return self.post("/api/v1/drain")

    def undrain(self) -> dict:
        return self.post("/api/v1/undrain")

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _RecvBuffer:
    """A socket wrapper draining bytes that arrived with the 101 response.

    The server sends its hello frame immediately after the upgrade, so it
    often lands in the same TCP segment; the upgrade parser hands the
    surplus here instead of dropping it.
    """

    def __init__(self, sock: socket.socket, initial: bytes = b""):
        self._sock = sock
        self._buffer = bytearray(initial)

    def recv(self, n: int) -> bytes:
        if self._buffer:
            chunk = bytes(self._buffer[:n])
            del self._buffer[:n]
            return chunk
        return self._sock.recv(n)


class GatewayWebSocket:
    """Blocking WebSocket client with the versioned gateway handshake.

    ``connect()`` performs the HTTP upgrade, reads the server hello,
    sends the client hello (version, optional session/features/resume
    map), and returns the welcome — after which :meth:`submit` /
    :meth:`stream` drive queries exactly like the TCP
    :class:`~repro.service.transport.ServiceClient`, minus the reader
    thread: replies are demultiplexed by requestId on demand.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_TIMEOUT,
        headers: dict | None = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = _RecvBuffer(self._sock, self._upgrade(headers or {}))
        #: Messages already read but not yet claimed, per requestId; the
        #: ``None`` key collects everything without a requestId
        #: (hello/welcome/heartbeats/pongs/errors).
        self._inbox: dict[int | None, deque[dict]] = {}
        self.server_hello: dict | None = None
        self.welcome: dict | None = None
        self.session: str | None = None
        self.last_seq: dict[int, int] = {}

    def _upgrade(self, headers: dict) -> bytes:
        key = ws.client_handshake_key()
        lines = [
            "GET /api/v1/ws HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Upgrade: websocket",
            "Connection: Upgrade",
            f"Sec-WebSocket-Key: {key}",
            "Sec-WebSocket-Version: 13",
        ]
        for name, value in headers.items():
            lines.append(f"{name}: {value}")
        self._sock.sendall(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ws.ConnectionClosed("server closed during the upgrade")
            response += chunk
        head_bytes, leftover = response.split(b"\r\n\r\n", 1)
        head = head_bytes.decode("latin-1")
        status_line = head.split("\r\n")[0]
        if " 101 " not in f"{status_line} ":
            raise GatewayError(f"upgrade refused: {status_line}")
        accept = None
        for line in head.split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-accept":
                accept = value.strip()
        if accept != ws.accept_key(key):
            raise ws.WebSocketError("bad Sec-WebSocket-Accept from server")
        return leftover

    # -- framing --------------------------------------------------------
    def _send_json(self, message: dict) -> None:
        self._sock.sendall(
            ws.encode_frame(
                ws.OP_TEXT, json.dumps(message).encode("utf-8"), mask=True
            )
        )

    def _next_message(self) -> dict:
        """The next data message, answering protocol pings transparently."""
        while True:
            message = ws.read_message_blocking(self._reader)
            if message.opcode == ws.OP_PING:
                self._sock.sendall(
                    ws.encode_frame(ws.OP_PONG, message.data, mask=True)
                )
                continue
            if message.opcode == ws.OP_PONG:
                continue
            if message.opcode == ws.OP_CLOSE:
                raise ws.ConnectionClosed("server closed the WebSocket")
            return json.loads(message.data.decode("utf-8"))

    def _claim(self, request_id: int | None) -> dict | None:
        queue = self._inbox.get(request_id)
        if queue:
            return queue.popleft()
        return None

    def recv(self, request_id: int | None = None) -> dict:
        """The next message for ``request_id`` (``None`` = unaddressed)."""
        claimed = self._claim(request_id)
        if claimed is not None:
            return claimed
        while True:
            message = self._next_message()
            rid = message.get("requestId")
            seq = message.get("seq")
            if isinstance(rid, int) and isinstance(seq, int):
                self.last_seq[rid] = max(self.last_seq.get(rid, 0), seq)
            if rid == request_id:
                return message
            self._inbox.setdefault(rid, deque()).append(message)

    # -- handshake ------------------------------------------------------
    def connect(
        self,
        session: str | None = None,
        protocol_version: int = PROTOCOL_VERSION,
        features: dict | None = None,
        resume: dict | None = None,
    ) -> dict:
        """Run the hello exchange; returns the welcome message.

        Raises :class:`GatewayError` (with the server's error code) when
        the server refuses the handshake — version below ``minSupported``,
        draining root, malformed hello.
        """
        self.server_hello = self.recv(None)
        hello: dict = {"type": "hello", "protocolVersion": protocol_version}
        if session is not None:
            hello["session"] = session
        if features is not None:
            hello["features"] = features
        if resume is not None:
            hello["resume"] = resume
        self._send_json(hello)
        answer = self.recv(None)
        if answer.get("type") == "error":
            raise GatewayError(
                str(answer.get("error")),
                code=str(answer.get("code", "bad_handshake")),
            )
        self.welcome = answer
        self.session = answer.get("session")
        return answer

    # -- queries --------------------------------------------------------
    def submit(
        self,
        request_id: int,
        method: str,
        target: str = "",
        args: dict | None = None,
        trace: dict | None = None,
    ) -> int:
        message: dict = {
            "type": "request",
            "requestId": request_id,
            "method": method,
            "target": target,
            "args": args or {},
        }
        if trace is not None:
            message["trace"] = trace
        self._send_json(message)
        return request_id

    def cancel(self, request_id: int) -> None:
        self._send_json({"type": "cancel", "requestId": request_id})

    def ping(self) -> dict:
        self._send_json({"type": "ping"})
        return self.recv(None)

    def stream(self, request_id: int) -> Iterator[dict]:
        """Replies for one request until (and including) its terminal."""
        from repro.engine.rpc import TERMINAL_REPLY_KINDS

        while True:
            message = self.recv(request_id)
            yield message
            if message.get("kind") in TERMINAL_REPLY_KINDS:
                return

    def result(self, request_id: int) -> dict:
        """Drain one request's stream; returns the terminal message."""
        last: dict | None = None
        for message in self.stream(request_id):
            last = message
        assert last is not None
        return last

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        try:
            self._sock.sendall(ws.close_frame(mask=True))
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayWebSocket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
