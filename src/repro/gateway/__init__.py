"""Browser-grade HTTP/WebSocket gateway over the service tier.

The package is the reproduction's front door for everything that is not
the uvarint TCP wire: browsers, spreadsheet connectors, curl, and
health-probing directors.  See ``docs/GATEWAY_API.md`` for the versioned
protocol surface and ``docs/PROTOCOL.md`` for the underlying wire spec.

* :mod:`repro.gateway.protocol` — versions, feature flags, negotiation;
* :mod:`repro.gateway.http` / :mod:`repro.gateway.websocket` — stdlib
  HTTP/1.1 and RFC 6455 primitives;
* :mod:`repro.gateway.server` — :class:`GatewayServer`, the asyncio
  front door (routing, resumable WS streams, backpressure);
* :mod:`repro.gateway.connector` — OData-style REST dataset reads;
* :mod:`repro.gateway.client` — blocking clients for tests and scripts.
"""

from repro.gateway.client import GatewayClient, GatewayWebSocket
from repro.gateway.connector import DatasetConnector
from repro.gateway.protocol import (
    FEATURES,
    GATEWAY_ERROR_CODES,
    MIN_SUPPORTED,
    PROTOCOL_VERSION,
    NegotiationError,
    negotiate,
    protocol_payload,
)
from repro.gateway.server import GatewayServer

__all__ = [
    "FEATURES",
    "GATEWAY_ERROR_CODES",
    "MIN_SUPPORTED",
    "PROTOCOL_VERSION",
    "DatasetConnector",
    "GatewayClient",
    "GatewayServer",
    "GatewayWebSocket",
    "NegotiationError",
    "negotiate",
    "protocol_payload",
]
