"""The browser-facing front door: HTTP + WebSocket over the service tier.

:class:`GatewayServer` wraps one :class:`~repro.service.transport.ServiceServer`
and exposes its sessions, scheduler and cluster through two surfaces:

* **HTTP** (``/api/v1/...``) — session create/resume, the operational
  plane (health, stats, metrics, traces, drain) dispatched through the
  same :meth:`~repro.service.transport.ServiceServer.admin_reply` the TCP
  wire uses, and the OData-style dataset connector
  (:mod:`repro.gateway.connector`);
* **WebSocket** (``/api/v1/ws``) — the streamed query wire: the same
  ``RpcRequest``/``RpcReply`` envelopes as the TCP wire, wrapped in typed
  JSON messages, with an explicit protocol-version handshake
  (:mod:`repro.gateway.protocol`), application heartbeats, and resumable
  reply streams.

**Resumable streams** exploit the fact that partials are *cumulative*
(§5.1): the per-session ledger keeps only each stream's latest partial
and its terminal reply, every reply carries a per-stream ``seq``, and a
reconnecting client presents the last seq it saw — the server replays
anything newer, reattaches live streams, and *restarts* (from the stored
request) streams its grace timer already cancelled.  The client-side
rule is one line: ignore replies whose seq is not greater than the last
seen.

**Backpressure** is the transport story of
:class:`~repro.service.transport._Connection` verbatim: replies cross
from scheduler threads into the connection's bounded asyncio outbox, and
when a client stops draining, the blocked sink stalls (then cancels) the
producing query — slow consumers never balloon the root's memory.

The gateway runs on its own event loop (and thread, via
:meth:`start_background`), so a deployment can serve the TCP wire and
the browser wire side by side from one process, or run the gateway
alone.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import threading
import time

from repro.engine.rpc import (
    NO_PAYLOAD,
    ProtocolError,
    RpcReply,
    RpcRequest,
)
from repro.errors import EngineError
from repro.gateway import http as gw_http
from repro.gateway import websocket as ws
from repro.gateway.connector import ConnectorError, DatasetConnector
from repro.gateway.protocol import (
    PROTOCOL_VERSION,
    Negotiated,
    NegotiationError,
    negotiate,
    protocol_payload,
)
from repro.obs.logs import log_event
from repro.obs.metrics import REGISTRY
from repro.obs.trace import TraceContext, from_traceparent, to_traceparent
from repro.service.scheduler import QueryTask
from repro.service.sessions import Session
from repro.service.transport import ServiceServer

#: HTTP status for each connector/gateway error code.
_STATUS_BY_CODE = {
    "not_found": 404,
    "bad_request": 400,
    "unknown_handle": 404,
    "overloaded": 429,
    "draining": 503,
    "unsupported_protocol": 400,
    "protocol": 400,
}

#: Per-session ledger bound: older streams are evicted (done ones first).
MAX_STREAMS_PER_SESSION = 64


def _status_for(code: str | None) -> int:
    return _STATUS_BY_CODE.get(code or "", 500)


def _reply_to_message(reply: RpcReply, seq: int | None = None) -> dict:
    """An :class:`RpcReply` as a typed WebSocket message.

    The envelope fields (requestId, kind, progress, payload, error, code,
    cache, profile) are exactly the TCP wire's JSON — same codec, so a
    sketch payload received over the gateway is identical to one received
    over a :class:`~repro.service.transport.ServiceClient`.
    """
    message = json.loads(reply.to_json())
    message["type"] = "reply"
    if seq is not None:
        message["seq"] = seq
    return message


class _Stream:
    """One resumable reply stream: seq counter + bounded replay state."""

    def __init__(self, request: RpcRequest):
        self.request = request
        self.seq = 0
        self.last_partial: dict | None = None
        self.terminal: dict | None = None
        self.done = False
        #: Cancelled by the grace timer (connection never resumed in
        #: time) — a resume restarts the stored request instead of
        #: replaying the synthetic cancellation.
        self.expired = False
        self.task: QueryTask | None = None
        self.started = time.monotonic()

    def record(self, reply: RpcReply) -> dict:
        """Assign the next seq and fold the reply into replay state."""
        self.seq += 1
        message = _reply_to_message(reply, self.seq)
        if reply.kind == "partial":
            # Partials are cumulative: the latest one subsumes every
            # earlier one, so the ledger holds exactly one.
            self.last_partial = message
        else:
            self.terminal = message
            self.done = True
        return message

    def replay_after(self, last_seq: int) -> list[dict]:
        messages = []
        if self.last_partial is not None and self.last_partial["seq"] > last_seq:
            messages.append(self.last_partial)
        if self.terminal is not None and self.terminal["seq"] > last_seq:
            messages.append(self.terminal)
        return messages


class _WsConnection:
    """One WebSocket connection's write side: bounded outbox + negotiation."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        outbox: "asyncio.Queue[dict | bytes | None]",
        sink_timeout: float,
    ):
        self.loop = loop
        self.outbox = outbox
        self.sink_timeout = sink_timeout
        self.closed = threading.Event()
        self.negotiated: Negotiated | None = None
        self.session: Session | None = None

    def send_threadsafe(self, message: dict) -> None:
        """Enqueue from a scheduler thread; blocks for backpressure.

        When (unusually) invoked on the gateway loop itself — e.g. the
        scheduler's admission-rejection path calls the sink synchronously
        from ``submit`` — fall back to a non-blocking put: blocking the
        loop on its own queue would deadlock.
        """
        if self.closed.is_set():
            raise ConnectionError("websocket connection closed")
        try:
            running: asyncio.AbstractEventLoop | None = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self.loop:
            try:
                self.outbox.put_nowait(message)
            except asyncio.QueueFull:
                raise ConnectionError("client stopped draining replies")
            return
        future = asyncio.run_coroutine_threadsafe(
            self.outbox.put(message), self.loop
        )
        try:
            future.result(timeout=self.sink_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ConnectionError("client stopped draining replies")


class GatewayServer:
    """HTTP + WebSocket front door over one :class:`ServiceServer`."""

    def __init__(
        self,
        service: ServiceServer | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        outbox_frames: int = 64,
        sink_timeout_seconds: float = 30.0,
        heartbeat_interval_seconds: float = 15.0,
        resume_grace_seconds: float = 60.0,
        handshake_timeout_seconds: float = 10.0,
    ):
        self.service = service if service is not None else ServiceServer()
        self.host = host
        self.port = port
        self.outbox_frames = outbox_frames
        self.sink_timeout_seconds = sink_timeout_seconds
        self.heartbeat_interval_seconds = heartbeat_interval_seconds
        self.resume_grace_seconds = resume_grace_seconds
        self.handshake_timeout_seconds = handshake_timeout_seconds
        self.connector = DatasetConnector(self.service.sessions)
        self.address: tuple[str, int] | None = None
        self.http_requests = 0
        self.ws_connections = 0
        self.ws_resumed_streams = 0
        self.ws_restarted_streams = 0
        #: session id -> its resumable streams, keyed by request id.
        self._streams: dict[str, dict[int, _Stream]] = {}
        #: session id -> the currently attached WS connection (one at a
        #: time: a resume steals the session from a zombie connection).
        self._attached: dict[str, _WsConnection] = {}
        self._grace: dict[str, asyncio.TimerHandle] = {}
        self._ledger_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._sweeper: asyncio.Task | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        # Session teardown (close, idle expiry) must also drop the
        # gateway's ledger for that session; chain onto whatever hook
        # the service already installed (the scheduler's forget_session).
        chained = self.service.sessions.on_close

        def on_close(session_id: str) -> None:
            if chained is not None:
                chained(session_id)
            self._forget_session(session_id)

        self.service.sessions.on_close = on_close

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.address = self._server.sockets[0].getsockname()[:2]
        if self.service._sweeper is None:
            # Standalone gateway (the TCP wire is not serving): the
            # session/cache sweep has to run somewhere.
            self._sweeper = asyncio.create_task(self._sweep_loop())
        log_event("gateway.start", host=self.address[0], port=self.address[1])
        return self.address

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.service.sweep_interval_seconds)
            self.service.sessions.sweep()
            self.service.sessions.expire()
            self.service.cluster.sweep_caches()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self._shutdown_async()

    def run(self) -> None:
        """Blocking entry point for ``repro gateway``."""
        try:
            asyncio.run(self.serve_forever())
        except KeyboardInterrupt:
            pass

    def start_background(self, timeout: float = 10.0) -> tuple[str, int]:
        started = threading.Event()

        def main() -> None:
            asyncio.run(self._background_main(started))

        self._thread = threading.Thread(
            target=main, name="gateway-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout):
            raise EngineError("gateway server failed to start")
        assert self.address is not None
        return self.address

    async def _background_main(self, started: threading.Event) -> None:
        await self.start()
        self._stop = asyncio.Event()
        started.set()
        try:
            await self._stop.wait()
        finally:
            await self._shutdown_async()

    async def _shutdown_async(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
        for handle in self._grace.values():
            handle.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def close(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    # -- HTTP ------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await gw_http.read_request(reader)
                except gw_http.HttpError as exc:
                    writer.write(
                        gw_http.error_response(
                            exc.status, exc.code, str(exc), keep_alive=False
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self.http_requests += 1
                if request.is_websocket_upgrade():
                    await self._handle_ws(request, reader, writer)
                    return
                started = time.perf_counter()
                response = await self._route(request)
                REGISTRY.histogram(
                    "gateway.http_seconds",
                    "HTTP request latency at the gateway",
                ).observe(time.perf_counter() - started)
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _route(self, request: gw_http.HttpRequest) -> bytes:
        """Dispatch one HTTP request to a response (never raises)."""
        keep = request.keep_alive
        try:
            return await self._dispatch_http(request)
        except gw_http.HttpError as exc:
            return gw_http.error_response(
                exc.status, exc.code, str(exc), keep_alive=keep
            )
        except (ConnectorError, NegotiationError, ProtocolError) as exc:
            code = getattr(exc, "code", "bad_request") or "bad_request"
            return gw_http.error_response(
                _status_for(code), code, str(exc), keep_alive=keep
            )

    async def _dispatch_http(self, request: gw_http.HttpRequest) -> bytes:
        method, path = request.method, request.path
        keep = request.keep_alive
        trace = from_traceparent(request.headers.get("traceparent"))
        extra = (
            [("traceparent", to_traceparent(trace))] if trace is not None else None
        )
        parts = [p for p in path.split("/") if p]
        if len(parts) < 2 or parts[0] != "api" or parts[1] != "v1":
            raise ConnectorError(f"unknown path {path!r}", code="not_found")
        tail = parts[2:]

        if tail == ["protocol"] and method == "GET":
            return gw_http.json_response(200, protocol_payload(), keep_alive=keep)
        if tail == ["health"] and method == "GET":
            return gw_http.json_response(
                200, self.health_payload(), keep_alive=keep
            )
        if tail == ["sessions"] and method == "POST":
            return self._http_create_session(request)
        if len(tail) == 2 and tail[0] == "sessions" and method == "DELETE":
            closed = self.service.sessions.close(tail[1])
            return gw_http.json_response(200, {"closed": closed}, keep_alive=keep)

        admin = await self._admin_route(tail, method, request)
        if admin is not None:
            return admin

        if tail == ["datasets"] and method == "GET":
            return gw_http.json_response(
                200, {"datasets": self.connector.datasets()}, keep_alive=keep
            )
        if tail == ["datasets"] and method == "POST":
            body = request.json_body()
            name = body.get("name")
            if not isinstance(name, str) or not name:
                raise ConnectorError("publish needs a dataset 'name'")
            published = await self._in_executor(
                self.connector.publish, name, body.get("source")
            )
            return gw_http.json_response(201, published, keep_alive=keep)
        if len(tail) == 2 and tail[0] == "datasets" and method == "DELETE":
            removed = self.connector.unpublish(tail[1])
            return gw_http.json_response(
                200, {"unpublished": removed}, keep_alive=keep
            )
        if len(tail) == 3 and tail[0] == "datasets" and method == "GET":
            name, view = tail[1], tail[2]
            query = request.query
            if view == "$metadata":
                payload = await self._in_executor(
                    self.connector.metadata, name, trace
                )
            elif view == "rows":
                payload = await self._in_executor(
                    lambda: self.connector.rows(
                        name,
                        top=self._int_param(query, "$top", 100),
                        skip=self._int_param(query, "$skip", 0),
                        orderby=query.get("$orderby"),
                        trace=trace,
                    )
                )
            elif view == "sample":
                payload = await self._in_executor(
                    lambda: self.connector.sample(
                        name,
                        count=self._int_param(query, "count", 100),
                        seed=self._int_param(query, "seed", 0),
                        orderby=query.get("$orderby"),
                        trace=trace,
                    )
                )
            else:
                raise ConnectorError(
                    f"unknown dataset view {view!r}", code="not_found"
                )
            return gw_http.json_response(
                200, payload, keep_alive=keep, extra_headers=extra
            )
        raise ConnectorError(
            f"no route for {method} {path}", code="not_found"
        )

    async def _admin_route(
        self, tail: list[str], method: str, request: gw_http.HttpRequest
    ) -> bytes | None:
        """The operational plane, shared with the TCP wire via
        ``admin_reply``.  Returns ``None`` for non-admin paths."""
        mapping = {
            ("GET", "stats"): ("stats", {}),
            ("GET", "metrics"): (
                "metricsSnapshot",
                {"format": request.query.get("format")}
                if request.query.get("format")
                else {},
            ),
            ("GET", "traces"): (
                "traceDump",
                {"traceId": request.query.get("traceId")}
                if request.query.get("traceId")
                else {},
            ),
            ("POST", "drain"): ("drain", {}),
            ("POST", "undrain"): ("undrain", {}),
        }
        if len(tail) != 1 or (method, tail[0]) not in mapping:
            return None
        rpc_method, args = mapping[(method, tail[0])]
        reply = await self.service.admin_reply(RpcRequest(0, "", rpc_method, args))
        assert reply is not None
        payload = reply.payload if reply.payload is not NO_PAYLOAD else {}
        if (
            rpc_method == "metricsSnapshot"
            and isinstance(payload, dict)
            and payload.get("format") == "prometheus"
        ):
            return gw_http.response_bytes(
                200,
                str(payload.get("text", "")).encode("utf-8"),
                content_type="text/plain; version=0.0.4",
                keep_alive=request.keep_alive,
            )
        return gw_http.json_response(200, payload, keep_alive=request.keep_alive)

    def _http_create_session(self, request: gw_http.HttpRequest) -> bytes:
        body = request.json_body()
        requested = body.get("session")
        keep = request.keep_alive
        if self.service.draining and not (
            requested and self.service.sessions.get(str(requested))
        ):
            self.service.hellos_refused += 1
            return gw_http.error_response(
                503,
                "draining",
                "this root is draining; reconnect through the director "
                "to another root",
                keep_alive=keep,
            )
        before = self.service.sessions.get(str(requested)) if requested else None
        session = self.service.sessions.get_or_create(
            str(requested) if requested else None
        )
        # "resumed": the id named an existing session — resident on this
        # root, or rebuilt (with handles) from the shared session store.
        resumed = before is not None or (
            bool(requested) and len(session.web.handles) > 0
        )
        return gw_http.json_response(
            201,
            {"session": session.session_id, "resumed": resumed},
            keep_alive=keep,
        )

    @staticmethod
    def _int_param(query: dict, key: str, default: int) -> int:
        raw = query.get(key)
        if raw is None or raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            raise ConnectorError(f"{key} must be an integer, got {raw!r}")

    async def _in_executor(self, fn, *args):
        loop = asyncio.get_running_loop()
        if args:
            return await loop.run_in_executor(None, lambda: fn(*args))
        return await loop.run_in_executor(None, fn)

    def health_payload(self) -> dict:
        """The director-facing liveness document."""
        return {
            "status": "draining" if self.service.draining else "ok",
            "gateway": True,
            "protocolVersion": PROTOCOL_VERSION,
            "draining": self.service.draining,
            "sessions": len(self.service.sessions.sessions),
            "workers": len(self.service.cluster.workers),
            "wsConnections": self.ws_connections,
            "httpRequests": self.http_requests,
        }

    # -- WebSocket --------------------------------------------------------
    async def _handle_ws(
        self,
        request: gw_http.HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        if request.path != "/api/v1/ws":
            writer.write(
                gw_http.error_response(
                    404, "not_found", f"no WebSocket at {request.path!r}",
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        key = request.headers.get("sec-websocket-key")
        if not key:
            writer.write(
                gw_http.error_response(
                    400, "bad_handshake", "missing Sec-WebSocket-Key",
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        writer.write(
            gw_http.response_bytes(
                101, extra_headers=ws.handshake_response_headers(key)
            )
        )
        await writer.drain()
        self.ws_connections += 1
        REGISTRY.counter(
            "gateway.ws_connections", "WebSocket connections accepted"
        ).inc()
        outbox: "asyncio.Queue[dict | bytes | None]" = asyncio.Queue(
            maxsize=self.outbox_frames
        )
        conn = _WsConnection(self._loop, outbox, self.sink_timeout_seconds)
        conn_trace = from_traceparent(request.headers.get("traceparent"))
        writer_task = asyncio.create_task(self._ws_writer_loop(writer, outbox))
        heartbeat_task: asyncio.Task | None = None
        direct_tasks: list[QueryTask] = []
        started = time.perf_counter()
        try:
            session = await self._ws_handshake(conn, reader)
            REGISTRY.histogram(
                "gateway.ws_handshake_seconds",
                "WebSocket handshake latency (accept to welcome)",
            ).observe(time.perf_counter() - started)
            if session is None:
                return
            if conn.negotiated.enabled("ws_heartbeat"):
                heartbeat_task = asyncio.create_task(self._heartbeat_loop(conn))
            await self._ws_message_loop(conn, session, reader, conn_trace, direct_tasks)
        except (
            ws.WebSocketError,
            ws.ConnectionClosed,
            ConnectionError,
            OSError,
            asyncio.CancelledError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            conn.closed.set()
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            # Direct (non-resumable) streams die with the connection,
            # exactly like the TCP wire; resumable streams get a grace
            # window instead.
            for task in direct_tasks:
                task.token.cancel()
            if conn.session is not None:
                self._detach(conn, conn.session.session_id)
            # Flush what is already queued (handshake refusals, the last
            # replies) before tearing the writer down; a full outbox means
            # the client stopped draining, so dropping it is fine.
            try:
                outbox.put_nowait(None)
            except asyncio.QueueFull:
                writer_task.cancel()
            try:
                await writer_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _ws_writer_loop(
        self,
        writer: asyncio.StreamWriter,
        outbox: "asyncio.Queue[dict | bytes | None]",
    ) -> None:
        sent = REGISTRY.counter(
            "gateway.ws_bytes_sent", "reply bytes on the WebSocket wire"
        )
        try:
            while True:
                message = await outbox.get()
                if message is None:
                    break
                if isinstance(message, bytes):
                    frame = message  # pre-encoded control frame
                else:
                    frame = ws.encode_frame(
                        ws.OP_TEXT,
                        json.dumps(message, sort_keys=True).encode("utf-8"),
                    )
                sent.inc(len(frame))
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _heartbeat_loop(self, conn: _WsConnection) -> None:
        n = 0
        while not conn.closed.is_set():
            await asyncio.sleep(self.heartbeat_interval_seconds)
            n += 1
            try:
                conn.outbox.put_nowait({"type": "heartbeat", "n": n})
            except asyncio.QueueFull:
                pass  # a full outbox is already applying backpressure

    async def _ws_handshake(
        self, conn: _WsConnection, reader: asyncio.StreamReader
    ) -> Session | None:
        """Server hello -> client hello -> negotiate -> welcome (+ replay).

        Returns the bound session, or ``None`` when the handshake was
        refused (the refusal message has already been sent).
        """
        hello = dict(protocol_payload())
        hello["type"] = "hello"
        await conn.outbox.put(hello)
        try:
            message = await asyncio.wait_for(
                ws.read_message(reader), timeout=self.handshake_timeout_seconds
            )
        except asyncio.TimeoutError:
            await conn.outbox.put(
                {
                    "type": "error",
                    "code": "bad_handshake",
                    "error": "timed out waiting for the client hello",
                }
            )
            return None
        if message.opcode == ws.OP_CLOSE:
            return None
        try:
            client_hello = json.loads(message.data.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            await conn.outbox.put(
                {
                    "type": "error",
                    "code": "bad_handshake",
                    "error": f"client hello is not valid JSON: {exc}",
                }
            )
            return None
        if (
            not isinstance(client_hello, dict)
            or client_hello.get("type") != "hello"
        ):
            await conn.outbox.put(
                {
                    "type": "error",
                    "code": "bad_handshake",
                    "error": "the first message must be a {'type': 'hello'}",
                }
            )
            return None
        try:
            negotiated = negotiate(
                client_hello.get("protocolVersion", PROTOCOL_VERSION),
                client_hello.get("features"),
            )
        except NegotiationError as exc:
            await conn.outbox.put(
                {
                    "type": "error",
                    "code": exc.code,
                    "error": str(exc),
                    "minSupported": protocol_payload()["minSupported"],
                }
            )
            return None
        requested = client_hello.get("session")
        if self.service.draining and not (
            requested and self.service.sessions.get(str(requested))
        ):
            self.service.hellos_refused += 1
            await conn.outbox.put(
                {
                    "type": "error",
                    "code": "draining",
                    "error": "this root is draining; reconnect through "
                    "the director to another root",
                }
            )
            return None
        session = self.service.sessions.get_or_create(
            str(requested) if requested else None
        )
        conn.negotiated = negotiated
        conn.session = session
        welcome: dict = {
            "type": "welcome",
            "session": session.session_id,
        }
        welcome.update(negotiated.to_json())
        replay: list[dict] = []
        if negotiated.enabled("ws_resume"):
            resumed = self._attach(conn, session, client_hello.get("resume"))
            welcome["resumed"] = resumed["resumed"]
            welcome["restarted"] = resumed["restarted"]
            welcome["expired"] = resumed["expired"]
            replay = resumed["replay"]
        await conn.outbox.put(welcome)
        for message_out in replay:
            await conn.outbox.put(message_out)
        return session

    # -- resumable stream ledger ----------------------------------------
    def _attach(
        self, conn: _WsConnection, session: Session, resume: object
    ) -> dict:
        """Bind ``conn`` as the session's live connection and compute the
        replay for the client's ``resume`` map (requestId -> last seq)."""
        session_id = session.session_id
        handle = self._grace.pop(session_id, None)
        if handle is not None:
            handle.cancel()
        with self._ledger_lock:
            self._attached[session_id] = conn
            streams = dict(self._streams.get(session_id, {}))
        resumed: list[int] = []
        restarted: list[int] = []
        expired: list[int] = []
        replay: list[dict] = []
        if not isinstance(resume, dict):
            return {
                "resumed": resumed,
                "restarted": restarted,
                "expired": expired,
                "replay": replay,
            }
        for raw_id, raw_seq in sorted(resume.items(), key=lambda kv: str(kv[0])):
            try:
                request_id = int(raw_id)
                last_seq = int(raw_seq)
            except (TypeError, ValueError):
                continue
            stream = streams.get(request_id)
            if stream is None:
                expired.append(request_id)
                replay.append(
                    {
                        "type": "reply",
                        "requestId": request_id,
                        "kind": "error",
                        "progress": 1.0,
                        "error": "this stream is no longer resumable; "
                        "re-issue the query",
                        "code": "stream_expired",
                    }
                )
                continue
            if stream.expired:
                # The grace timer cancelled it: restart from the stored
                # request.  Cumulative partials make this lossless — the
                # restarted stream's first partial supersedes everything.
                self._submit_resumable(session, stream)
                restarted.append(request_id)
                self.ws_restarted_streams += 1
                continue
            resumed.append(request_id)
            self.ws_resumed_streams += 1
            replay.extend(stream.replay_after(last_seq))
        REGISTRY.counter(
            "gateway.ws_streams_resumed", "streams resumed after reconnect"
        ).inc(len(resumed) + len(restarted))
        return {
            "resumed": resumed,
            "restarted": restarted,
            "expired": expired,
            "replay": replay,
        }

    def _detach(self, conn: _WsConnection, session_id: str) -> None:
        """The connection is gone: start the resume grace timer."""
        with self._ledger_lock:
            if self._attached.get(session_id) is conn:
                del self._attached[session_id]
            else:
                return  # a newer connection already took over
            live = any(
                not s.done for s in self._streams.get(session_id, {}).values()
            )
        if live and self._loop is not None:
            self._grace[session_id] = self._loop.call_later(
                self.resume_grace_seconds, self._expire_streams, session_id
            )

    def _expire_streams(self, session_id: str) -> None:
        """Grace over: cancel the session's live streams.  Ledger entries
        stay (marked expired) so a late resume can still restart them."""
        self._grace.pop(session_id, None)
        with self._ledger_lock:
            if session_id in self._attached:
                return  # reconnected while the timer fired
            streams = list(self._streams.get(session_id, {}).values())
        for stream in streams:
            if not stream.done:
                stream.expired = True
                if stream.task is not None:
                    stream.task.token.cancel()

    def _forget_session(self, session_id: str) -> None:
        """Session closed or expired: the ledger goes with it."""
        with self._ledger_lock:
            self._streams.pop(session_id, None)
            self._attached.pop(session_id, None)
        handle = self._grace.pop(session_id, None)
        if handle is not None:
            handle.cancel()

    def _submit_resumable(self, session: Session, stream: _Stream) -> None:
        """(Re)submit a stream's request with the ledger-writing sink."""
        session_id = session.session_id
        stream.done = False
        stream.expired = False
        stream.terminal = None

        def sink(reply: RpcReply) -> None:
            with self._ledger_lock:
                message = stream.record(reply)
                conn = self._attached.get(session_id)
            if conn is not None:
                # May raise ConnectionError (stalled client) — the
                # scheduler then cancels the query, like the TCP wire.
                conn.send_threadsafe(message)

        stream.task = self.service.scheduler.submit(
            session, stream.request, sink
        )

    def _register_stream(self, session: Session, request: RpcRequest) -> _Stream:
        stream = _Stream(request)
        with self._ledger_lock:
            streams = self._streams.setdefault(session.session_id, {})
            # Re-using a request id replaces its ledger slot (the TCP
            # wire trusts client-unique ids; the ledger must not let a
            # duplicate make two streams fight over one slot).
            streams[request.request_id] = stream
            while len(streams) > MAX_STREAMS_PER_SESSION:
                victims = sorted(
                    streams.values(), key=lambda s: (not s.done, s.started)
                )
                del streams[victims[0].request.request_id]
        return stream

    # -- WS message loop --------------------------------------------------
    async def _ws_message_loop(
        self,
        conn: _WsConnection,
        session: Session,
        reader: asyncio.StreamReader,
        conn_trace: TraceContext | None,
        direct_tasks: list[QueryTask],
    ) -> None:
        messages = REGISTRY.counter(
            "gateway.ws_messages", "client messages on the WebSocket wire"
        )
        resumable = conn.negotiated.enabled("ws_resume")
        while True:
            message = await ws.read_message(reader)
            if message.opcode == ws.OP_CLOSE:
                await conn.outbox.put(ws.close_frame())
                return
            if message.opcode == ws.OP_PING:
                await conn.outbox.put(ws.encode_frame(ws.OP_PONG, message.data))
                continue
            if message.opcode == ws.OP_PONG:
                continue
            messages.inc()
            session.touch()
            try:
                data = json.loads(message.data.decode("utf-8"))
                if not isinstance(data, dict):
                    raise ValueError("messages must be JSON objects")
            except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
                await conn.outbox.put(
                    {
                        "type": "error",
                        "code": "bad_request",
                        "error": f"unreadable message: {exc}",
                    }
                )
                continue
            kind = data.get("type")
            if kind == "ping":
                await conn.outbox.put({"type": "pong"})
            elif kind == "cancel":
                request_id = int(data.get("requestId", -1))
                cancelled = session.cancel_request(request_id)
                # Not a "reply": the stream itself still terminates with
                # its own cancelled/complete envelope, and a reply-kind
                # ack here would put two terminals on one requestId.
                await conn.outbox.put(
                    {
                        "type": "cancel_ack",
                        "requestId": request_id,
                        "cancelled": cancelled,
                    }
                )
            elif kind == "request":
                self._ws_submit(
                    conn, session, data, conn_trace, resumable, direct_tasks
                )
            else:
                await conn.outbox.put(
                    {
                        "type": "error",
                        "code": "bad_request",
                        "error": f"unknown message type {kind!r}",
                    }
                )

    def _ws_submit(
        self,
        conn: _WsConnection,
        session: Session,
        data: dict,
        conn_trace: TraceContext | None,
        resumable: bool,
        direct_tasks: list[QueryTask],
    ) -> None:
        try:
            request = RpcRequest(
                request_id=int(data["requestId"]),
                target=str(data.get("target", "")),
                method=str(data["method"]),
                args=dict(data.get("args") or {}),
                trace=data.get("trace")
                if conn.negotiated.enabled("trace_context")
                else None,
            )
        except (KeyError, TypeError, ValueError) as exc:
            conn.outbox.put_nowait(
                {
                    "type": "error",
                    "code": "bad_request",
                    "error": f"malformed request message: {exc}",
                }
            )
            return
        if request.trace is None and conn_trace is not None:
            # The upgrade request's traceparent covers the connection;
            # each query becomes a child span of it.
            request.trace = conn_trace.child().to_json()
        if resumable and request.method == "sketch":
            stream = self._register_stream(session, request)
            self._submit_resumable(session, stream)
            return
        direct_tasks.append(
            self.service.scheduler.submit(
                session, request, lambda reply: conn.send_threadsafe(
                    _reply_to_message(reply)
                )
            )
        )
        # Compact the bookkeeping list as the TCP transport does.
        direct_tasks[:] = [t for t in direct_tasks if not t.done.is_set()]
