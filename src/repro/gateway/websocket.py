"""RFC 6455 WebSocket framing — handshake, frames, fragmentation.

Like :mod:`repro.gateway.http`, this is stdlib-only by design.  The
subset implemented is exactly what the gateway protocol uses:

* the opening handshake (``Sec-WebSocket-Accept`` from the client key);
* text (``0x1``), binary (``0x2``), close (``0x8``), ping (``0x9``) and
  pong (``0xA``) frames, with 16- and 64-bit extended lengths;
* client-to-server masking (required by the RFC; the server never masks);
* fragmentation on receive (continuation frames are reassembled; control
  frames may interleave) — the server always sends unfragmented frames.

No extensions (``permessage-deflate`` etc.) are negotiated; the sketch
payloads on this wire are JSON envelopes the size of a rendering, not
bulk data, and the TCP wire already owns the bulk path.

Two readers share the decode logic: an asyncio one for the server and a
blocking one for :class:`repro.gateway.client.GatewayClient` (tests and
scripted walkthroughs), mirroring ``read_frame`` /
``read_frame_blocking`` in :mod:`repro.core.framing`.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import os
import struct
from dataclasses import dataclass

from repro.errors import HillviewError

#: Fixed GUID from RFC 6455 §1.3: the accept key is
#: ``base64(sha1(client_key + GUID))``.
_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

#: A single message (after reassembly) may not exceed this; matches the
#: TCP wire's frame ceiling so a gateway hop never truncates a payload
#: the inner wire produced.
MAX_MESSAGE_BYTES = 32 * 1024 * 1024

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

_CONTROL_OPS = (OP_CLOSE, OP_PING, OP_PONG)


class WebSocketError(HillviewError):
    """A protocol violation on the WebSocket wire."""

    code = "protocol"


class ConnectionClosed(HillviewError):
    """The peer closed the WebSocket (close frame or EOF)."""

    code = "connection"


def accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for a client's key."""
    digest = hashlib.sha1((client_key + _WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def handshake_response_headers(client_key: str) -> list[tuple[str, str]]:
    """Headers for the ``101 Switching Protocols`` upgrade response."""
    return [
        ("Upgrade", "websocket"),
        ("Connection", "Upgrade"),
        ("Sec-WebSocket-Accept", accept_key(client_key)),
    ]


def client_handshake_key() -> str:
    """A fresh random ``Sec-WebSocket-Key`` (16 bytes, base64)."""
    return base64.b64encode(os.urandom(16)).decode("ascii")


@dataclass(frozen=True)
class Message:
    """One reassembled WebSocket message."""

    opcode: int
    data: bytes

    @property
    def text(self) -> str:
        return self.data.decode("utf-8")


def encode_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """One unfragmented frame (FIN set).  ``mask=True`` for client→server."""
    if opcode in _CONTROL_OPS and len(payload) > 125:
        raise WebSocketError("control frame payload exceeds 125 bytes")
    head = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack("!H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack("!Q", length)
    if not mask:
        return bytes(head) + payload
    key = os.urandom(4)
    head += key
    masked = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(head) + masked


def close_frame(status: int = 1000, reason: str = "", mask: bool = False) -> bytes:
    payload = struct.pack("!H", status) + reason.encode("utf-8")[:123]
    return encode_frame(OP_CLOSE, payload, mask=mask)


def _decode_head(b0: int, b1: int) -> tuple[bool, int, bool, int]:
    """(fin, opcode, masked, base_length) from the first two bytes."""
    fin = bool(b0 & 0x80)
    if b0 & 0x70:
        raise WebSocketError("reserved frame bits set (no extensions negotiated)")
    opcode = b0 & 0x0F
    masked = bool(b1 & 0x80)
    return fin, opcode, masked, b1 & 0x7F


def _unmask(payload: bytes, key: bytes) -> bytes:
    return bytes(b ^ key[i % 4] for i, b in enumerate(payload))


async def _read_frame(
    reader: asyncio.StreamReader,
) -> tuple[bool, int, bytes, bool]:
    """One raw frame: (fin, opcode, payload, masked).  Raises on EOF."""
    try:
        head = await reader.readexactly(2)
    except asyncio.IncompleteReadError:
        raise ConnectionClosed("peer closed the WebSocket connection")
    fin, opcode, masked, length = _decode_head(head[0], head[1])
    try:
        if length == 126:
            length = struct.unpack("!H", await reader.readexactly(2))[0]
        elif length == 127:
            length = struct.unpack("!Q", await reader.readexactly(8))[0]
        if length > MAX_MESSAGE_BYTES:
            raise WebSocketError(f"frame of {length} bytes exceeds the message cap")
        key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise ConnectionClosed("peer closed mid-frame")
    if masked:
        payload = _unmask(payload, key)
    return fin, opcode, payload, masked


async def read_message(
    reader: asyncio.StreamReader, require_masked: bool = True
) -> Message:
    """The next *data or control* message, reassembling fragments.

    Control frames that interleave a fragmented message are returned as
    their own :class:`Message` in arrival order (the caller answers pings
    and notices closes); data fragments accumulate until FIN.  With
    ``require_masked`` (the server side), an unmasked data frame is a
    protocol error per RFC 6455 §5.1.
    """
    buffer = bytearray()
    message_opcode: int | None = None
    while True:
        fin, opcode, payload, masked = await _read_frame(reader)
        if require_masked and not masked:
            raise WebSocketError("client frames must be masked (RFC 6455 §5.1)")
        if opcode in _CONTROL_OPS:
            if not fin:
                raise WebSocketError("fragmented control frame")
            return Message(opcode, bytes(payload))
        if opcode == OP_CONT:
            if message_opcode is None:
                raise WebSocketError("continuation frame with no message in progress")
        elif opcode in (OP_TEXT, OP_BINARY):
            if message_opcode is not None:
                raise WebSocketError("new data frame inside a fragmented message")
            message_opcode = opcode
        else:
            raise WebSocketError(f"unknown opcode 0x{opcode:X}")
        buffer += payload
        if len(buffer) > MAX_MESSAGE_BYTES:
            raise WebSocketError("reassembled message exceeds the message cap")
        if fin:
            return Message(message_opcode, bytes(buffer))


# ---------------------------------------------------------------------------
# Blocking reader (sync GatewayClient; mirrors read_frame_blocking)
# ---------------------------------------------------------------------------
def _recv_exactly(sock, length: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < length:
        chunk = sock.recv(length - len(chunks))
        if not chunk:
            raise ConnectionClosed("peer closed the WebSocket connection")
        chunks += chunk
    return bytes(chunks)


def read_message_blocking(sock) -> Message:
    """Blocking twin of :func:`read_message` over a plain socket."""
    buffer = bytearray()
    message_opcode: int | None = None
    while True:
        head = _recv_exactly(sock, 2)
        fin, opcode, masked, length = _decode_head(head[0], head[1])
        if length == 126:
            length = struct.unpack("!H", _recv_exactly(sock, 2))[0]
        elif length == 127:
            length = struct.unpack("!Q", _recv_exactly(sock, 8))[0]
        if length > MAX_MESSAGE_BYTES:
            raise WebSocketError(f"frame of {length} bytes exceeds the message cap")
        key = _recv_exactly(sock, 4) if masked else b""
        payload = _recv_exactly(sock, length) if length else b""
        if masked:
            payload = _unmask(payload, key)
        if opcode in _CONTROL_OPS:
            if not fin:
                raise WebSocketError("fragmented control frame")
            return Message(opcode, bytes(payload))
        if opcode == OP_CONT:
            if message_opcode is None:
                raise WebSocketError("continuation frame with no message in progress")
        elif opcode in (OP_TEXT, OP_BINARY):
            if message_opcode is not None:
                raise WebSocketError("new data frame inside a fragmented message")
            message_opcode = opcode
        else:
            raise WebSocketError(f"unknown opcode 0x{opcode:X}")
        buffer += payload
        if len(buffer) > MAX_MESSAGE_BYTES:
            raise WebSocketError("reassembled message exceeds the message cap")
        if fin:
            return Message(message_opcode, bytes(buffer))
