"""Findings and the rule catalog for ``repro analyze``.

A :class:`Finding` is one violation of one :class:`RuleInfo` at one
source location.  The catalog below is the single source of truth for
rule ids: suppression comments (``# repro: ignore[RULE] — reason``) are
validated against it, ``repro analyze --list-rules`` prints it, and the
README rule table is kept in sync by ``tests/test_analysis.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuleInfo:
    """Identity and rationale of one rule."""

    rule_id: str
    title: str
    rationale: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location.

    ``path`` is always the real on-disk path (what an editor or a GitHub
    annotation needs), even when the file was analyzed under a virtual
    ``# repro: fixture as=...`` path.
    """

    rule_id: str
    path: str
    line: int
    message: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule_id, self.message)


#: The rule catalog.  Grouped: D = determinism, R = registry
#: completeness, C = concurrency, B = exception hygiene, SUP = the
#: suppression mechanism policing itself.
RULE_CATALOG: dict[str, RuleInfo] = {
    rule.rule_id: rule
    for rule in [
        RuleInfo(
            "D001",
            "completion-order fold over futures",
            "Iterating `as_completed(...)` merges partials in thread-"
            "completion order; only-approximately-commutative merges "
            "(Misra-Gries at capacity) then produce different bytes run "
            "over run, breaking the memo/cache byte-identity invariant "
            "(the PR 7 production bug). Fold futures in submission "
            "(shard/worker) order instead.",
        ),
        RuleInfo(
            "D002",
            "unordered iteration in a serialization/merge path",
            "Iterating a set, or a dict's keys()/values()/items() "
            "without sorted(...), inside encode/merge/*_to_json/"
            "*_payload functions leaks memory-address or insertion "
            "order into bytes that must be canonical.",
        ),
        RuleInfo(
            "D003",
            "nondeterminism source in sketch code",
            "Sketch kernels must be pure functions of (table, seed): "
            "time/random/uuid/os.urandom/np.random outside "
            "core/rand.py breaks replay, the differential oracle "
            "harness, and cross-root cache agreement.",
        ),
        RuleInfo(
            "R001",
            "sketch builder without a JSON encoder inverse",
            "Every SKETCH_BUILDERS entry must have an inverse in the "
            "sketch→JSON encoder table, or the root cannot broadcast "
            "that sketch to worker daemons (it would run only in-"
            "process and silently diverge from the fleet path).",
        ),
        RuleInfo(
            "R002",
            "summary codec/parser table mismatch",
            "SUMMARY_CODECS (binary wire) and SUMMARY_PARSERS (JSON "
            "wire) must cover the same payload type tags, or a summary "
            "round-trips on one wire mode and explodes on the other — "
            "the two-wire byte-identity CI legs rely on parity.",
        ),
        RuleInfo(
            "R003",
            "vectorized sketch outside the differential harness",
            "A vectorized kernel must keep its per-row "
            "summarize_reference oracle and register a spec in "
            "sketches/specs.py; otherwise the kernel-equivalence fuzz "
            "harness never sees it and a numpy rewrite can silently "
            "change bytes.",
        ),
        RuleInfo(
            "C001",
            "attribute mutated both under and outside its class lock",
            "If any method writes an attribute inside `with self._lock:`"
            " then every write outside the lock (past __init__) is a "
            "race: the PR 3 TOCTOU/state-leak bug class.",
        ),
        RuleInfo(
            "C002",
            "thread spawn without trace-context propagation",
            "threading.Thread / executor submit sites in engine/ and "
            "service/ must propagate the trace context (use_context/"
            "serve_span or an explicitly captured ctx), or spans from "
            "the spawned work detach from the query's trace (the PR 6 "
            "hand-audit, now mechanical).",
        ),
        RuleInfo(
            "C003",
            "blocking call inside an async function",
            "time.sleep / future.result() / blocking sockets / "
            "subprocess calls inside `async def` stall the event loop "
            "for every connected client of the service tier.",
        ),
        RuleInfo(
            "B001",
            "broad exception handler without re-raise",
            "`except Exception`/`except BaseException`/bare `except` "
            "that swallows (no re-raise) hides real failures; each "
            "intentional shield must carry a justification.",
        ),
        RuleInfo(
            "SUP001",
            "malformed suppression",
            "`# repro: ignore[RULE]` must name known rule ids and carry "
            "a non-empty justification after a separator "
            "(`— why this is safe`). A waiver nobody can audit is not "
            "a waiver.",
        ),
        RuleInfo(
            "SUP002",
            "unused suppression",
            "A suppression that matches no finding is stale: the "
            "violation was fixed or the code moved. Delete it so the "
            "waiver count only ever shrinks.",
        ),
    ]
}
