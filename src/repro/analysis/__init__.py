"""Static analysis for the repro tree: ``repro analyze``.

An AST-based rule engine (stdlib ``ast`` only) that encodes the
invariants Hillview's architecture rests on — deterministic mergeable
sketch bytes, closed wire registries, disciplined locking and trace
propagation — as CI-gating lint rules.  See the rule catalog in
:mod:`repro.analysis.findings` and the README "Static analysis"
section.
"""

from repro.analysis.engine import (
    AnalysisReport,
    analyze_main,
    analyze_paths,
    discover_files,
)
from repro.analysis.findings import RULE_CATALOG, Finding, RuleInfo
from repro.analysis.rules.registry import RegistryView, extract_registry_view
from repro.analysis.source import SourceFile, load_source_file

__all__ = [
    "AnalysisReport",
    "Finding",
    "RegistryView",
    "RuleInfo",
    "RULE_CATALOG",
    "SourceFile",
    "analyze_main",
    "analyze_paths",
    "discover_files",
    "extract_registry_view",
    "load_source_file",
]
