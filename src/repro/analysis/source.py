"""Parsed source files: AST, comments, suppressions, fixture pragmas.

Suppression syntax (one mechanism for every waiver in the tree)::

    x = risky()  # repro: ignore[C001] — guarded by the GIL: single writer

    # repro: ignore[D002, D003] — canonical order proven by test_x
    for item in values:
        ...

A suppression applies to findings on its own line or on the line
immediately below (for the standalone-comment form).  The justification
after the separator is mandatory; ``# repro: ignore[...]`` without one
is itself a finding (SUP001), as is naming an unknown rule id.

Fixture pragma::

    # repro: fixture as=src/repro/sketches/example.py

Files carrying ``# repro: fixture`` in their first ten lines are
deliberate rule violations used by the analyzer's own tests: directory
walks skip them, but passing one explicitly on the command line scans
it, with path-scoped rules seeing the ``as=`` virtual path.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field

_SUPPRESS_RE = re.compile(r"#\s*repro:\s*ignore\[([^\]]*)\]\s*(.*)$")
_FIXTURE_RE = re.compile(r"^#\s*repro:\s*fixture(?:\s+as=(\S+))?\s*$")
_RULE_ID_RE = re.compile(r"^[A-Z]+\d{3}$")
#: Separators accepted between the rule list and the justification.
_REASON_RE = re.compile(r"^(?:—|--|-|:)\s*(.+)$")


@dataclass
class Suppression:
    """One parsed ``# repro: ignore[...]`` comment."""

    line: int
    rule_ids: tuple[str, ...]
    reason: str
    used: bool = False

    def matches(self, rule_id: str, line: int) -> bool:
        return rule_id in self.rule_ids and line in (self.line, self.line + 1)


@dataclass
class MalformedSuppression:
    line: int
    message: str


@dataclass
class SourceFile:
    """One file the analyzer looks at."""

    path: str  #: real path, as reported in findings
    text: str
    tree: ast.Module | None
    syntax_error: str | None
    suppressions: list[Suppression] = field(default_factory=list)
    malformed: list[MalformedSuppression] = field(default_factory=list)
    is_fixture: bool = False
    virtual_path: str | None = None

    @property
    def scope_path(self) -> str:
        """The path rules scope on (fixtures may declare a virtual one)."""
        return self.virtual_path or self.path


def _parse_comments(text: str) -> list[tuple[int, str]]:
    """All comment tokens as (line, text); regex fallback on tokenize
    failure so a half-broken file still has its pragmas honored."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        return [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        out = []
        for i, line in enumerate(text.splitlines(), start=1):
            pos = line.find("#")
            if pos >= 0:
                out.append((i, line[pos:]))
        return out


def parse_suppression_comment(
    comment: str, line: int, known_rules: set[str]
) -> Suppression | MalformedSuppression | None:
    """Parse one comment; None when it is not a suppression at all."""
    match = _SUPPRESS_RE.search(comment)
    if match is None:
        return None
    raw_ids = [part.strip() for part in match.group(1).split(",")]
    bad = [r for r in raw_ids if not _RULE_ID_RE.match(r)]
    if bad or not raw_ids:
        return MalformedSuppression(
            line, f"unparseable rule id(s) {bad or raw_ids} in suppression"
        )
    unknown = [r for r in raw_ids if r not in known_rules]
    if unknown:
        return MalformedSuppression(
            line, f"unknown rule id(s) {unknown} in suppression"
        )
    reason_match = _REASON_RE.match(match.group(2).strip())
    if reason_match is None or not reason_match.group(1).strip():
        return MalformedSuppression(
            line,
            "suppression is missing its mandatory justification "
            "(`# repro: ignore[RULE] — why this is safe`)",
        )
    return Suppression(line, tuple(raw_ids), reason_match.group(1).strip())


def fixture_pragma(text: str) -> tuple[bool, str | None]:
    """(is_fixture, virtual_path) from the first ten lines."""
    for line in text.splitlines()[:10]:
        match = _FIXTURE_RE.match(line.strip())
        if match:
            return True, match.group(1)
    return False, None


def annotate_parents(tree: ast.AST) -> None:
    """Stamp `_repro_parent` on every node so rules can walk outward."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def enclosing_function(node: ast.AST) -> ast.AST | None:
    """The innermost def/async-def containing ``node`` (None: module)."""
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = getattr(current, "_repro_parent", None)
    return None


def enclosing_class(node: ast.AST) -> ast.ClassDef | None:
    current = getattr(node, "_repro_parent", None)
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current
        current = getattr(current, "_repro_parent", None)
    return None


def load_source_file(path: str, known_rules: set[str]) -> SourceFile:
    """Read + parse one file; syntax errors become a finding later, not
    a crash (the analyzer must survive anything a PR can contain)."""
    with open(path, "r", encoding="utf-8", errors="replace") as fh:
        text = fh.read()
    is_fixture, virtual = fixture_pragma(text)
    tree: ast.Module | None = None
    syntax_error: str | None = None
    try:
        tree = ast.parse(text, filename=path)
        annotate_parents(tree)
    except SyntaxError as exc:
        syntax_error = f"{exc.msg} (line {exc.lineno})"
    sf = SourceFile(
        path=path.replace("\\", "/"),
        text=text,
        tree=tree,
        syntax_error=syntax_error,
        is_fixture=is_fixture,
        virtual_path=virtual,
    )
    for line, comment in _parse_comments(text):
        parsed = parse_suppression_comment(comment, line, known_rules)
        if isinstance(parsed, Suppression):
            sf.suppressions.append(parsed)
        elif isinstance(parsed, MalformedSuppression):
            sf.malformed.append(parsed)
    return sf
