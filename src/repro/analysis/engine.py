"""The analysis driver: discovery, rule execution, suppression, CLI.

``repro analyze [paths...]`` walks the given files/directories (default:
``src tests benchmarks``), runs every registered rule, subtracts
justified ``# repro: ignore[RULE] — reason`` waivers, and exits non-zero
on anything left — CI runs it with ``--format=github`` as a hard gate.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass, field
from typing import TextIO

from repro.analysis.findings import RULE_CATALOG, Finding
from repro.analysis.output import (
    render_github,
    render_rule_catalog,
    render_text,
)
from repro.analysis.rules import iter_file_rules, iter_project_rules
from repro.analysis.source import SourceFile, load_source_file

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class AnalysisReport:
    """Everything one run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files: list[SourceFile] = field(default_factory=list)


def discover_files(paths: list[str]) -> list[str]:
    """Python files under ``paths``; explicit file arguments are always
    taken (fixtures included), directory walks are pruned and sorted."""
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        out.append(os.path.join(dirpath, name))
        else:
            raise FileNotFoundError(path)
    # De-duplicate while keeping a deterministic order.
    seen: set[str] = set()
    unique = []
    for path in out:
        normalized = os.path.normpath(path).replace("\\", "/")
        if normalized not in seen:
            seen.add(normalized)
            unique.append(normalized)
    return unique


def analyze_paths(paths: list[str]) -> AnalysisReport:
    known_rules = set(RULE_CATALOG)
    report = AnalysisReport()
    explicit_files = {
        os.path.normpath(p).replace("\\", "/")
        for p in paths
        if os.path.isfile(p)
    }
    for path in discover_files(paths):
        sf = load_source_file(path, known_rules)
        if sf.is_fixture and path not in explicit_files:
            continue  # fixtures are scanned only when named explicitly
        report.files.append(sf)

    raw: list[Finding] = []
    for sf in report.files:
        if sf.syntax_error:
            # A file the analyzer cannot parse cannot be vouched for;
            # surface it through the same finding pipeline.
            raw.append(
                Finding(
                    "SUP001",
                    sf.path,
                    1,
                    f"file does not parse ({sf.syntax_error}); the "
                    "analyzer cannot check it",
                )
            )
            continue
        for rule in iter_file_rules():
            raw.extend(rule.check(sf))
    parsed = [sf for sf in report.files if sf.tree is not None]
    for project_rule in iter_project_rules():
        raw.extend(project_rule.check_project(parsed))

    by_path = {sf.path: sf for sf in report.files}
    for finding in raw:
        sf = by_path.get(finding.path)
        suppression = None
        if sf is not None and finding.rule_id not in ("SUP001", "SUP002"):
            candidates = [
                c
                for c in sf.suppressions
                if c.matches(finding.rule_id, finding.line)
            ]
            # Same-line waivers beat previous-line ones, and unused beat
            # used, so consecutive trailing waivers pair 1:1 with their
            # own lines instead of one swallowing its neighbour's finding.
            candidates.sort(
                key=lambda c: (c.line != finding.line, c.used)
            )
            suppression = candidates[0] if candidates else None
        if suppression is not None:
            suppression.used = True
            report.suppressed.append(finding)
        else:
            report.findings.append(finding)

    # The suppression mechanism polices itself: malformed waivers and
    # waivers that no longer waive anything are findings too.
    for sf in report.files:
        for malformed in sf.malformed:
            report.findings.append(
                Finding("SUP001", sf.path, malformed.line, malformed.message)
            )
        if sf.is_fixture:
            continue  # fixture suppressions document intent, not state
        for suppression in sf.suppressions:
            if not suppression.used:
                report.findings.append(
                    Finding(
                        "SUP002",
                        sf.path,
                        suppression.line,
                        "suppression "
                        f"[{', '.join(suppression.rule_ids)}] matches no "
                        "finding; delete the stale waiver",
                    )
                )

    report.findings.sort(key=Finding.sort_key)
    report.suppressed.sort(key=Finding.sort_key)
    return report


def analyze_main(
    argv: list[str] | None = None, out: TextIO | None = None
) -> int:
    out = out if out is not None else sys.stdout
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Static determinism/registry/concurrency lint for the repro "
            "tree (rule ids D*, R*, C*, B*, SUP*)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to scan (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help="github emits ::error workflow-command annotations",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        render_rule_catalog(out)
        return 0
    try:
        report = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro analyze: no such path: {exc}", file=sys.stderr)
        return 2
    renderer = render_github if args.format == "github" else render_text
    renderer(
        report.findings,
        len(report.suppressed),
        len(report.files),
        out,
    )
    return 1 if report.findings else 0
