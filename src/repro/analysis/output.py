"""Finding renderers: human text and GitHub workflow annotations."""

from __future__ import annotations

from typing import TextIO

from repro.analysis.findings import RULE_CATALOG, Finding


def render_text(
    findings: list[Finding],
    suppressed: int,
    files_scanned: int,
    out: TextIO,
) -> None:
    for finding in findings:
        out.write(
            f"{finding.path}:{finding.line}: {finding.rule_id} "
            f"{finding.message}\n"
        )
    if findings:
        out.write(
            f"\n{len(findings)} finding(s) in {files_scanned} file(s)"
            f" ({suppressed} suppressed by waivers).\n"
        )
    else:
        out.write(
            f"ok: no findings in {files_scanned} file(s)"
            f" ({suppressed} suppressed by waivers).\n"
        )


def _escape_annotation(text: str) -> str:
    # GitHub annotation data: % first, then newlines (workflow-command
    # escaping rules).
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def render_github(
    findings: list[Finding],
    suppressed: int,
    files_scanned: int,
    out: TextIO,
) -> None:
    """`::error` workflow commands: one inline PR annotation each."""
    for finding in findings:
        title = _escape_annotation(
            f"{finding.rule_id}: {RULE_CATALOG[finding.rule_id].title}"
        )
        message = _escape_annotation(finding.message)
        out.write(
            f"::error file={finding.path},line={finding.line},"
            f"title={title}::{message}\n"
        )
    if findings:
        out.write(
            f"{len(findings)} finding(s) in {files_scanned} file(s)"
            f" ({suppressed} suppressed by waivers).\n"
        )
    else:
        out.write(
            f"ok: no findings in {files_scanned} file(s)"
            f" ({suppressed} suppressed by waivers).\n"
        )


def render_rule_catalog(out: TextIO) -> None:
    for rule in RULE_CATALOG.values():
        out.write(f"{rule.rule_id}  {rule.title}\n")
        out.write(f"      {rule.rationale}\n")
