"""B-rules: exception hygiene.

The one mechanism for waiving these is the same `# repro: ignore[...]`
comment every other rule uses — the old scattering of ad-hoc
``noqa: BLE001`` markers was folded into it when this analyzer landed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileRule, register
from repro.analysis.source import SourceFile

_BROAD = ("Exception", "BaseException")


def _is_broad(handler_type: ast.AST | None) -> bool:
    if handler_type is None:  # bare `except:`
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(elt) for elt in handler_type.elts)
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    return any(isinstance(node, ast.Raise) for node in ast.walk(handler))


@register
class BroadExceptionSwallowed(FileRule):
    """B001: `except Exception` (or broader) that never re-raises."""

    rule_id = "B001"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or "repro/" not in sf.scope_path:
            return
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.ExceptHandler)
                and _is_broad(node.type)
                and not _reraises(node)
            ):
                yield self.finding(
                    sf,
                    node.lineno,
                    "broad exception handler swallows failures; narrow the "
                    "type, re-raise, or justify the shield with a "
                    "suppression",
                )
