"""Rule engine: base classes and the live rule registry.

Two rule shapes:

- :class:`FileRule` — looks at one parsed file at a time (most rules).
- :class:`ProjectRule` — looks at the whole file set at once (the
  cross-module R-rules that compare registries living in different
  modules).

Rules register themselves at import time via :func:`register`; the
engine iterates :data:`ALL_RULES`.  Each rule's id must exist in
:data:`repro.analysis.findings.RULE_CATALOG` so the catalog, the
suppression validator, and the docs cannot drift.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis.findings import RULE_CATALOG, Finding
from repro.analysis.source import SourceFile


class Rule:
    """Shared identity plumbing for both rule shapes."""

    rule_id: str = ""

    def __init__(self) -> None:
        if self.rule_id not in RULE_CATALOG:
            raise ValueError(f"rule id {self.rule_id!r} is not in the catalog")
        self.info = RULE_CATALOG[self.rule_id]

    def finding(self, sf: SourceFile, line: int, message: str) -> Finding:
        return Finding(self.rule_id, sf.path, line, message)


class FileRule(Rule):
    def check(self, sf: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError


ALL_RULES: list[Rule] = []


def register(cls: type) -> type:
    ALL_RULES.append(cls())
    return cls


def iter_file_rules() -> Iterable[FileRule]:
    return [r for r in ALL_RULES if isinstance(r, FileRule)]


def iter_project_rules() -> Iterable[ProjectRule]:
    return [r for r in ALL_RULES if isinstance(r, ProjectRule)]


# Import for side effect: each module registers its rules.
from repro.analysis.rules import concurrency as _concurrency  # noqa: E402,F401
from repro.analysis.rules import determinism as _determinism  # noqa: E402,F401
from repro.analysis.rules import hygiene as _hygiene  # noqa: E402,F401
from repro.analysis.rules import registry as _registry  # noqa: E402,F401
