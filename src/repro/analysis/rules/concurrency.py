"""C-rules: lock discipline, trace propagation at spawn sites, and
non-blocking async bodies.

Grounded in the PR 3 TOCTOU/state-leak sweep (C001), the PR 6 hand
audit of every thread-spawn site for trace propagation (C002), and the
service tier's single event loop serving every connected client (C003).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileRule, register
from repro.analysis.source import SourceFile, enclosing_function

#: Identifiers whose presence marks a spawn site as context-aware.
_CONTEXT_MARKERS = {"use_context", "current_context", "serve_span"}
#: self attribute names treated as locks when used in `with self.X:`.
_LOCK_HINTS = ("lock", "cond", "mutex")


def _attr_is_lock(name: str) -> bool:
    lowered = name.lower()
    if any(hint in lowered for hint in _LOCK_HINTS):
        return True
    # Condition variables abbreviated `cv` (`self._ops_cv`).
    return lowered == "cv" or lowered.endswith("_cv")


class _LockScopeVisitor(ast.NodeVisitor):
    """Record every `self.X = ...` store in a method, with lock depth."""

    def __init__(self) -> None:
        self.depth = 0
        self.stores: list[tuple[str, int, bool]] = []  # (attr, line, locked)

    def _locks_in(self, node: ast.With) -> int:
        count = 0
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and _attr_is_lock(expr.attr)
            ):
                count += 1
        return count

    def visit_With(self, node: ast.With) -> None:
        held = self._locks_in(node)
        self.depth += held
        self.generic_visit(node)
        self.depth -= held

    def _record(self, target: ast.AST) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and not _attr_is_lock(target.attr)
        ):
            self.stores.append((target.attr, target.lineno, self.depth > 0))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for elt in target.elts:
                    self._record(elt)
            else:
                self._record(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record(node.target)
        self.generic_visit(node)


@register
class LockDiscipline(FileRule):
    """C001: an attribute written under `with self._lock:` somewhere
    must never be written bare elsewhere (past __init__)."""

    rule_id = "C001"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or "repro/" not in sf.scope_path:
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locked_attrs: set[str] = set()
            bare: list[tuple[str, int]] = []
            for method in node.body:
                if not isinstance(
                    method, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                visitor = _LockScopeVisitor()
                visitor.visit(method)
                for attr, line, locked in visitor.stores:
                    if locked:
                        locked_attrs.add(attr)
                    elif method.name != "__init__":
                        bare.append((attr, line))
            for attr, line in sorted(bare, key=lambda pair: pair[1]):
                if attr in locked_attrs:
                    yield self.finding(
                        sf,
                        line,
                        f"self.{attr} is written under {node.name}'s lock "
                        "elsewhere but bare here: every post-__init__ "
                        "write must hold the same lock",
                    )


def _function_mentions_context(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id in _CONTEXT_MARKERS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _CONTEXT_MARKERS:
            return True
    return False


def _spawn_callable(node: ast.Call) -> ast.AST | None:
    """The callable a spawn site hands to another thread, if visible."""
    func = node.func
    if isinstance(func, (ast.Name, ast.Attribute)) and (
        (isinstance(func, ast.Name) and func.id == "Thread")
        or (isinstance(func, ast.Attribute) and func.attr == "Thread")
    ):
        for kw in node.keywords:
            if kw.arg == "target":
                return kw.value
        return node.args[0] if node.args else None
    # executor.submit(fn, ...) / executor.map(fn, ...)
    return node.args[0] if node.args else None


def _is_spawn_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "Thread":
        return True
    if isinstance(func, ast.Attribute):
        if func.attr == "Thread" and isinstance(func.value, ast.Name):
            return func.value.id == "threading"
        if func.attr in ("submit", "map"):
            receiver = func.value
            name = None
            if isinstance(receiver, ast.Name):
                name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                name = receiver.attr
            if name is not None:
                lowered = name.lower()
                return "pool" in lowered or "executor" in lowered
    return False


def _resolve_local_callable(
    target: ast.AST | None, sf: SourceFile, call: ast.Call
) -> ast.AST | None:
    """Resolve `target=self._x` / `target=f` to a def in this module."""
    if target is None:
        return None
    name: str | None = None
    if isinstance(target, ast.Name):
        name = target.id
    elif (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        name = target.attr
    if name is None:
        return None
    assert sf.tree is not None
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


@register
class SpawnWithoutContext(FileRule):
    """C002: thread spawns in engine/ and service/ must visibly thread
    the trace context — in the spawning function or in the target."""

    rule_id = "C002"

    def _applies(self, sf: SourceFile) -> bool:
        path = sf.scope_path
        return "repro/engine/" in path or "repro/service/" in path

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not self._applies(sf):
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call) or not _is_spawn_call(node):
                continue
            spawner = enclosing_function(node)
            if spawner is not None and _function_mentions_context(spawner):
                continue
            target = _resolve_local_callable(
                _spawn_callable(node), sf, node
            )
            if target is not None and _function_mentions_context(target):
                continue
            yield self.finding(
                sf,
                node.lineno,
                "thread spawn without trace-context propagation: capture "
                "current_context() and wrap the target in use_context "
                "(or serve_span), or suppress with the reason the spawned "
                "work carries no query context",
            )


#: (module, attr) calls that block the event loop.
_BLOCKING_MODULE_CALLS = {
    ("time", "sleep"),
    ("os", "system"),
    ("socket", "create_connection"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
}
#: attribute calls that block regardless of receiver.
_BLOCKING_ATTR_CALLS = {"result", "accept", "recv", "recvfrom"}


@register
class BlockingCallInAsync(FileRule):
    """C003: blocking calls directly inside `async def` bodies."""

    rule_id = "C003"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or "repro/" not in sf.scope_path:
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            func = enclosing_function(node)
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            callee = node.func
            if isinstance(callee, ast.Attribute):
                base = callee.value
                if (
                    isinstance(base, ast.Name)
                    and (base.id, callee.attr) in _BLOCKING_MODULE_CALLS
                ):
                    yield self.finding(
                        sf,
                        node.lineno,
                        f"{base.id}.{callee.attr}() blocks the event loop; "
                        "use the asyncio equivalent or run_in_executor",
                    )
                elif callee.attr in _BLOCKING_ATTR_CALLS:
                    yield self.finding(
                        sf,
                        node.lineno,
                        f".{callee.attr}() inside `async def {func.name}` "
                        "blocks the event loop for every client; await an "
                        "asyncio primitive instead",
                    )
