"""D-rules: determinism of sketch bytes.

Grounded in the PR 7 production bug: the engine merged partials in
thread-*completion* order, so Misra-Gries at capacity (an only-
approximately-commutative merge) produced different bytes run over run
and broke the worker-memo / computation-cache byte-identity invariant.
These rules make that whole bug class unrepresentable.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import FileRule, register
from repro.analysis.source import SourceFile, enclosing_function

#: Function names whose bodies are serialization/merge paths: the bytes
#: they produce must be canonical.
_SERIALIZATION_NAMES = ("encode", "merge", "to_json")
_SERIALIZATION_SUFFIXES = ("_to_json", "_payload")


def _in_repro_source(sf: SourceFile) -> bool:
    return "repro/" in sf.scope_path


def _is_serialization_function(name: str) -> bool:
    return name in _SERIALIZATION_NAMES or name.endswith(
        _SERIALIZATION_SUFFIXES
    )


def _call_name(func: ast.AST) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class CompletionOrderFold(FileRule):
    """D001: `as_completed` anywhere in repro source.

    Waiting on futures in completion order is exactly how the PR 7
    merge became byte-unstable; deterministic folds iterate the futures
    list in submission order instead (`for f in futures: f.result()`),
    which waits for stragglers just the same.
    """

    rule_id = "D001"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not _in_repro_source(sf):
            return
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and _call_name(node.func) == "as_completed"
            ):
                yield self.finding(
                    sf,
                    node.lineno,
                    "futures iterated in completion order; fold partials "
                    "in submission (shard/worker) order so merge bytes "
                    "are run-to-run identical",
                )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_unsorted_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


@register
class UnorderedSerializationIteration(FileRule):
    """D002: set / unsorted dict-view iteration in encode/merge paths."""

    rule_id = "D002"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not _in_repro_source(sf):
            return
        for node in ast.walk(sf.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                # A comprehension fed straight into sorted() is the
                # canonical-order idiom, not a leak.
                parent = getattr(node, "_repro_parent", None)
                if (
                    isinstance(parent, ast.Call)
                    and isinstance(parent.func, ast.Name)
                    and parent.func.id == "sorted"
                ):
                    continue
                iters.extend(gen.iter for gen in node.generators)
            else:
                continue
            func = enclosing_function(node)
            if func is None or not _is_serialization_function(func.name):
                continue
            for it in iters:
                if _is_set_expr(it):
                    yield self.finding(
                        sf,
                        it.lineno,
                        f"set iterated inside {func.name}(): set order is "
                        "memory-address dependent; sort or use a list",
                    )
                elif _is_unsorted_dict_view(it):
                    yield self.finding(
                        sf,
                        it.lineno,
                        f"dict .{it.func.attr}() iterated unsorted inside "
                        f"{func.name}(): insertion order leaks into "
                        "canonical bytes; wrap in sorted(...)",
                    )


#: Modules whose import into sketch code is a nondeterminism source.
_BANNED_SKETCH_IMPORTS = {"random", "secrets", "uuid", "time"}


@register
class NondeterminismInSketch(FileRule):
    """D003: wall clocks and entropy inside sketch kernels.

    Sketch code is everything under ``repro/sketches/`` plus the core
    Sketch contract module; ``core/rand.py`` is the one sanctioned home
    for seeded randomness (its helpers are pure functions of the seed).
    """

    rule_id = "D003"

    def _applies(self, sf: SourceFile) -> bool:
        path = sf.scope_path
        return "repro/sketches/" in path or path.endswith("repro/core/sketch.py")

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if sf.tree is None or not self._applies(sf):
            return
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _BANNED_SKETCH_IMPORTS:
                        yield self.finding(
                            sf,
                            node.lineno,
                            f"sketch code imports {alias.name!r}: kernels "
                            "must be pure functions of (table, seed); "
                            "seeded helpers live in core/rand.py",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if node.level == 0 and root in _BANNED_SKETCH_IMPORTS:
                    yield self.finding(
                        sf,
                        node.lineno,
                        f"sketch code imports from {node.module!r}: kernels "
                        "must be pure functions of (table, seed)",
                    )
            elif isinstance(node, ast.Attribute):
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "os"
                    and node.attr == "urandom"
                ):
                    yield self.finding(
                        sf,
                        node.lineno,
                        "os.urandom in sketch code: entropy makes summary "
                        "bytes unreproducible",
                    )
                elif (
                    isinstance(base, ast.Name)
                    and base.id in ("np", "numpy")
                    and node.attr == "random"
                ):
                    yield self.finding(
                        sf,
                        node.lineno,
                        "np.random in sketch code: use the stable seeded "
                        "helpers in core/rand.py instead",
                    )
