"""R-rules: registry completeness across modules.

The engine's wire registries live in ``engine/rpc.py`` (builders,
encoders, summary codecs/parsers) and the differential-harness surface
lives in ``sketches/specs.py``.  A new sketch that lands in one table
but not its inverses works in whatever path its author tested and
silently fails in the others — these rules make the tables provably
closed, and :func:`extract_registry_view` exposes the same static
extraction to a runtime cross-check test so the rules cannot drift from
the live dictionaries they model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ProjectRule, register
from repro.analysis.source import SourceFile

_RPC_SUFFIX = "repro/engine/rpc.py"
_SPECS_SUFFIX = "repro/sketches/specs.py"

#: Names from the shared binning kernel: using one marks a sketch class
#: as vectorized even if its author forgot everything else.
_KERNEL_MARKERS = {"bin_rows", "bincount"}


def _dict_literal_keys(tree: ast.Module, name: str) -> tuple[list[str], int]:
    """String keys of the module-level ``name = {...}`` literal and the
    assignment's line (0 when absent)."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in targets
        ):
            continue
        if not isinstance(value, ast.Dict):
            return [], node.lineno
        keys = [
            k.value
            for k in value.keys
            if isinstance(k, ast.Constant) and isinstance(k.value, str)
        ]
        return keys, node.lineno
    return [], 0


def _encoder_type_tags(tree: ast.Module) -> set[str]:
    """`"type"` values returned by the ``_encode_*`` family."""
    tags: set[str] = set()
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.FunctionDef)
            and node.name.startswith("_encode_")
        ):
            continue
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Dict):
                continue
            for key, value in zip(sub.keys, sub.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "type"
                    and isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    tags.add(value.value)
    return tags


@dataclass
class _SketchClass:
    name: str
    bases: list[str]
    methods: set[str]
    uses_kernel: bool
    line: int
    sf: SourceFile


@dataclass
class RegistryView:
    """Everything the R-rules (and the runtime cross-check) extract."""

    sketch_builder_keys: list[str] = field(default_factory=list)
    builders_line: int = 0
    encoder_type_tags: set[str] = field(default_factory=set)
    summary_codec_keys: list[str] = field(default_factory=list)
    codecs_line: int = 0
    summary_parser_keys: list[str] = field(default_factory=list)
    parsers_line: int = 0
    spec_names: list[str] = field(default_factory=list)
    spec_referenced_classes: set[str] = field(default_factory=set)
    sketch_classes: dict[str, _SketchClass] = field(default_factory=dict)
    rpc_file: SourceFile | None = None
    specs_file: SourceFile | None = None


def _collect_sketch_classes(
    sf: SourceFile, view: RegistryView
) -> None:
    assert sf.tree is not None
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if not node.name.endswith("Sketch"):
            continue
        bases = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                bases.append(base.id)
            elif isinstance(base, ast.Attribute):
                bases.append(base.attr)
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        uses_kernel = any(
            (isinstance(sub, ast.Name) and sub.id in _KERNEL_MARKERS)
            or (
                isinstance(sub, ast.Attribute)
                and sub.attr in _KERNEL_MARKERS
            )
            for sub in ast.walk(node)
        )
        view.sketch_classes[node.name] = _SketchClass(
            node.name, bases, methods, uses_kernel, node.lineno, sf
        )


def _collect_specs(sf: SourceFile, view: RegistryView) -> None:
    assert sf.tree is not None
    view.specs_file = sf
    view.spec_referenced_classes = {
        node.id
        for node in ast.walk(sf.tree)
        if isinstance(node, ast.Name) and node.id.endswith("Sketch")
    }
    # Spec names: the first constant argument of SketchSpec(...) calls.
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "SketchSpec"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            view.spec_names.append(node.args[0].value)


def extract_registry_view(files: list[SourceFile]) -> RegistryView:
    """The static truth about every registry, from dict/class literals.

    ``tests/test_analysis.py`` imports the live modules and asserts they
    agree with this extraction, so the R-rules cannot rot as the real
    registries evolve.
    """
    view = RegistryView()
    for sf in files:
        if sf.tree is None:
            continue
        path = sf.scope_path
        if path.endswith(_RPC_SUFFIX):
            view.rpc_file = sf
            view.sketch_builder_keys, view.builders_line = _dict_literal_keys(
                sf.tree, "SKETCH_BUILDERS"
            )
            view.encoder_type_tags = _encoder_type_tags(sf.tree)
            view.summary_codec_keys, view.codecs_line = _dict_literal_keys(
                sf.tree, "SUMMARY_CODECS"
            )
            view.summary_parser_keys, view.parsers_line = _dict_literal_keys(
                sf.tree, "SUMMARY_PARSERS"
            )
        elif path.endswith(_SPECS_SUFFIX):
            _collect_specs(sf, view)
        elif "repro/sketches/" in path:
            _collect_sketch_classes(sf, view)
    return view


def _has_oracle(cls: _SketchClass, view: RegistryView) -> bool:
    """summarize_reference defined on the class or an ancestor we can
    see (single inheritance within the sketches package)."""
    seen: set[str] = set()
    stack = [cls.name]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        current = view.sketch_classes.get(name)
        if current is None:
            continue
        if "summarize_reference" in current.methods:
            return True
        stack.extend(current.bases)
    return False


@register
class BuilderEncoderParity(ProjectRule):
    """R001: every SKETCH_BUILDERS key has a JSON encoder inverse."""

    rule_id = "R001"

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        view = extract_registry_view(files)
        if view.rpc_file is None or not view.sketch_builder_keys:
            return
        for key in view.sketch_builder_keys:
            if key not in view.encoder_type_tags:
                yield self.finding(
                    view.rpc_file,
                    view.builders_line,
                    f"sketch type {key!r} has a builder but no _encode_* "
                    "inverse emitting that \"type\" tag: the root cannot "
                    "broadcast it to worker daemons",
                )


@register
class SummaryCodecParity(ProjectRule):
    """R002: SUMMARY_CODECS and SUMMARY_PARSERS cover the same tags."""

    rule_id = "R002"

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        view = extract_registry_view(files)
        if view.rpc_file is None:
            return
        codecs = set(view.summary_codec_keys)
        parsers = set(view.summary_parser_keys)
        if not codecs or not parsers:
            return
        for tag in sorted(parsers - codecs):
            yield self.finding(
                view.rpc_file,
                view.codecs_line,
                f"summary tag {tag!r} has a JSON parser but no binary "
                "codec: the binary wire cannot carry it",
            )
        for tag in sorted(codecs - parsers):
            yield self.finding(
                view.rpc_file,
                view.parsers_line,
                f"summary tag {tag!r} has a binary codec but no JSON "
                "parser: the REPRO_WIRE_JSON=1 leg cannot carry it",
            )


@register
class VectorizedSketchEnrollment(ProjectRule):
    """R003: vectorized sketches keep their oracle and a spec entry."""

    rule_id = "R003"

    def check_project(self, files: list[SourceFile]) -> Iterator[Finding]:
        view = extract_registry_view(files)
        for cls in sorted(view.sketch_classes.values(), key=lambda c: c.name):
            vectorized = cls.uses_kernel or "summarize_reference" in cls.methods
            if not vectorized:
                continue
            if not _has_oracle(cls, view):
                yield self.finding(
                    cls.sf,
                    cls.line,
                    f"{cls.name} uses the vectorized binning kernel but "
                    "defines no summarize_reference per-row oracle: the "
                    "differential harness cannot check it",
                )
            if (
                view.specs_file is not None
                and cls.name not in view.spec_referenced_classes
            ):
                yield self.finding(
                    cls.sf,
                    cls.line,
                    f"vectorized sketch {cls.name} is not registered in "
                    "sketches/specs.py: it silently skips the kernel-"
                    "equivalence fuzz and the leaf perf gate",
                )
