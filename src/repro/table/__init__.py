"""In-memory columnar tables — the substrate vizketches compute over.

Hillview keeps data in columnar form with dictionary-encoded strings and
arrays of base types (paper §6).  Filtered tables share column storage with
their parent and carry a *membership set* describing which rows they contain
(paper §5.6); user-defined maps derive new columns at the leaves.
"""

from repro.table.schema import ContentsKind, ColumnDescription, Schema
from repro.table.column import (
    Column,
    IntColumn,
    DoubleColumn,
    DateColumn,
    StringColumn,
    column_from_values,
)
from repro.table.membership import (
    MembershipSet,
    FullMembership,
    DenseMembership,
    SparseMembership,
    membership_from_mask,
    membership_from_indices,
)
from repro.table.table import Table
from repro.table.sort import ColumnSortOrientation, RecordOrder, RowKey
from repro.table.compute import (
    Predicate,
    ColumnPredicate,
    AndPredicate,
    OrPredicate,
    NotPredicate,
    StringMatchPredicate,
    derive_column,
)

__all__ = [
    "ContentsKind",
    "ColumnDescription",
    "Schema",
    "Column",
    "IntColumn",
    "DoubleColumn",
    "DateColumn",
    "StringColumn",
    "column_from_values",
    "MembershipSet",
    "FullMembership",
    "DenseMembership",
    "SparseMembership",
    "membership_from_mask",
    "membership_from_indices",
    "Table",
    "ColumnSortOrientation",
    "RecordOrder",
    "RowKey",
    "Predicate",
    "ColumnPredicate",
    "AndPredicate",
    "OrPredicate",
    "NotPredicate",
    "StringMatchPredicate",
    "derive_column",
]
