"""Row predicates and derived columns (paper §5.6).

Selection (filtering) and user-defined maps are the two data transformations
Hillview supports.  Predicates are declarative value objects with a stable
``spec()`` so the engine's redo log can replay them deterministically after
a failure; user-defined maps carry a Python callable (the analogue of
Hillview's user-supplied JavaScript) and are replayed by re-invoking it.

String predicates evaluate against the column *dictionary* first and then
map codes, so a substring search over a billion rows touches each distinct
string once (paper §6: dictionary encoding).
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.errors import ColumnKindError, SchemaError
from repro.table.column import Column, column_from_values
from repro.table.dictionary import MISSING_CODE
from repro.table.column import StringColumn
from repro.table.schema import ContentsKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.table.table import Table


class Predicate(ABC):
    """A boolean condition over rows, evaluated vectorized per shard."""

    @abstractmethod
    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        """Boolean array aligned with ``rows``."""

    @abstractmethod
    def spec(self) -> str:
        """Deterministic description used for redo-log replay and caching."""

    def __and__(self, other: "Predicate") -> "Predicate":
        return AndPredicate([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return OrPredicate([self, other])

    def __invert__(self) -> "Predicate":
        return NotPredicate(self)

    def __repr__(self) -> str:
        return self.spec()


_NUMERIC_OPS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class ColumnPredicate(Predicate):
    """Compare one column against a constant (or range / value set).

    Supported operators: ``== != < <= > >= between in is_missing``.
    Missing cells never satisfy a comparison (SQL-like semantics), except
    for the ``is_missing`` operator.
    """

    def __init__(self, column: str, op: str, value: object = None):
        if op not in (*_NUMERIC_OPS, "between", "in", "is_missing"):
            raise SchemaError(f"unknown predicate operator {op!r}")
        self.column = column
        self.op = op
        self.value = value

    def spec(self) -> str:
        return f"ColumnPredicate({self.column!r},{self.op!r},{self.value!r})"

    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        column = table.column(self.column)
        if self.op == "is_missing":
            return column.missing_mask()[rows]
        if column.kind.is_string:
            return self._evaluate_string(column, rows)
        return self._evaluate_numeric(column, rows)

    def _evaluate_numeric(self, column: Column, rows: np.ndarray) -> np.ndarray:
        values = column.numeric_values(rows)
        with np.errstate(invalid="ignore"):
            if self.op == "between":
                lo, hi = self.value  # type: ignore[misc]
                result = (values >= float(lo)) & (values <= float(hi))
            elif self.op == "in":
                result = np.isin(values, np.asarray(list(self.value), dtype=np.float64))  # type: ignore[arg-type]
            else:
                result = _NUMERIC_OPS[self.op](values, float(self.value))  # type: ignore[arg-type]
        result &= ~np.isnan(values)
        return result

    def _evaluate_string(self, column: Column, rows: np.ndarray) -> np.ndarray:
        if not isinstance(column, StringColumn):
            raise ColumnKindError(f"column {self.column!r} is not a string column")
        # Evaluate once per dictionary entry, then map through codes.
        dictionary = column.dictionary.values
        if self.op == "between":
            lo, hi = self.value  # type: ignore[misc]
            ok = np.array([lo <= v <= hi for v in dictionary], dtype=bool)
        elif self.op == "in":
            wanted = set(self.value)  # type: ignore[arg-type]
            ok = np.array([v in wanted for v in dictionary], dtype=bool)
        else:
            op = _NUMERIC_OPS[self.op]
            target = str(self.value)
            if self.op in ("==", "!="):
                ok = np.array(
                    [(v == target) if self.op == "==" else (v != target) for v in dictionary],
                    dtype=bool,
                )
            else:
                ok = np.array([bool(op(v, target)) for v in dictionary], dtype=bool)
        codes = column.codes_at(rows)
        result = np.zeros(len(rows), dtype=bool)
        present = codes != MISSING_CODE
        result[present] = ok[codes[present]]
        return result


class StringMatchPredicate(Predicate):
    """Free-form text search (paper §3.3): exact, substring, or regexp.

    The pattern is evaluated against each *distinct* dictionary string once.
    """

    MODES = ("exact", "substring", "regex")

    def __init__(
        self,
        column: str,
        pattern: str,
        mode: str = "substring",
        case_sensitive: bool = True,
    ):
        if mode not in self.MODES:
            raise SchemaError(f"unknown match mode {mode!r}")
        self.column = column
        self.pattern = pattern
        self.mode = mode
        self.case_sensitive = case_sensitive

    def spec(self) -> str:
        return (
            f"StringMatchPredicate({self.column!r},{self.pattern!r},"
            f"{self.mode!r},cs={self.case_sensitive})"
        )

    def matcher(self) -> Callable[[str], bool]:
        """A predicate over a single string implementing this search."""
        pattern = self.pattern
        if self.mode == "regex":
            flags = 0 if self.case_sensitive else re.IGNORECASE
            compiled = re.compile(pattern, flags)
            return lambda s: compiled.search(s) is not None
        if not self.case_sensitive:
            pattern = pattern.lower()
            if self.mode == "exact":
                return lambda s: s.lower() == pattern
            return lambda s: pattern in s.lower()
        if self.mode == "exact":
            return lambda s: s == pattern
        return lambda s: pattern in s

    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        column = table.column(self.column)
        if not isinstance(column, StringColumn):
            raise ColumnKindError(
                f"text search requires a string column, got {self.column!r}"
            )
        match = self.matcher()
        ok = np.array([match(v) for v in column.dictionary.values], dtype=bool)
        codes = column.codes_at(rows)
        result = np.zeros(len(rows), dtype=bool)
        present = codes != MISSING_CODE
        result[present] = ok[codes[present]]
        return result


class AndPredicate(Predicate):
    def __init__(self, parts: Iterable[Predicate]):
        self.parts = list(parts)
        if not self.parts:
            raise SchemaError("AndPredicate needs at least one part")

    def spec(self) -> str:
        return "And(" + ",".join(p.spec() for p in self.parts) + ")"

    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        result = self.parts[0].evaluate(table, rows)
        for part in self.parts[1:]:
            # Short-circuit: only evaluate remaining parts where still true.
            if not result.any():
                break
            result = result & part.evaluate(table, rows)
        return result


class OrPredicate(Predicate):
    def __init__(self, parts: Iterable[Predicate]):
        self.parts = list(parts)
        if not self.parts:
            raise SchemaError("OrPredicate needs at least one part")

    def spec(self) -> str:
        return "Or(" + ",".join(p.spec() for p in self.parts) + ")"

    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        result = self.parts[0].evaluate(table, rows)
        for part in self.parts[1:]:
            result = result | part.evaluate(table, rows)
        return result


class NotPredicate(Predicate):
    def __init__(self, inner: Predicate):
        self.inner = inner

    def spec(self) -> str:
        return f"Not({self.inner.spec()})"

    def evaluate(self, table: "Table", rows: np.ndarray) -> np.ndarray:
        return ~self.inner.evaluate(table, rows)


def derive_column(
    table: "Table",
    name: str,
    kind: ContentsKind,
    fn: Callable,
    vectorized: bool = False,
) -> Column:
    """Compute a new column from existing ones via a user-defined map (§5.6).

    ``fn`` receives a dict per row (``{column_name: value}``) and returns the
    new cell value, or — when ``vectorized`` — a dict of numpy arrays /
    string lists covering the member rows at once and returns an array.

    The column is materialized only for the table's member rows; other
    universe positions are missing, mirroring Hillview computing derived
    columns at the leaves for the current membership.
    """
    rows = table.members.indices()
    if vectorized:
        arrays: dict[str, object] = {}
        for desc in table.schema:
            column = table.column(desc.name)
            if desc.kind.is_string:
                arrays[desc.name] = column.string_values(rows)
            else:
                arrays[desc.name] = column.numeric_values(rows)
        values = list(fn(arrays))
    else:
        values = [fn(table.row(int(r))) for r in rows]
    if len(values) != len(rows):
        raise SchemaError(
            f"map function returned {len(values)} values for {len(rows)} rows"
        )
    # Scatter member-row values into a universe-sized column.
    universe = [None] * table.universe_size
    for row, value in zip(rows, values):
        universe[int(row)] = value
    return column_from_values(name, universe, kind)
