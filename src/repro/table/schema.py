"""Column kinds, column descriptions and table schemas.

The paper targets integers, floating-point numbers, dates, free-form text
and categorical strings (§3.5).  ``CATEGORY`` and ``STRING`` share a storage
representation (dictionary encoding) and differ only in intent: categorical
columns are expected to have few distinct values.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from repro.errors import MissingColumnError, SchemaError


class ContentsKind(str, Enum):
    """The data type of a column (paper §3.5)."""

    INTEGER = "integer"
    DOUBLE = "double"
    DATE = "date"
    STRING = "string"
    CATEGORY = "category"

    @property
    def is_numeric(self) -> bool:
        """Kinds readily convertible to a real number (§4.3: dates qualify)."""
        return self in (ContentsKind.INTEGER, ContentsKind.DOUBLE, ContentsKind.DATE)

    @property
    def is_string(self) -> bool:
        return self in (ContentsKind.STRING, ContentsKind.CATEGORY)


@dataclass(frozen=True)
class ColumnDescription:
    """Name and kind of one column."""

    name: str
    kind: ContentsKind

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")

    def to_json(self) -> dict:
        return {"name": self.name, "kind": self.kind.value}

    @classmethod
    def from_json(cls, data: dict) -> "ColumnDescription":
        return cls(name=data["name"], kind=ContentsKind(data["kind"]))


class Schema:
    """An ordered collection of column descriptions."""

    def __init__(self, columns: Iterable[ColumnDescription]):
        self._columns: list[ColumnDescription] = list(columns)
        self._by_name: dict[str, ColumnDescription] = {}
        for desc in self._columns:
            if desc.name in self._by_name:
                raise SchemaError(f"duplicate column name {desc.name!r}")
            self._by_name[desc.name] = desc

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[ColumnDescription]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self._columns == other._columns

    def __hash__(self) -> int:
        return hash(tuple(self._columns))

    @property
    def names(self) -> list[str]:
        return [desc.name for desc in self._columns]

    def get(self, name: str) -> ColumnDescription:
        try:
            return self._by_name[name]
        except KeyError:
            raise MissingColumnError(name, self.names) from None

    def kind(self, name: str) -> ContentsKind:
        return self.get(name).kind

    def require_numeric(self, name: str) -> ColumnDescription:
        """The description of ``name``, which must be numeric-convertible."""
        desc = self.get(name)
        if not desc.kind.is_numeric:
            raise SchemaError(f"column {name!r} of kind {desc.kind.value} is not numeric")
        return desc

    def require_string(self, name: str) -> ColumnDescription:
        desc = self.get(name)
        if not desc.kind.is_string:
            raise SchemaError(f"column {name!r} of kind {desc.kind.value} is not string")
        return desc

    def project(self, names: Iterable[str]) -> "Schema":
        """A schema containing only ``names``, in the given order."""
        return Schema(self.get(name) for name in names)

    def append(self, desc: ColumnDescription) -> "Schema":
        if desc.name in self._by_name:
            raise SchemaError(f"column {desc.name!r} already exists")
        return Schema(self._columns + [desc])

    def to_json(self) -> list[dict]:
        return [desc.to_json() for desc in self._columns]

    def to_json_string(self) -> str:
        return json.dumps(self.to_json())

    @classmethod
    def from_json(cls, data: list[dict]) -> "Schema":
        return cls(ColumnDescription.from_json(item) for item in data)

    @classmethod
    def from_json_string(cls, text: str) -> "Schema":
        return cls.from_json(json.loads(text))

    def __repr__(self) -> str:
        cols = ", ".join(f"{d.name}:{d.kind.value}" for d in self._columns)
        return f"Schema({cols})"
