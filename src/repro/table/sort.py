"""Sort orders over table rows (paper §3.3: sort by a set of columns).

Two representations cooperate:

* within one shard, sorting is vectorized through per-column numeric
  *surrogates* (dictionary ranks for strings, -inf for missing values);
* across shards, rows are compared through :class:`RowKey`, built from the
  actual cell values, because surrogate ranks are only meaningful within a
  single shard's dictionary.

Missing values sort before present values in ascending order; a descending
orientation reverses the entire component, missing-ness included.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.serialization import Decoder, Encoder
from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover
    from repro.table.table import Table


@dataclass(frozen=True)
class ColumnSortOrientation:
    """One column of a sort order with its direction."""

    column: str
    ascending: bool = True

    def spec(self) -> str:
        return f"{self.column}:{'asc' if self.ascending else 'desc'}"


def _cmp(a, b) -> int:
    return (a > b) - (a < b)


@functools.total_ordering
class RowKey:
    """A row's position in a :class:`RecordOrder`, comparable across shards.

    ``parts`` holds one ``(present, value)`` pair per sort column, where
    ``present`` is 0 for missing cells (so they sort first ascending) and
    ``value`` is the actual cell value.  ``directions`` holds +1/-1 per
    column.  Equality of keys defines row dedup-aggregation in tabular views.
    """

    __slots__ = ("parts", "directions")

    def __init__(self, parts: tuple, directions: tuple):
        self.parts = parts
        self.directions = directions

    def compare(self, other: "RowKey") -> int:
        for (p1, v1), (p2, v2), direction in zip(
            self.parts, other.parts, self.directions
        ):
            c = _cmp(p1, p2)
            if c == 0 and p1 == 1:
                c = _cmp(v1, v2)
            if c != 0:
                return c * direction
        return 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RowKey) and self.compare(other) == 0

    def __lt__(self, other: "RowKey") -> bool:
        return self.compare(other) < 0

    def __hash__(self) -> int:
        return hash(self.parts)

    def values(self) -> tuple:
        """The raw cell values (None for missing), in sort-column order."""
        return tuple(v if p else None for p, v in self.parts)

    def __repr__(self) -> str:
        return f"RowKey{self.values()!r}"


class RecordOrder:
    """An ordered list of column sort orientations."""

    def __init__(self, orientations: Iterable[ColumnSortOrientation]):
        self.orientations = list(orientations)
        if not self.orientations:
            raise SchemaError("a sort order needs at least one column")
        names = [o.column for o in self.orientations]
        if len(names) != len(set(names)):
            raise SchemaError("sort order repeats a column")

    @classmethod
    def of(cls, *columns: str, ascending: bool | Sequence[bool] = True) -> "RecordOrder":
        """Convenience constructor: ``RecordOrder.of("a", "b")``."""
        if isinstance(ascending, bool):
            flags = [ascending] * len(columns)
        else:
            flags = list(ascending)
            if len(flags) != len(columns):
                raise SchemaError("ascending flags must match column count")
        return cls(
            ColumnSortOrientation(c, a) for c, a in zip(columns, flags)
        )

    def reversed(self) -> "RecordOrder":
        """The same columns with every direction flipped.

        Traversing the reversed order is how the spreadsheet pages
        *backward* (§3.3): the rows preceding a key forward are exactly the
        rows following it in the reversed order.
        """
        return RecordOrder(
            ColumnSortOrientation(o.column, not o.ascending)
            for o in self.orientations
        )

    @property
    def columns(self) -> list[str]:
        return [o.column for o in self.orientations]

    @property
    def directions(self) -> tuple:
        return tuple(1 if o.ascending else -1 for o in self.orientations)

    def spec(self) -> str:
        return ",".join(o.spec() for o in self.orientations)

    def surrogate_keys(
        self, table: "Table", rows: np.ndarray
    ) -> list[np.ndarray]:
        """Per-column numeric keys aligned with ``rows`` (shard-local).

        Descending columns are negated (missing values, at -inf, thereby
        move to +inf, i.e. last — consistent with :class:`RowKey`).
        """
        keys = []
        for orientation in self.orientations:
            surrogate = table.column(orientation.column).sort_surrogate(rows)
            keys.append(surrogate if orientation.ascending else -surrogate)
        return keys

    def argsort(self, table: "Table", rows: np.ndarray | None = None) -> np.ndarray:
        """``rows`` reordered by this order (stable; ties keep row order).

        Returns row *indexes* into the table's universe, sorted.
        """
        if rows is None:
            rows = table.members.indices()
        if len(rows) == 0:
            return rows
        keys = self.surrogate_keys(table, rows)
        # np.lexsort uses the *last* key as primary; append row order last
        # reversed so the first orientation dominates and ties stay stable.
        order = np.lexsort(list(reversed(keys)))
        return rows[order]

    def row_key(self, table: "Table", row: int) -> RowKey:
        """The cross-shard comparable key of ``row``."""
        parts = []
        for orientation in self.orientations:
            column = table.column(orientation.column)
            value = column.value(row)
            parts.append((0, None) if value is None else (1, value))
        return RowKey(tuple(parts), self.directions)

    def key_from_values(self, values: Sequence[object]) -> RowKey:
        """A :class:`RowKey` from raw cell values (None = missing)."""
        parts = tuple((0, None) if v is None else (1, v) for v in values)
        return RowKey(parts, self.directions)

    def encode(self, enc: Encoder) -> None:
        enc.write_uvarint(len(self.orientations))
        for o in self.orientations:
            enc.write_str(o.column)
            enc.write_bool(o.ascending)

    @classmethod
    def decode(cls, dec: Decoder) -> "RecordOrder":
        count = dec.read_uvarint()
        return cls(
            ColumnSortOrientation(dec.read_str() or "", dec.read_bool())
            for _ in range(count)
        )

    def __repr__(self) -> str:
        return f"RecordOrder({self.spec()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RecordOrder) and self.orientations == other.orientations
