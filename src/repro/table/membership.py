"""Membership sets: which rows of a shared universe belong to a table.

Filtering in Hillview never copies column data.  A derived (filtered) table
shares its parent's columns and stores a *membership set* (paper §5.6):

* dense tables that contain most rows store a bitmap;
* sparse tables store the set of row indexes.

Sampling must be efficient (not read every row) yet uniform.  Following the
paper:

* sparse sets sample by returning elements in sorted order of their *hash
  values* (bottom-k / hash-threshold sampling);
* dense sets "walk randomly the bitmap in increasing index order"
  (geometric skip sampling).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.rand import hash_indices

#: Below this member density a filtered set is stored sparsely.
SPARSE_DENSITY_THRESHOLD = 1.0 / 8.0

_HASH_SPAN = float(1 << 64)


def _sample_without_replacement(
    population: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """``k`` distinct elements of ``population``, uniformly, sorted."""
    size = len(population)
    if k >= size:
        return np.sort(population)
    positions = rng.choice(size, size=k, replace=False)
    return np.sort(population[positions])


def _skip_walk_positions(size: int, rate: float, rng: np.random.Generator) -> np.ndarray:
    """Positions of a Bernoulli(rate) sample of ``range(size)``.

    Implemented as the paper's increasing-index random walk: successive gaps
    are geometric, so only the selected positions are touched.
    """
    if rate >= 1.0:
        return np.arange(size, dtype=np.int64)
    expected = int(size * rate)
    chunks: list[np.ndarray] = []
    position = -1
    # Draw geometric gaps in batches until the walk leaves the range.
    batch = max(64, int(expected * 1.2) + 16)
    while position < size:
        gaps = rng.geometric(rate, size=batch).astype(np.int64)
        steps = np.cumsum(gaps) + position
        inside = steps[steps < size]
        chunks.append(inside)
        if len(inside) < len(steps):
            break
        position = int(steps[-1])
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(chunks)


class MembershipSet(ABC):
    """An immutable subset of ``range(universe_size)``."""

    def __init__(self, universe_size: int):
        if universe_size < 0:
            raise ValueError("universe size must be >= 0")
        self.universe_size = int(universe_size)

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of member rows."""

    @property
    def density(self) -> float:
        if self.universe_size == 0:
            return 0.0
        return self.size / self.universe_size

    @abstractmethod
    def indices(self) -> np.ndarray:
        """Sorted int64 array of member row indexes (do not mutate)."""

    @abstractmethod
    def mask(self) -> np.ndarray:
        """Boolean membership mask over the universe."""

    @abstractmethod
    def contains(self, row: int) -> bool:
        """Whether ``row`` belongs to this set."""

    @abstractmethod
    def sample(self, k: int, rng: np.random.Generator) -> np.ndarray:
        """``k`` distinct member rows, uniformly at random, sorted.

        Returns all members when ``k >= size``.
        """

    @abstractmethod
    def sample_rate(self, rate: float, rng: np.random.Generator) -> np.ndarray:
        """A Bernoulli(rate) sample of the member rows, sorted."""

    def intersect_mask(self, mask: np.ndarray) -> "MembershipSet":
        """Members for which ``mask`` (a universe-sized bool array) holds."""
        selected = self.indices()
        kept = selected[mask[selected]]
        return membership_from_indices(kept, self.universe_size)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.size}/{self.universe_size} rows>"
        )


class FullMembership(MembershipSet):
    """Every row of the universe is a member (an unfiltered table)."""

    def __init__(self, universe_size: int):
        super().__init__(universe_size)
        self._indices: np.ndarray | None = None

    @property
    def size(self) -> int:
        return self.universe_size

    def indices(self) -> np.ndarray:
        if self._indices is None:
            self._indices = np.arange(self.universe_size, dtype=np.int64)
        return self._indices

    def mask(self) -> np.ndarray:
        return np.ones(self.universe_size, dtype=bool)

    def contains(self, row: int) -> bool:
        return 0 <= row < self.universe_size

    def sample(self, k: int, rng: np.random.Generator) -> np.ndarray:
        if k >= self.universe_size:
            return self.indices()
        return np.sort(rng.choice(self.universe_size, size=k, replace=False))

    def sample_rate(self, rate: float, rng: np.random.Generator) -> np.ndarray:
        return _skip_walk_positions(self.universe_size, rate, rng)


class DenseMembership(MembershipSet):
    """Bitmap-backed membership for sets containing most rows (§5.6)."""

    def __init__(self, bitmap: np.ndarray):
        bitmap = np.asarray(bitmap, dtype=bool)
        super().__init__(len(bitmap))
        self._bitmap = bitmap
        self._indices: np.ndarray | None = None
        self._size = int(bitmap.sum())

    @property
    def size(self) -> int:
        return self._size

    def indices(self) -> np.ndarray:
        if self._indices is None:
            self._indices = np.flatnonzero(self._bitmap).astype(np.int64)
        return self._indices

    def mask(self) -> np.ndarray:
        return self._bitmap

    def contains(self, row: int) -> bool:
        return 0 <= row < self.universe_size and bool(self._bitmap[row])

    def sample(self, k: int, rng: np.random.Generator) -> np.ndarray:
        return _sample_without_replacement(self.indices(), k, rng)

    def sample_rate(self, rate: float, rng: np.random.Generator) -> np.ndarray:
        # Random walk over member positions in increasing index order.
        members = self.indices()
        positions = _skip_walk_positions(len(members), rate, rng)
        return members[positions]


class SparseMembership(MembershipSet):
    """Index-set membership for sparse filtered tables (§5.6).

    Sampling uses per-row hash values: a Bernoulli(rate) sample keeps the
    rows whose 64-bit hash falls below ``rate * 2**64``, and a fixed-size
    sample keeps the ``k`` smallest hashes (bottom-k), both uniform.
    """

    def __init__(self, indices: np.ndarray, universe_size: int):
        indices = np.asarray(indices, dtype=np.int64)
        super().__init__(universe_size)
        if len(indices) and (indices.min() < 0 or indices.max() >= universe_size):
            raise ValueError("membership index out of universe range")
        self._indices = np.unique(indices)

    @property
    def size(self) -> int:
        return len(self._indices)

    def indices(self) -> np.ndarray:
        return self._indices

    def mask(self) -> np.ndarray:
        out = np.zeros(self.universe_size, dtype=bool)
        out[self._indices] = True
        return out

    def contains(self, row: int) -> bool:
        pos = np.searchsorted(self._indices, row)
        return pos < len(self._indices) and self._indices[pos] == row

    def _hashes(self, rng: np.random.Generator) -> np.ndarray:
        seed = int(rng.integers(1 << 62))
        return hash_indices(self._indices, seed)

    def sample(self, k: int, rng: np.random.Generator) -> np.ndarray:
        if k >= self.size:
            return self._indices
        hashes = self._hashes(rng)
        smallest = np.argpartition(hashes, k)[:k]
        return np.sort(self._indices[smallest])

    def sample_rate(self, rate: float, rng: np.random.Generator) -> np.ndarray:
        if rate >= 1.0:
            return self._indices
        hashes = self._hashes(rng)
        threshold = np.uint64(min(rate * _HASH_SPAN, _HASH_SPAN - 1))
        return self._indices[hashes < threshold]


def membership_from_mask(mask: np.ndarray) -> MembershipSet:
    """The appropriate representation for ``mask`` (paper §5.6).

    Full masks become :class:`FullMembership`; low-density masks become
    :class:`SparseMembership`; everything else keeps the bitmap.
    """
    mask = np.asarray(mask, dtype=bool)
    count = int(mask.sum())
    if count == len(mask):
        return FullMembership(len(mask))
    if len(mask) == 0 or count / len(mask) < SPARSE_DENSITY_THRESHOLD:
        return SparseMembership(np.flatnonzero(mask), len(mask))
    return DenseMembership(mask)


def membership_from_indices(indices: np.ndarray, universe_size: int) -> MembershipSet:
    """The appropriate representation for an explicit index set."""
    indices = np.unique(np.asarray(indices, dtype=np.int64))
    if len(indices) == universe_size:
        return FullMembership(universe_size)
    if universe_size == 0 or len(indices) / universe_size < SPARSE_DENSITY_THRESHOLD:
        return SparseMembership(indices, universe_size)
    mask = np.zeros(universe_size, dtype=bool)
    mask[indices] = True
    return DenseMembership(mask)
