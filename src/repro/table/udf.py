"""User-defined map columns from expression strings (§5.6).

Hillview lets analysts derive columns with JavaScript functions; the source
string travels through the RPC protocol, runs at the leaves, and is
recorded in the redo log so replay reproduces the column.  This module is
the Python analogue: a :class:`ColumnExpression` is a *vectorized* numpy
expression over the table's numeric columns, validated against a small AST
whitelist at construction, serializable as its source text, and evaluated
per shard.

Example::

    ColumnExpression("ArrDelay - DepDelay")          # gained/lost in air
    ColumnExpression("log1p(abs(Distance))")         # log-scaled distance
    ColumnExpression("where(Cancelled > 0, 0.0, AirTime / Distance)")

Missing cells are NaN during evaluation (how numeric columns expose them),
and NaN results become missing cells in the derived column — SQL-ish
missing-value propagation for free.
"""

from __future__ import annotations

import ast
from typing import Mapping

import numpy as np

from repro.errors import SchemaError

#: Functions an expression may call, all elementwise numpy ufuncs (plus
#: ``where``/``clip``/``minimum``/``maximum`` which are shape-preserving).
ALLOWED_FUNCTIONS: dict[str, object] = {
    "abs": np.abs,
    "ceil": np.ceil,
    "clip": np.clip,
    "cos": np.cos,
    "exp": np.exp,
    "floor": np.floor,
    "log": np.log,
    "log10": np.log10,
    "log1p": np.log1p,
    "log2": np.log2,
    "maximum": np.maximum,
    "minimum": np.minimum,
    "sign": np.sign,
    "sin": np.sin,
    "sqrt": np.sqrt,
    "where": np.where,
}

_ALLOWED_BINOPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)
_ALLOWED_UNARYOPS = (ast.USub, ast.UAdd)
_ALLOWED_CMPOPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


class ExpressionError(SchemaError):
    """An expression failed validation or evaluation."""


class ColumnExpression:
    """A validated, vectorized expression over numeric columns.

    The expression grammar is deliberately small — arithmetic, comparisons,
    numeric constants, column names, and the :data:`ALLOWED_FUNCTIONS`
    whitelist.  No attribute access, subscripts, lambdas, comprehensions or
    boolean keywords (use ``where`` for conditionals), which keeps a
    *user-supplied string* safe to execute at the leaves.
    """

    def __init__(self, expression: str):
        self.expression = expression
        try:
            tree = ast.parse(expression, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(f"invalid expression: {exc}") from exc
        self.columns = sorted(self._validate(tree))
        if not self.columns:
            raise ExpressionError(
                "expression references no columns; derived columns must "
                "depend on the data"
            )
        self._code = compile(tree, "<column-expression>", "eval")

    def _validate(self, tree: ast.Expression) -> set[str]:
        """Walk the AST, rejecting anything off the whitelist."""
        columns: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.Expression, ast.Load)):
                continue
            if isinstance(node, ast.Constant):
                if not isinstance(node.value, (int, float)):
                    raise ExpressionError(
                        f"only numeric constants are allowed, got "
                        f"{node.value!r}"
                    )
            elif isinstance(node, ast.Name):
                if node.id not in ALLOWED_FUNCTIONS:
                    columns.add(node.id)
            elif isinstance(node, ast.Call):
                if (
                    not isinstance(node.func, ast.Name)
                    or node.func.id not in ALLOWED_FUNCTIONS
                ):
                    raise ExpressionError(
                        "only whitelisted functions may be called: "
                        + ", ".join(sorted(ALLOWED_FUNCTIONS))
                    )
                if node.keywords:
                    raise ExpressionError("keyword arguments are not allowed")
            elif isinstance(node, ast.BinOp):
                if not isinstance(node.op, _ALLOWED_BINOPS):
                    raise ExpressionError(
                        f"operator {type(node.op).__name__} is not allowed"
                    )
            elif isinstance(node, ast.UnaryOp):
                if not isinstance(node.op, _ALLOWED_UNARYOPS):
                    raise ExpressionError(
                        f"operator {type(node.op).__name__} is not allowed"
                    )
            elif isinstance(node, ast.Compare):
                for op in node.ops:
                    if not isinstance(op, _ALLOWED_CMPOPS):
                        raise ExpressionError(
                            f"comparison {type(op).__name__} is not allowed"
                        )
            elif isinstance(
                node,
                (
                    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv,
                    ast.Mod, ast.Pow, ast.USub, ast.UAdd,
                    ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq,
                ),
            ):
                continue  # operator tokens reached via ast.walk
            else:
                raise ExpressionError(
                    f"syntax {type(node).__name__} is not allowed in "
                    "column expressions"
                )
        return columns

    def evaluate(self, arrays: Mapping[str, object]) -> np.ndarray:
        """Evaluate over per-column numpy arrays; returns a float array.

        ``arrays`` maps column name to that column's member-row values
        (what a vectorized derive passes, §5.6).  Comparison results are
        cast to float so derived boolean columns render as 0/1 histograms.
        """
        namespace: dict[str, object] = dict(ALLOWED_FUNCTIONS)
        for name in self.columns:
            if name not in arrays:
                raise ExpressionError(f"unknown column {name!r} in expression")
            values = arrays[name]
            if not isinstance(values, np.ndarray):
                raise ExpressionError(
                    f"column {name!r} is not numeric; expressions operate "
                    "on numeric columns only"
                )
            namespace[name] = values
        with np.errstate(all="ignore"):
            result = eval(self._code, {"__builtins__": {}}, namespace)
        result = np.asarray(result, dtype=np.float64)
        first = namespace[self.columns[0]]
        if result.shape != np.shape(first):
            raise ExpressionError(
                "expression did not produce one value per row"
            )
        return result

    def __repr__(self) -> str:
        return f"ColumnExpression({self.expression!r})"
