"""The Table: shared columns + a membership set + a shard identity.

Tables are immutable.  Filtering and column derivation return new tables
that *share* column storage with their parent (paper §5.6), so a filtered
view of a billion-row table costs only its membership structure.

``shard_id`` identifies the micropartition a table represents inside the
execution tree; sampled sketches key their random streams on it so replay
is deterministic (paper §5.8).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import MissingColumnError, SchemaError
from repro.table.column import Column, column_from_values
from repro.table.compute import Predicate, derive_column
from repro.table.membership import (
    FullMembership,
    MembershipSet,
    membership_from_indices,
)
from repro.table.schema import ColumnDescription, ContentsKind, Schema


class Table:
    """An immutable columnar table."""

    def __init__(
        self,
        columns: Sequence[Column],
        members: MembershipSet | None = None,
        shard_id: str = "shard-0",
    ):
        if not columns:
            raise SchemaError("a table needs at least one column")
        sizes = {column.size for column in columns}
        if len(sizes) != 1:
            raise SchemaError(f"columns disagree on size: {sorted(sizes)}")
        self._columns: dict[str, Column] = {}
        for column in columns:
            if column.name in self._columns:
                raise SchemaError(f"duplicate column {column.name!r}")
            self._columns[column.name] = column
        self.universe_size = columns[0].size
        self.members = members if members is not None else FullMembership(self.universe_size)
        if self.members.universe_size != self.universe_size:
            raise SchemaError(
                "membership universe differs from column size: "
                f"{self.members.universe_size} != {self.universe_size}"
            )
        self.shard_id = shard_id

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_pydict(
        cls,
        data: Mapping[str, Sequence[object]],
        kinds: Mapping[str, ContentsKind] | None = None,
        shard_id: str = "shard-0",
    ) -> "Table":
        """Build a table from ``{column: values}`` with kind inference."""
        kinds = kinds or {}
        columns = [
            column_from_values(name, values, kinds.get(name))
            for name, values in data.items()
        ]
        return cls(columns, shard_id=shard_id)

    @classmethod
    def concat(cls, tables: "Sequence[Table]", shard_id: str = "concat") -> "Table":
        """Materialize the concatenation of ``tables`` (test/tooling helper).

        Only member rows are kept; the result has full membership.
        """
        if not tables:
            raise SchemaError("cannot concatenate zero tables")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise SchemaError("concatenated tables must share a schema")
        data: dict[str, list[object]] = {name: [] for name in schema.names}
        kinds = {desc.name: desc.kind for desc in schema}
        for t in tables:
            rows = t.members.indices()
            for name in schema.names:
                column = t.column(name)
                data[name].extend(column.value(int(r)) for r in rows)
        return cls.from_pydict(data, kinds, shard_id=shard_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return Schema(column.description for column in self._columns.values())

    @property
    def column_names(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def num_rows(self) -> int:
        """Number of member rows (what queries observe)."""
        return self.members.size

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def num_cells(self) -> int:
        """Spreadsheet cells: rows x columns (the paper's headline metric)."""
        return self.num_rows * self.num_columns

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise MissingColumnError(name, self.column_names) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def memory_bytes(self) -> int:
        return sum(column.memory_bytes() for column in self._columns.values())

    # ------------------------------------------------------------------
    # Row access
    # ------------------------------------------------------------------
    def row(self, index: int) -> dict[str, object | None]:
        """The values of row ``index`` as ``{column: value}``."""
        return {name: col.value(index) for name, col in self._columns.items()}

    def rows(self, indices: Iterable[int]) -> list[dict[str, object | None]]:
        return [self.row(int(i)) for i in indices]

    def to_pydict(self) -> dict[str, list[object | None]]:
        """All member rows as ``{column: values}`` (materializes; for tests)."""
        rows = self.members.indices()
        return {
            name: [col.value(int(r)) for r in rows]
            for name, col in self._columns.items()
        }

    # ------------------------------------------------------------------
    # Derivation (immutable transforms)
    # ------------------------------------------------------------------
    def filter(self, predicate: Predicate) -> "Table":
        """Rows satisfying ``predicate``; shares column storage (§5.6)."""
        rows = self.members.indices()
        keep = predicate.evaluate(self, rows)
        members = membership_from_indices(rows[keep], self.universe_size)
        return Table(
            list(self._columns.values()), members, shard_id=self.shard_id
        )

    def filter_mask(self, member_mask: np.ndarray) -> "Table":
        """Keep the member rows whose aligned mask entry is True."""
        rows = self.members.indices()
        if len(member_mask) != len(rows):
            raise SchemaError("mask must align with member rows")
        members = membership_from_indices(rows[member_mask], self.universe_size)
        return Table(list(self._columns.values()), members, shard_id=self.shard_id)

    def with_column(self, column: Column) -> "Table":
        if column.size != self.universe_size:
            raise SchemaError("new column size differs from table universe")
        if column.name in self._columns:
            raise SchemaError(f"column {column.name!r} already exists")
        return Table(
            list(self._columns.values()) + [column],
            self.members,
            shard_id=self.shard_id,
        )

    def derive(
        self,
        name: str,
        kind: ContentsKind,
        fn: Callable,
        vectorized: bool = False,
    ) -> "Table":
        """Append a user-defined map column (paper §5.6)."""
        return self.with_column(derive_column(self, name, kind, fn, vectorized))

    def select_columns(self, names: Sequence[str]) -> "Table":
        return Table(
            [self.column(name) for name in names],
            self.members,
            shard_id=self.shard_id,
        )

    def with_shard_id(self, shard_id: str) -> "Table":
        return Table(list(self._columns.values()), self.members, shard_id=shard_id)

    # ------------------------------------------------------------------
    # Sharding (micropartitions, paper §5.3)
    # ------------------------------------------------------------------
    def split(self, parts: int) -> "list[Table]":
        """Split member rows into ``parts`` contiguous micropartitions.

        The returned tables share this table's column storage; only their
        membership (and shard id) differs.  Empty chunks are dropped.
        """
        if parts < 1:
            raise ValueError("parts must be >= 1")
        rows = self.members.indices()
        shards = []
        for i, chunk in enumerate(np.array_split(rows, parts)):
            if len(chunk) == 0:
                continue
            members = membership_from_indices(chunk, self.universe_size)
            shards.append(
                Table(
                    list(self._columns.values()),
                    members,
                    shard_id=f"{self.shard_id}/{i}",
                )
            )
        return shards

    def __repr__(self) -> str:
        return (
            f"<Table {self.shard_id!r} rows={self.num_rows} "
            f"cols={self.num_columns}>"
        )
