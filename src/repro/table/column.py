"""Column storage: typed arrays of base values with missing-value masks.

Columns use numpy arrays of base types to keep memory pressure low, exactly
as Hillview uses Java base-type arrays (paper §6).  Strings are dictionary
encoded.  Every column exposes:

* ``numeric_values(rows)`` — float64 view used by numeric sketches (dates
  convert to epoch milliseconds, as the paper converts dates to reals §4.3);
* ``string_values(rows)`` — Python strings for text sketches;
* ``sort_surrogate(rows)`` — a float64 array whose ordering matches the
  column's sort order *within one shard* (strings map to dictionary ranks),
  with missing values at negative infinity so they sort first.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from datetime import datetime, timezone
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ColumnKindError, SchemaError
from repro.table.dictionary import MISSING_CODE, StringDictionary
from repro.table.schema import ColumnDescription, ContentsKind


def _as_index_array(rows: np.ndarray | Sequence[int]) -> np.ndarray:
    return np.asarray(rows, dtype=np.int64)


class Column(ABC):
    """A named, typed column over a fixed universe of rows."""

    def __init__(self, description: ColumnDescription, size: int):
        self.description = description
        self._size = int(size)

    @property
    def name(self) -> str:
        return self.description.name

    @property
    def kind(self) -> ContentsKind:
        return self.description.kind

    @property
    def size(self) -> int:
        """Number of rows in the column's universe (before any filtering)."""
        return self._size

    @abstractmethod
    def missing_mask(self) -> np.ndarray:
        """Boolean array marking missing rows (shape ``(size,)``)."""

    def is_missing(self, row: int) -> bool:
        return bool(self.missing_mask()[row])

    @abstractmethod
    def value(self, row: int) -> object | None:
        """The Python value at ``row`` (None when missing)."""

    def numeric_values(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        """float64 values at ``rows`` with NaN for missing entries."""
        raise ColumnKindError(
            f"column {self.name!r} of kind {self.kind.value} is not numeric"
        )

    def string_values(self, rows: np.ndarray | Sequence[int]) -> list[str | None]:
        """String values at ``rows`` with None for missing entries."""
        raise ColumnKindError(
            f"column {self.name!r} of kind {self.kind.value} is not string-valued"
        )

    def values_at(self, rows: np.ndarray | Sequence[int]) -> list:
        """Python values at ``rows`` (None for missing), as one batch.

        Equivalent to ``[self.value(int(r)) for r in rows]``; subclasses
        override with a vectorized pass.
        """
        return [self.value(int(row)) for row in rows]

    @abstractmethod
    def sort_surrogate(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        """float64 array ordered like the column's values; missing -> -inf."""

    @abstractmethod
    def take(self, rows: np.ndarray | Sequence[int]) -> "Column":
        """A new column containing only ``rows`` (materializes a copy)."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate in-memory footprint, for the data cache (§5.4)."""

    def rename(self, name: str) -> "Column":
        """The same storage under a different name."""
        import copy

        clone = copy.copy(self)
        clone.description = ColumnDescription(name, self.kind)
        return clone

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} size={self._size}>"


class _NumericColumn(Column):
    """Shared implementation for int/double/date columns."""

    _data: np.ndarray
    _missing: np.ndarray | None

    def __init__(
        self,
        description: ColumnDescription,
        data: np.ndarray,
        missing: np.ndarray | None,
    ):
        super().__init__(description, len(data))
        self._data = data
        if missing is not None:
            missing = np.asarray(missing, dtype=bool)
            if len(missing) != len(data):
                raise SchemaError("missing mask length differs from data length")
            if not missing.any():
                missing = None
        self._missing = missing

    def missing_mask(self) -> np.ndarray:
        if self._missing is None:
            return np.zeros(self._size, dtype=bool)
        return self._missing

    @property
    def data(self) -> np.ndarray:
        """The raw storage array (do not mutate)."""
        return self._data

    def numeric_values(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        rows = _as_index_array(rows)
        out = self._data[rows].astype(np.float64, copy=True)
        if self._missing is not None:
            out[self._missing[rows]] = np.nan
        return out

    def _pythonize(self, data: np.ndarray) -> list:
        return data.tolist()

    def values_at(self, rows: np.ndarray | Sequence[int]) -> list:
        rows = _as_index_array(rows)
        out = self._pythonize(self._data[rows])
        if self._missing is not None:
            for i in np.flatnonzero(self._missing[rows]):
                out[i] = None
        return out

    def sort_surrogate(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        out = self.numeric_values(rows)
        np.nan_to_num(out, copy=False, nan=-np.inf)
        return out

    def take(self, rows: np.ndarray | Sequence[int]) -> "Column":
        rows = _as_index_array(rows)
        missing = None if self._missing is None else self._missing[rows]
        return type(self)(self.description, self._data[rows].copy(), missing)

    def memory_bytes(self) -> int:
        total = self._data.nbytes
        if self._missing is not None:
            total += self._missing.nbytes
        return total


class IntColumn(_NumericColumn):
    """64-bit integer column."""

    def __init__(
        self,
        description: ColumnDescription,
        data: np.ndarray,
        missing: np.ndarray | None = None,
    ):
        if description.kind is not ContentsKind.INTEGER:
            raise SchemaError(f"IntColumn needs INTEGER kind, got {description.kind}")
        super().__init__(description, np.asarray(data, dtype=np.int64), missing)

    def value(self, row: int) -> int | None:
        if self._missing is not None and self._missing[row]:
            return None
        return int(self._data[row])


class DoubleColumn(_NumericColumn):
    """float64 column; NaN values are treated as missing."""

    def __init__(
        self,
        description: ColumnDescription,
        data: np.ndarray,
        missing: np.ndarray | None = None,
    ):
        if description.kind is not ContentsKind.DOUBLE:
            raise SchemaError(f"DoubleColumn needs DOUBLE kind, got {description.kind}")
        data = np.asarray(data, dtype=np.float64)
        nan_mask = np.isnan(data)
        if nan_mask.any():
            missing = nan_mask if missing is None else (missing | nan_mask)
        super().__init__(description, data, missing)

    def value(self, row: int) -> float | None:
        if self._missing is not None and self._missing[row]:
            return None
        return float(self._data[row])


EPOCH = datetime(1970, 1, 1, tzinfo=timezone.utc)


def datetime_to_millis(value: datetime) -> int:
    """Epoch milliseconds for ``value`` (naive datetimes are taken as UTC)."""
    if value.tzinfo is None:
        value = value.replace(tzinfo=timezone.utc)
    return int(value.timestamp() * 1000)


def millis_to_datetime(millis: int) -> datetime:
    return datetime.fromtimestamp(millis / 1000.0, tz=timezone.utc)


class DateColumn(_NumericColumn):
    """Dates stored as int64 epoch milliseconds.

    Dates "can be readily converted to a real number" (paper §4.3), so all
    numeric sketches work on date columns through ``numeric_values``.
    """

    def __init__(
        self,
        description: ColumnDescription,
        data: np.ndarray,
        missing: np.ndarray | None = None,
    ):
        if description.kind is not ContentsKind.DATE:
            raise SchemaError(f"DateColumn needs DATE kind, got {description.kind}")
        super().__init__(description, np.asarray(data, dtype=np.int64), missing)

    def value(self, row: int) -> datetime | None:
        if self._missing is not None and self._missing[row]:
            return None
        return millis_to_datetime(int(self._data[row]))

    def _pythonize(self, data: np.ndarray) -> list:
        return [millis_to_datetime(millis) for millis in data.tolist()]


class StringColumn(Column):
    """Dictionary-encoded string column (STRING or CATEGORY kind)."""

    def __init__(
        self,
        description: ColumnDescription,
        codes: np.ndarray,
        dictionary: StringDictionary,
    ):
        if not description.kind.is_string:
            raise SchemaError(
                f"StringColumn needs a string kind, got {description.kind}"
            )
        codes = np.asarray(codes, dtype=np.int32)
        super().__init__(description, len(codes))
        self.codes = codes
        self.dictionary = dictionary

    @classmethod
    def from_values(
        cls, description: ColumnDescription, values: Iterable[str | None]
    ) -> "StringColumn":
        dictionary = StringDictionary()
        codes = dictionary.encode_values(values)
        return cls(description, codes, dictionary)

    def missing_mask(self) -> np.ndarray:
        return self.codes == MISSING_CODE

    def is_missing(self, row: int) -> bool:
        return self.codes[row] == MISSING_CODE

    def value(self, row: int) -> str | None:
        code = self.codes[row]
        if code == MISSING_CODE:
            return None
        return self.dictionary.value(int(code))

    def string_values(self, rows: np.ndarray | Sequence[int]) -> list[str | None]:
        rows = _as_index_array(rows)
        values = self.dictionary.values
        # One fancy-indexed take instead of a per-row loop.  MISSING_CODE
        # is -1, which wraps to the final lookup slot holding None.
        lookup = np.empty(len(values) + 1, dtype=object)
        lookup[: len(values)] = values
        lookup[len(values)] = None
        return lookup[self.codes[rows]].tolist()

    def values_at(self, rows: np.ndarray | Sequence[int]) -> list:
        return self.string_values(rows)

    def codes_at(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        """Dictionary codes at ``rows`` (:data:`MISSING_CODE` for missing)."""
        return self.codes[_as_index_array(rows)]

    def sort_surrogate(self, rows: np.ndarray | Sequence[int]) -> np.ndarray:
        rows = _as_index_array(rows)
        ranks = self.dictionary.sorted_ranks()
        codes = self.codes[rows]
        out = np.empty(len(codes), dtype=np.float64)
        present = codes != MISSING_CODE
        out[present] = ranks[codes[present]]
        out[~present] = -np.inf
        return out

    def take(self, rows: np.ndarray | Sequence[int]) -> "StringColumn":
        # Re-encode so the new column's dictionary only holds used strings.
        return StringColumn.from_values(self.description, self.string_values(rows))

    def memory_bytes(self) -> int:
        return self.codes.nbytes + self.dictionary.memory_bytes()


def column_from_values(
    name: str,
    values: Sequence[object],
    kind: ContentsKind | None = None,
) -> Column:
    """Build a column from Python values, inferring the kind when omitted.

    Inference prefers INTEGER, then DOUBLE, then DATE, then STRING, matching
    the storage layer's CSV inference order.
    """
    if kind is None:
        kind = _infer_kind(values)
    desc = ColumnDescription(name, kind)
    if kind is ContentsKind.INTEGER:
        data = np.array([0 if v is None else int(v) for v in values], dtype=np.int64)
        missing = np.array([v is None for v in values], dtype=bool)
        return IntColumn(desc, data, missing)
    if kind is ContentsKind.DOUBLE:
        data = np.array(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
        return DoubleColumn(desc, data)
    if kind is ContentsKind.DATE:
        data = np.array(
            [0 if v is None else datetime_to_millis(v) for v in values],
            dtype=np.int64,
        )
        missing = np.array([v is None for v in values], dtype=bool)
        return DateColumn(desc, data, missing)
    return StringColumn.from_values(
        desc, [None if v is None else str(v) for v in values]
    )


def _infer_kind(values: Sequence[object]) -> ContentsKind:
    saw_float = saw_int = saw_date = saw_str = False
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            saw_int = True
        elif isinstance(value, (int, np.integer)):
            saw_int = True
        elif isinstance(value, (float, np.floating)):
            saw_float = True
        elif isinstance(value, datetime):
            saw_date = True
        else:
            saw_str = True
    if saw_str:
        return ContentsKind.STRING
    if saw_date:
        if saw_int or saw_float:
            return ContentsKind.STRING
        return ContentsKind.DATE
    if saw_float:
        return ContentsKind.DOUBLE
    if saw_int:
        return ContentsKind.INTEGER
    return ContentsKind.STRING
