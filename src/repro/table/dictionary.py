"""Dictionary encoding for string columns (paper §6).

String columns store an ``int32`` code per row plus a small dictionary of
distinct strings.  This compresses categorical data dramatically and lets
sketches bin or compare strings through the dictionary instead of touching
per-row string objects.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

#: Code used for missing (null) string values.
MISSING_CODE = -1


class StringDictionary:
    """An append-only mapping between strings and dense integer codes."""

    def __init__(self, values: Iterable[str] = ()):
        self._values: list[str] = []
        self._codes: dict[str, int] = {}
        # Lazily computed rank of each code in sorted-string order.
        self._ranks: np.ndarray | None = None
        for value in values:
            self.code_for(value)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __contains__(self, value: str) -> bool:
        return value in self._codes

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StringDictionary) and self._values == other._values

    def value(self, code: int) -> str:
        """The string for ``code`` (codes are dense, starting at zero)."""
        return self._values[code]

    def code_for(self, value: str) -> int:
        """The code for ``value``, allocating a new one if needed."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
            self._ranks = None
        return code

    def code_of(self, value: str) -> int:
        """The existing code for ``value``, or :data:`MISSING_CODE`."""
        return self._codes.get(value, MISSING_CODE)

    def encode_values(self, values: Iterable[str | None]) -> np.ndarray:
        """Codes for ``values`` (allocating), None -> :data:`MISSING_CODE`."""
        return np.fromiter(
            (MISSING_CODE if v is None else self.code_for(v) for v in values),
            dtype=np.int32,
        )

    @property
    def values(self) -> list[str]:
        """The dictionary contents in code order (do not mutate)."""
        return self._values

    def sorted_ranks(self) -> np.ndarray:
        """``ranks[code]`` = position of that string in sorted order.

        Sorting and binning string columns uses these ranks as a numeric
        surrogate, valid within one dictionary (i.e., one shard's storage).
        """
        if self._ranks is None or len(self._ranks) != len(self._values):
            order = np.argsort(np.array(self._values, dtype=object), kind="stable")
            ranks = np.empty(len(self._values), dtype=np.int64)
            ranks[order] = np.arange(len(self._values))
            self._ranks = ranks
        return self._ranks

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the dictionary strings."""
        return sum(len(v) for v in self._values) + 64 * len(self._values)
